//! Extraction of `ipl-logic` formulas into the BAPA fragment.
//!
//! The extractor classifies variables by how they are used (set position,
//! element position, integer position) and maps the supported constructs into
//! the small [`BapaForm`] abstract syntax.  Anything outside the fragment
//! yields `None`; for assumptions the caller simply drops the formula (which
//! is sound for validity checking), for goals the caller gives up.

use ipl_logic::Form;
use std::collections::BTreeSet;

/// Set-valued terms of the BAPA fragment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SetTerm {
    /// A set variable.
    Var(String),
    /// The empty set.
    Empty,
    /// A singleton containing the named element.
    Singleton(String),
    /// Union of two sets.
    Union(Box<SetTerm>, Box<SetTerm>),
    /// Intersection of two sets.
    Inter(Box<SetTerm>, Box<SetTerm>),
    /// Difference of two sets.
    Diff(Box<SetTerm>, Box<SetTerm>),
}

/// Integer-valued terms of the BAPA fragment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IntTerm {
    /// An integer constant.
    Const(i64),
    /// An integer variable.
    Var(String),
    /// The cardinality of a set term.
    Card(SetTerm),
    /// Sum.
    Add(Box<IntTerm>, Box<IntTerm>),
    /// Difference.
    Sub(Box<IntTerm>, Box<IntTerm>),
    /// Multiplication by a constant.
    MulConst(i64, Box<IntTerm>),
}

/// Formulas of the BAPA fragment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BapaForm {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// Negation.
    Not(Box<BapaForm>),
    /// Conjunction.
    And(Vec<BapaForm>),
    /// Disjunction.
    Or(Vec<BapaForm>),
    /// `a <= b` over integers.
    IntLe(IntTerm, IntTerm),
    /// `a < b` over integers.
    IntLt(IntTerm, IntTerm),
    /// `a = b` over integers.
    IntEq(IntTerm, IntTerm),
    /// Set equality.
    SetEq(SetTerm, SetTerm),
    /// Subset-or-equal.
    Subset(SetTerm, SetTerm),
    /// Element membership.
    Member(String, SetTerm),
    /// Equality of two element variables.
    ElemEq(String, String),
}

impl BapaForm {
    /// Conjunction with flattening.
    pub fn and(parts: Vec<BapaForm>) -> BapaForm {
        let mut out = Vec::new();
        for p in parts {
            match p {
                BapaForm::True => {}
                BapaForm::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => BapaForm::True,
            1 => out.pop().expect("len checked"),
            _ => BapaForm::And(out),
        }
    }

    /// Collects the element variables appearing in the formula.
    pub fn element_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            BapaForm::Member(e, s) => {
                out.insert(e.clone());
                collect_set_elems(s, out);
            }
            BapaForm::ElemEq(a, b) => {
                out.insert(a.clone());
                out.insert(b.clone());
            }
            BapaForm::Not(inner) => inner.element_vars(out),
            BapaForm::And(parts) | BapaForm::Or(parts) => {
                parts.iter().for_each(|p| p.element_vars(out))
            }
            BapaForm::IntLe(a, b) | BapaForm::IntLt(a, b) | BapaForm::IntEq(a, b) => {
                collect_int_elems(a, out);
                collect_int_elems(b, out);
            }
            BapaForm::SetEq(a, b) | BapaForm::Subset(a, b) => {
                collect_set_elems(a, out);
                collect_set_elems(b, out);
            }
            BapaForm::True | BapaForm::False => {}
        }
    }

    /// Collects the free integer variables appearing in the formula.
    pub fn int_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            BapaForm::Not(inner) => inner.int_vars(out),
            BapaForm::And(parts) | BapaForm::Or(parts) => {
                parts.iter().for_each(|p| p.int_vars(out))
            }
            BapaForm::IntLe(a, b) | BapaForm::IntLt(a, b) | BapaForm::IntEq(a, b) => {
                collect_int_vars(a, out);
                collect_int_vars(b, out);
            }
            BapaForm::True
            | BapaForm::False
            | BapaForm::SetEq(..)
            | BapaForm::Subset(..)
            | BapaForm::Member(..)
            | BapaForm::ElemEq(..) => {}
        }
    }

    /// Collects the set variables appearing in the formula.
    pub fn set_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            BapaForm::Member(_, s) => collect_set_vars(s, out),
            BapaForm::Not(inner) => inner.set_vars(out),
            BapaForm::And(parts) | BapaForm::Or(parts) => {
                parts.iter().for_each(|p| p.set_vars(out))
            }
            BapaForm::IntLe(a, b) | BapaForm::IntLt(a, b) | BapaForm::IntEq(a, b) => {
                collect_int_set_vars(a, out);
                collect_int_set_vars(b, out);
            }
            BapaForm::SetEq(a, b) | BapaForm::Subset(a, b) => {
                collect_set_vars(a, out);
                collect_set_vars(b, out);
            }
            BapaForm::True | BapaForm::False | BapaForm::ElemEq(..) => {}
        }
    }
}

fn collect_set_vars(set: &SetTerm, out: &mut BTreeSet<String>) {
    match set {
        SetTerm::Var(name) => {
            out.insert(name.clone());
        }
        SetTerm::Empty | SetTerm::Singleton(_) => {}
        SetTerm::Union(a, b) | SetTerm::Inter(a, b) | SetTerm::Diff(a, b) => {
            collect_set_vars(a, out);
            collect_set_vars(b, out);
        }
    }
}

fn collect_set_elems(set: &SetTerm, out: &mut BTreeSet<String>) {
    match set {
        SetTerm::Singleton(e) => {
            out.insert(e.clone());
        }
        SetTerm::Union(a, b) | SetTerm::Inter(a, b) | SetTerm::Diff(a, b) => {
            collect_set_elems(a, out);
            collect_set_elems(b, out);
        }
        SetTerm::Var(_) | SetTerm::Empty => {}
    }
}

fn collect_int_set_vars(term: &IntTerm, out: &mut BTreeSet<String>) {
    match term {
        IntTerm::Card(s) => collect_set_vars(s, out),
        IntTerm::Add(a, b) | IntTerm::Sub(a, b) => {
            collect_int_set_vars(a, out);
            collect_int_set_vars(b, out);
        }
        IntTerm::MulConst(_, a) => collect_int_set_vars(a, out),
        IntTerm::Const(_) | IntTerm::Var(_) => {}
    }
}

fn collect_int_vars(term: &IntTerm, out: &mut BTreeSet<String>) {
    match term {
        IntTerm::Var(name) => {
            out.insert(name.clone());
        }
        IntTerm::Add(a, b) | IntTerm::Sub(a, b) => {
            collect_int_vars(a, out);
            collect_int_vars(b, out);
        }
        IntTerm::MulConst(_, a) => collect_int_vars(a, out),
        IntTerm::Const(_) | IntTerm::Card(_) => {}
    }
}

fn collect_int_elems(term: &IntTerm, out: &mut BTreeSet<String>) {
    match term {
        IntTerm::Card(s) => collect_set_elems(s, out),
        IntTerm::Add(a, b) | IntTerm::Sub(a, b) => {
            collect_int_elems(a, out);
            collect_int_elems(b, out);
        }
        IntTerm::MulConst(_, a) => collect_int_elems(a, out),
        IntTerm::Const(_) | IntTerm::Var(_) => {}
    }
}

/// An extractor parameterised by the variable classification gathered from a
/// scan of the whole problem (assumptions and goal together).
#[derive(Debug, Default)]
pub struct Extractor {
    /// Variables used in set positions (operand of `union`, `card`, `in`, ...).
    set_position: BTreeSet<String>,
    /// Variables used in element positions (left of `in`, inside `{...}`).
    elem_position: BTreeSet<String>,
}

impl Extractor {
    /// Scans the given formulas and records how each variable is used.
    pub fn scan(forms: &[&Form]) -> Extractor {
        let mut extractor = Extractor::default();
        for form in forms {
            extractor.scan_form(form);
        }
        extractor
    }

    fn scan_form(&mut self, form: &Form) {
        match form {
            Form::Elem(elem, set) => {
                self.note_elem(elem);
                self.note_set(set);
            }
            Form::Subseteq(a, b) => {
                self.note_set(a);
                self.note_set(b);
            }
            Form::Card(s) => self.note_set(s),
            Form::Union(a, b) | Form::Inter(a, b) | Form::Diff(a, b) => {
                self.note_set(a);
                self.note_set(b);
            }
            // A set-algebra operand on either side forces both to be sets.
            Form::Eq(a, b) if is_set_structure(a) || is_set_structure(b) => {
                self.note_set(a);
                self.note_set(b);
            }
            _ => {}
        }
        form.for_each_child(|c| self.scan_form(c));
    }

    fn note_set(&mut self, form: &Form) {
        match form {
            Form::Var(name) => {
                self.set_position.insert(name.clone());
            }
            Form::FiniteSet(elems) => elems.iter().for_each(|e| self.note_elem(e)),
            Form::Union(a, b) | Form::Inter(a, b) | Form::Diff(a, b) => {
                self.note_set(a);
                self.note_set(b);
            }
            _ => {}
        }
    }

    fn note_elem(&mut self, form: &Form) {
        self.elem_position.insert(elem_id(form));
    }

    /// Extracts a formula into the BAPA fragment.  Returns `None` if any part
    /// of the formula lies outside the fragment.
    pub fn extract(&self, form: &Form) -> Option<BapaForm> {
        match form {
            Form::Bool(true) => Some(BapaForm::True),
            Form::Bool(false) => Some(BapaForm::False),
            Form::Not(inner) => Some(BapaForm::Not(Box::new(self.extract(inner)?))),
            Form::And(parts) => Some(BapaForm::and(
                parts
                    .iter()
                    .map(|p| self.extract(p))
                    .collect::<Option<Vec<_>>>()?,
            )),
            Form::Or(parts) => Some(BapaForm::Or(
                parts
                    .iter()
                    .map(|p| self.extract(p))
                    .collect::<Option<Vec<_>>>()?,
            )),
            Form::Implies(a, b) => Some(BapaForm::Or(vec![
                BapaForm::Not(Box::new(self.extract(a)?)),
                self.extract(b)?,
            ])),
            Form::Iff(a, b) => {
                let a = self.extract(a)?;
                let b = self.extract(b)?;
                Some(BapaForm::and(vec![
                    BapaForm::Or(vec![BapaForm::Not(Box::new(a.clone())), b.clone()]),
                    BapaForm::Or(vec![BapaForm::Not(Box::new(b)), a]),
                ]))
            }
            Form::Le(a, b) => Some(BapaForm::IntLe(self.extract_int(a)?, self.extract_int(b)?)),
            Form::Lt(a, b) => Some(BapaForm::IntLt(self.extract_int(a)?, self.extract_int(b)?)),
            Form::Elem(elem, set) => Some(BapaForm::Member(elem_id(elem), self.extract_set(set)?)),
            Form::Subseteq(a, b) => {
                Some(BapaForm::Subset(self.extract_set(a)?, self.extract_set(b)?))
            }
            Form::Eq(a, b) => {
                // Try sets, then integers, then element identities.
                if let (Some(sa), Some(sb)) = (self.try_extract_set(a), self.try_extract_set(b)) {
                    return Some(BapaForm::SetEq(sa, sb));
                }
                if let (Some(ia), Some(ib)) = (self.try_extract_int(a), self.try_extract_int(b)) {
                    return Some(BapaForm::IntEq(ia, ib));
                }
                // Element identities: only for terms that plausibly denote
                // elements (seen in an element position, or simple terms).
                let simple = |f: &Form| matches!(f, Form::Var(_) | Form::Null | Form::Tuple(_));
                let known = |f: &Form| self.elem_position.contains(&elem_id(f));
                if known(a) || known(b) || (simple(a) && simple(b)) {
                    Some(BapaForm::ElemEq(elem_id(a), elem_id(b)))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn extract_int(&self, form: &Form) -> Option<IntTerm> {
        match form {
            Form::Int(value) => Some(IntTerm::Const(*value)),
            Form::Var(name) => {
                if self.set_position.contains(name) || self.elem_position.contains(name) {
                    None
                } else {
                    Some(IntTerm::Var(name.clone()))
                }
            }
            Form::Card(s) => Some(IntTerm::Card(self.extract_set(s)?)),
            Form::Add(a, b) => Some(IntTerm::Add(
                Box::new(self.extract_int(a)?),
                Box::new(self.extract_int(b)?),
            )),
            Form::Sub(a, b) => Some(IntTerm::Sub(
                Box::new(self.extract_int(a)?),
                Box::new(self.extract_int(b)?),
            )),
            Form::Neg(a) => Some(IntTerm::MulConst(-1, Box::new(self.extract_int(a)?))),
            Form::Mul(a, b) => match (a.as_ref(), b.as_ref()) {
                (Form::Int(k), other) | (other, Form::Int(k)) => {
                    Some(IntTerm::MulConst(*k, Box::new(self.extract_int(other)?)))
                }
                _ => None,
            },
            _ => None,
        }
    }

    fn try_extract_int(&self, form: &Form) -> Option<IntTerm> {
        self.extract_int(form)
    }

    fn extract_set(&self, form: &Form) -> Option<SetTerm> {
        match form {
            Form::Var(name) => {
                if self.elem_position.contains(name) && !self.set_position.contains(name) {
                    None
                } else {
                    Some(SetTerm::Var(name.clone()))
                }
            }
            Form::EmptySet => Some(SetTerm::Empty),
            Form::FiniteSet(elems) => {
                let mut acc: Option<SetTerm> = None;
                for elem in elems {
                    let singleton = SetTerm::Singleton(elem_id(elem));
                    acc = Some(match acc {
                        None => singleton,
                        Some(prev) => SetTerm::Union(Box::new(prev), Box::new(singleton)),
                    });
                }
                Some(acc.unwrap_or(SetTerm::Empty))
            }
            Form::Union(a, b) => Some(SetTerm::Union(
                Box::new(self.extract_set(a)?),
                Box::new(self.extract_set(b)?),
            )),
            Form::Inter(a, b) => Some(SetTerm::Inter(
                Box::new(self.extract_set(a)?),
                Box::new(self.extract_set(b)?),
            )),
            Form::Diff(a, b) => Some(SetTerm::Diff(
                Box::new(self.extract_set(a)?),
                Box::new(self.extract_set(b)?),
            )),
            _ => None,
        }
    }

    fn try_extract_set(&self, form: &Form) -> Option<SetTerm> {
        match form {
            Form::Var(name) if !self.set_position.contains(name) => None,
            _ => self.extract_set(form),
        }
    }
}

/// Returns `true` if the term is structurally a set expression.
fn is_set_structure(form: &Form) -> bool {
    matches!(
        form,
        Form::EmptySet
            | Form::FiniteSet(_)
            | Form::Union(..)
            | Form::Inter(..)
            | Form::Diff(..)
            | Form::Compr(..)
    )
}

/// The identity of an element term: its printed form (syntactically equal
/// terms denote the same element; distinct terms are *not* assumed distinct).
fn elem_id(form: &Form) -> String {
    format!("{form}")
}

/// Convenience entry point: scans a single formula and extracts it.
pub fn extract(form: &Form) -> Option<BapaForm> {
    Extractor::scan(&[form]).extract(form)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;

    #[test]
    fn extracts_cardinality_comparison() {
        let f = parse_form("card(a union b) <= card(a) + card(b)").unwrap();
        let b = extract(&f).unwrap();
        assert!(matches!(b, BapaForm::IntLe(..)));
    }

    #[test]
    fn extracts_membership_and_set_equality() {
        let f = parse_form("x in s & s = t union {x}").unwrap();
        let b = extract(&f).unwrap();
        match b {
            BapaForm::And(parts) => {
                assert!(matches!(parts[0], BapaForm::Member(..)));
                assert!(matches!(parts[1], BapaForm::SetEq(..)));
            }
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    fn element_variables_are_recognised_across_conjuncts() {
        let member = parse_form("x in s").unwrap();
        let diseq = parse_form("~(x = y)").unwrap();
        let extractor = Extractor::scan(&[&member, &diseq]);
        match extractor.extract(&diseq).unwrap() {
            BapaForm::Not(inner) => assert!(matches!(*inner, BapaForm::ElemEq(..))),
            other => panic!("expected negated element equality, got {other:?}"),
        }
    }

    #[test]
    fn rejects_field_reads() {
        let f = parse_form("x.next = y").unwrap();
        assert!(extract(&f).is_none());
    }

    #[test]
    fn integer_equations_stay_integer() {
        let f = parse_form("csize = card(content)").unwrap();
        match extract(&f).unwrap() {
            BapaForm::IntEq(IntTerm::Var(v), IntTerm::Card(_)) => assert_eq!(v, "csize"),
            other => panic!("unexpected extraction {other:?}"),
        }
    }

    #[test]
    fn collects_set_and_element_vars() {
        let f = parse_form("x in s & card(t minus s) = 0").unwrap();
        let b = extract(&f).unwrap();
        let mut sets = BTreeSet::new();
        let mut elems = BTreeSet::new();
        b.set_vars(&mut sets);
        b.element_vars(&mut elems);
        assert!(sets.contains("s") && sets.contains("t"));
        assert!(elems.contains("x"));
    }
}
