//! Incremental BAPA: a persistent assertion stack with a `push`/`pop` trail.
//!
//! The one-shot pipeline ([`crate::prove_valid`]) re-scans and re-translates
//! the whole problem on every query.  The tableau of the ground solver wants
//! the opposite shape: literals arrive one at a time as branches are
//! explored, branch points open a backtracking scope, and the same engine is
//! consulted at every leaf.  [`IncrementalBapa`] mirrors the scope discipline
//! of the congruence engine (`ipl_provers::cc::Congruence`): [`IncrementalBapa::push`]
//! marks the assertion stack, [`IncrementalBapa::pop`] truncates back to the
//! mark, and results are memoised per revision so repeated checks at an
//! unchanged leaf are free.
//!
//! Extraction is deliberately *re-run over the full assertion set* when the
//! set changes: variable classification (set / element / integer position) is
//! a whole-problem property, so extracting atom-by-atom with a partial
//! classification could diverge from the one-shot path.  Re-scanning keeps
//! the two interfaces observably identical (a property the test-suite pins)
//! while the revision cache keeps the amortised cost incremental.

use crate::extract::{BapaForm, Extractor};
use crate::venn;
use crate::BapaLimits;
use ipl_logic::Form;
use std::collections::BTreeSet;

/// Result of a satisfiability check over the asserted atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BapaCheck {
    /// The asserted conjunction is definitely unsatisfiable.
    Unsat,
    /// No contradiction found (satisfiable, or beyond the configured limits).
    Unknown,
}

/// The incremental BAPA assertion engine.
#[derive(Debug)]
pub struct IncrementalBapa {
    limits: BapaLimits,
    /// The assertion stack: accepted in-fragment formulas, in order.
    forms: Vec<Form>,
    /// Parallel to `forms`: does the formula mention a cardinality?  Kept as
    /// a raw syntactic flag so the activation gate never pays an extraction.
    card_flags: Vec<bool>,
    /// Open scopes: `forms.len()` at each [`IncrementalBapa::push`].
    scopes: Vec<usize>,
    /// Bumped on every mutation; keys the memoised results below.
    revision: u64,
    /// Memoised extraction of the current assertion set.
    extracted: Option<(u64, Vec<BapaForm>)>,
    /// Memoised result of [`IncrementalBapa::check`].
    checked: Option<(u64, BapaCheck)>,
    /// Content-addressed verdicts of shared-variable components.  Across the
    /// leaves of one tableau search most components are identical (only the
    /// branch-local atoms change), and a component's verdict depends on its
    /// content alone, so entries stay valid across `pop` — each Venn
    /// translation is paid once per *distinct* component, not once per leaf.
    /// Keyed on a 128-bit content fingerprint (two seeded hashes, like the
    /// proof cache), so probes neither clone nor format anything.
    component_cache: std::collections::HashMap<(u64, u64), bool>,
}

impl IncrementalBapa {
    /// Creates an empty engine with the given limits.
    pub fn new(limits: BapaLimits) -> Self {
        IncrementalBapa {
            limits,
            forms: Vec::new(),
            card_flags: Vec::new(),
            scopes: Vec::new(),
            revision: 0,
            extracted: None,
            checked: None,
            component_cache: std::collections::HashMap::new(),
        }
    }

    /// [`venn::conjunction_unsatisfiable`] with the per-component verdicts
    /// served from (and recorded in) the content-addressed cache.
    fn conjunction_unsatisfiable_cached(&mut self, atoms: &[BapaForm]) -> bool {
        let limits = self.limits;
        for component in venn::components(atoms) {
            if limits.expired() {
                return false;
            }
            use std::hash::{DefaultHasher, Hash, Hasher};
            let mut h1 = DefaultHasher::new();
            let mut h2 = DefaultHasher::new();
            0x9e37_79b9_7f4a_7c15u64.hash(&mut h1);
            0x85eb_ca6b_27d4_eb4fu64.hash(&mut h2);
            for &i in &component {
                atoms[i].hash(&mut h1);
                atoms[i].hash(&mut h2);
            }
            let key = (h1.finish(), h2.finish());
            let unsat = match self.component_cache.get(&key) {
                Some(&cached) => cached,
                None => {
                    let fresh = venn::component_unsatisfiable(atoms, &component, &limits);
                    self.component_cache.insert(key, fresh);
                    fresh
                }
            };
            if unsat {
                return true;
            }
        }
        false
    }

    /// Opens a backtracking scope.
    pub fn push(&mut self) {
        self.scopes.push(self.forms.len());
    }

    /// Closes the innermost scope, discarding every assertion made since the
    /// matching [`IncrementalBapa::push`].
    pub fn pop(&mut self) {
        let mark = self.scopes.pop().expect("pop without matching push");
        if self.forms.len() != mark {
            self.forms.truncate(mark);
            self.card_flags.truncate(mark);
            self.revision += 1;
        }
    }

    /// Pops scopes until the depth is `depth` (a no-op when already there).
    /// Unlike a pop loop this truncates the assertion stack once and bumps
    /// the revision once, so a deep backjump costs one memo invalidation.
    pub fn pop_to(&mut self, depth: usize) {
        if self.scopes.len() <= depth {
            return;
        }
        let mark = self.scopes[depth];
        self.scopes.truncate(depth);
        if self.forms.len() != mark {
            self.forms.truncate(mark);
            self.card_flags.truncate(mark);
            self.revision += 1;
        }
    }

    /// Current scope depth (diagnostics and tests).
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }

    /// Number of asserted atoms.
    pub fn atom_count(&self) -> usize {
        self.forms.len()
    }

    /// Returns `true` if the exact formula is already on the assertion stack.
    pub fn contains(&self, form: &Form) -> bool {
        self.forms.contains(form)
    }

    /// Asserts a formula if it lies in the BAPA fragment.  Returns `true`
    /// when the formula was accepted; out-of-fragment formulas are ignored
    /// (sound: dropping conjuncts weakens the refutation).
    pub fn assert_form(&mut self, form: &Form) -> bool {
        // Self-scan acceptance test: the final extraction at check time uses
        // the whole-problem classification instead, but a formula that cannot
        // be extracted even under its own scan never will be.
        if Extractor::scan(&[form]).extract(form).is_none() {
            return false;
        }
        self.card_flags.push(mentions_card(form));
        self.forms.push(form.clone());
        self.revision += 1;
        true
    }

    /// The extracted atoms of the current assertion set, classified against
    /// the whole set — exactly what the one-shot pipeline would produce for
    /// the same conjunction.
    pub fn atoms(&mut self) -> &[BapaForm] {
        if self.extracted.as_ref().map(|(rev, _)| *rev) != Some(self.revision) {
            let refs: Vec<&Form> = self.forms.iter().collect();
            let extractor = Extractor::scan(&refs);
            let mut atoms = Vec::new();
            for form in &self.forms {
                if let Some(atom) = extractor.extract(form) {
                    atoms.extend(venn::conjuncts(&atom));
                }
            }
            self.extracted = Some((self.revision, atoms));
        }
        &self.extracted.as_ref().expect("just filled").1
    }

    /// Does any asserted formula mention a set cardinality?  The exchange
    /// layer uses this as its activation gate: without a cardinality atom the
    /// membership-level expansion already covers the fragment, and running
    /// the Venn translation at every tableau leaf would be pure overhead.
    /// Answered from flags recorded at assertion time — no extraction.
    pub fn has_cardinality(&self) -> bool {
        self.card_flags.iter().any(|&flag| flag)
    }

    /// The set, element and integer variables of the asserted atoms.
    pub fn variables(&mut self) -> (BTreeSet<String>, BTreeSet<String>, BTreeSet<String>) {
        let mut sets = BTreeSet::new();
        let mut elems = BTreeSet::new();
        let mut ints = BTreeSet::new();
        for atom in self.atoms().to_vec() {
            atom.set_vars(&mut sets);
            atom.element_vars(&mut elems);
            atom.int_vars(&mut ints);
        }
        (sets, elems, ints)
    }

    /// Checks the asserted conjunction for unsatisfiability, component-wise.
    /// The result is memoised until the assertion set changes.
    pub fn check(&mut self) -> BapaCheck {
        if let Some((rev, result)) = self.checked {
            if rev == self.revision {
                return result;
            }
        }
        let atoms = self.atoms().to_vec();
        let result = if self.conjunction_unsatisfiable_cached(&atoms) {
            BapaCheck::Unsat
        } else {
            BapaCheck::Unknown
        };
        self.checked = Some((self.revision, result));
        result
    }

    /// Does the asserted conjunction entail the candidate fact?  Decided by
    /// refuting `atoms /\ ~fact`; returns `false` when the fact lies outside
    /// the fragment or the problem exceeds the limits.
    pub fn entails(&mut self, fact: &Form) -> bool {
        if self.check() == BapaCheck::Unsat {
            return true; // everything follows from a contradiction
        }
        // Classify against atoms and candidate together so the candidate's
        // variables pick up their roles from the assertion set.
        let mut refs: Vec<&Form> = self.forms.iter().collect();
        refs.push(fact);
        let extractor = Extractor::scan(&refs);
        let Some(extracted_fact) = extractor.extract(fact) else {
            return false;
        };
        let mut parts = Vec::new();
        for form in &self.forms {
            if let Some(atom) = extractor.extract(form) {
                parts.extend(venn::conjuncts(&atom));
            }
        }
        parts.push(BapaForm::Not(Box::new(extracted_fact)));
        self.conjunction_unsatisfiable_cached(&parts)
    }
}

/// Does the raw formula mention a `card(...)` term anywhere?
fn mentions_card(form: &Form) -> bool {
    fn rec(form: &Form, found: &mut bool) {
        if *found {
            return;
        }
        if matches!(form, Form::Card(_)) {
            *found = true;
            return;
        }
        form.for_each_child(|c| rec(c, found));
    }
    let mut found = false;
    rec(form, &mut found);
    found
}

impl Default for IncrementalBapa {
    fn default() -> Self {
        IncrementalBapa::new(BapaLimits::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;

    fn f(s: &str) -> Form {
        parse_form(s).unwrap()
    }

    #[test]
    fn detects_conflicts_incrementally() {
        let mut bapa = IncrementalBapa::default();
        assert!(bapa.assert_form(&f("x in s")));
        assert_eq!(bapa.check(), BapaCheck::Unknown);
        assert!(bapa.assert_form(&f("card(s) = 0")));
        assert_eq!(bapa.check(), BapaCheck::Unsat);
    }

    #[test]
    fn rejects_out_of_fragment_forms() {
        let mut bapa = IncrementalBapa::default();
        assert!(!bapa.assert_form(&f("x.next = y")));
        assert_eq!(bapa.atom_count(), 0);
    }

    #[test]
    fn pop_restores_the_assertion_stack_exactly() {
        let mut bapa = IncrementalBapa::default();
        bapa.assert_form(&f("x in s"));
        bapa.push();
        bapa.assert_form(&f("card(s) = 0"));
        assert_eq!(bapa.check(), BapaCheck::Unsat);
        bapa.pop();
        assert_eq!(bapa.atom_count(), 1);
        assert_eq!(bapa.check(), BapaCheck::Unknown);
        // A different second scope works independently.
        bapa.push();
        bapa.assert_form(&f("card(s) = 1"));
        assert_eq!(bapa.check(), BapaCheck::Unknown);
        bapa.pop();
        assert_eq!(bapa.depth(), 0);
    }

    #[test]
    fn pop_to_unwinds_multiple_scopes_at_once() {
        let mut bapa = IncrementalBapa::default();
        bapa.assert_form(&f("x in s"));
        bapa.push();
        bapa.assert_form(&f("card(s) <= 3"));
        bapa.push();
        bapa.assert_form(&f("card(s) = 0"));
        assert_eq!(bapa.check(), BapaCheck::Unsat);
        bapa.pop_to(0);
        assert_eq!(bapa.depth(), 0);
        assert_eq!(bapa.atom_count(), 1);
        assert_eq!(bapa.check(), BapaCheck::Unknown);
        // A no-op pop_to leaves the revision memo intact.
        bapa.pop_to(0);
        assert_eq!(bapa.atom_count(), 1);
    }

    #[test]
    fn entailment_of_emptiness_and_equalities() {
        let mut bapa = IncrementalBapa::default();
        bapa.assert_form(&f("card(s) = 0"));
        assert!(bapa.entails(&f("s = emptyset")));
        assert!(!bapa.entails(&f("s = t")));
        bapa.assert_form(&f("card(t) = 0"));
        assert!(bapa.entails(&f("s = t")));
    }

    #[test]
    fn unrelated_components_do_not_blow_the_set_limit() {
        let mut bapa = IncrementalBapa::default();
        // Seven sets in total — beyond the monolithic limit of six — but the
        // conflicting component only involves three.
        bapa.assert_form(&f("a subseteq b"));
        bapa.assert_form(&f("c = d union e"));
        bapa.assert_form(&f("f subseteq g"));
        bapa.assert_form(&f("card(b) < card(a)"));
        assert_eq!(bapa.check(), BapaCheck::Unsat);
    }
}
