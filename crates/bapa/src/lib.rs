//! # `ipl-bapa` — Boolean Algebra with Presburger Arithmetic
//!
//! A from-scratch implementation of the BAPA decision procedure used by Jahob
//! (Kuncak, Nguyen, Rinard — "Deciding Boolean Algebra with Presburger
//! Arithmetic") as one of the specialised reasoners in the prover cascade of
//! *"An Integrated Proof Language for Imperative Programs"*.
//!
//! The procedure decides validity of formulas that combine:
//!
//! * set algebra over set variables (union, intersection, difference, subset,
//!   equality, emptiness, finite literals of element variables), and
//! * linear integer arithmetic over integer variables and set cardinalities.
//!
//! ## Pipeline
//!
//! 1. [`extract`] maps an `ipl-logic` formula into the BAPA abstract syntax
//!    ([`BapaForm`]), rejecting anything outside the fragment.
//! 2. [`venn`] introduces one non-negative integer variable per Venn region of
//!    the set variables and rewrites every cardinality and set-algebra atom
//!    into linear arithmetic over those variables.
//! 3. [`presburger`] decides the resulting Presburger sentence: Cooper's
//!    quantifier-elimination algorithm for small problems, with a sound
//!    Fourier–Motzkin refutation fallback for larger ones.
//!
//! The top-level entry point is [`prove_valid`], which checks validity of
//! `assumptions --> goal` and errs on the side of returning
//! [`BapaOutcome::Unknown`] whenever the formula leaves the fragment or the
//! problem exceeds the configured size limits.

pub mod extract;
pub mod incremental;
pub mod presburger;
pub mod venn;

pub use incremental::IncrementalBapa;
pub use presburger::{id_conjunction_infeasible, IdLinExpr};

use ipl_logic::Form;

/// The result of a BAPA validity query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BapaOutcome {
    /// The implication is valid.
    Valid,
    /// The procedure could not establish validity (outside the fragment, size
    /// limits exceeded, or genuinely invalid).
    Unknown,
}

/// Resource limits for the BAPA procedure.
#[derive(Debug, Clone, Copy)]
pub struct BapaLimits {
    /// Maximum number of distinct set variables (the Venn construction is
    /// exponential in this number).
    pub max_set_vars: usize,
    /// Maximum number of integer variables Cooper's algorithm is applied to;
    /// above this the Fourier–Motzkin fallback is used.
    pub max_cooper_vars: usize,
    /// Hard cap on formula nodes produced during quantifier elimination.
    pub max_qe_nodes: usize,
    /// Cooperative deadline: the Venn-region and quantifier-elimination
    /// loops poll it and give up (reporting `Unknown`) once it passes.
    pub deadline: Option<std::time::Instant>,
}

impl Default for BapaLimits {
    fn default() -> Self {
        BapaLimits {
            max_set_vars: 6,
            max_cooper_vars: 6,
            max_qe_nodes: 20_000,
            deadline: None,
        }
    }
}

impl BapaLimits {
    /// Returns `true` once the deadline (if any) has passed.
    pub fn expired(&self) -> bool {
        matches!(self.deadline, Some(deadline) if std::time::Instant::now() >= deadline)
    }
}

/// Checks validity of `(/\ assumptions) --> goal` within the BAPA fragment.
///
/// Returns [`BapaOutcome::Unknown`] (never an error) when any part of the
/// input is outside the fragment; the caller simply moves on to the next
/// prover in the cascade.
pub fn prove_valid(assumptions: &[Form], goal: &Form, limits: &BapaLimits) -> BapaOutcome {
    // Classify variables by scanning the whole problem (assumptions and goal
    // together), so that e.g. an element variable used in a membership in one
    // assumption is recognised as an element in a disequality elsewhere.
    let mut scan_targets: Vec<&Form> = assumptions.iter().collect();
    scan_targets.push(goal);
    let extractor = extract::Extractor::scan(&scan_targets);
    let mut translated = Vec::with_capacity(assumptions.len() + 1);
    for assumption in assumptions {
        match extractor.extract(assumption) {
            Some(b) => translated.push(b),
            None => continue, // irrelevant assumption: dropping it is sound for validity
        }
    }
    let goal = match extractor.extract(goal) {
        Some(g) => g,
        None => return BapaOutcome::Unknown,
    };
    // Validity of A --> G  <=>  unsatisfiability of A /\ ~G.  The conjunction
    // is refuted component-wise so that unrelated assumptions (with their own
    // set variables) cannot push the Venn construction over its size limit.
    let mut parts: Vec<extract::BapaForm> = Vec::new();
    for t in translated {
        parts.extend(venn::conjuncts(&t));
    }
    parts.push(extract::BapaForm::Not(Box::new(goal)));
    if venn::conjunction_unsatisfiable(&parts, limits) {
        BapaOutcome::Valid
    } else {
        BapaOutcome::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;

    fn valid(assumptions: &[&str], goal: &str) -> bool {
        let assumptions: Vec<Form> = assumptions.iter().map(|s| parse_form(s).unwrap()).collect();
        let goal = parse_form(goal).unwrap();
        prove_valid(&assumptions, &goal, &BapaLimits::default()) == BapaOutcome::Valid
    }

    #[test]
    fn cardinality_of_disjoint_union() {
        assert!(valid(
            &["card(a inter b) = 0", "c = a union b"],
            "card(c) = card(a) + card(b)"
        ));
    }

    #[test]
    fn insertion_increments_cardinality() {
        assert!(valid(
            &["~(x in content)", "newcontent = content union {x}"],
            "card(newcontent) = card(content) + 1"
        ));
    }

    #[test]
    fn removal_decrements_cardinality() {
        assert!(valid(
            &["x in content", "newcontent = content minus {x}"],
            "card(newcontent) = card(content) - 1"
        ));
    }

    #[test]
    fn subset_implies_cardinality_order() {
        assert!(valid(&["a subseteq b"], "card(a) <= card(b)"));
    }

    #[test]
    fn empty_set_has_zero_cardinality() {
        assert!(valid(&["s = emptyset"], "card(s) = 0"));
        assert!(valid(&["card(s) = 0"], "s = emptyset"));
    }

    #[test]
    fn invalid_statements_are_not_proved() {
        assert!(!valid(&["a subseteq b"], "card(b) <= card(a)"));
        assert!(!valid(&[], "card(a) = 0"));
        assert!(!valid(
            &["c = a union b"],
            "card(c) = card(a) + card(b)" // wrong without disjointness
        ));
    }

    #[test]
    fn pure_presburger_facts() {
        assert!(valid(&["x = y + 1", "y >= 0"], "x >= 1"));
        assert!(!valid(&["x = y + 1"], "x >= 1"));
    }

    #[test]
    fn membership_and_cardinality() {
        assert!(valid(&["x in s"], "card(s) >= 1"));
        assert!(valid(&["x in s", "y in s", "~(x = y)"], "card(s) >= 2"));
    }

    #[test]
    fn out_of_fragment_returns_unknown() {
        // Field reads are not part of the BAPA fragment.
        let assumptions = vec![parse_form("x.next = y").unwrap()];
        let goal = parse_form("card(s) >= 0").unwrap();
        // The out-of-fragment assumption is dropped (soundly); the goal itself
        // is provable because cardinalities are non-negative.
        assert_eq!(
            prove_valid(&assumptions, &goal, &BapaLimits::default()),
            BapaOutcome::Valid
        );
        let goal = parse_form("y.next = x").unwrap();
        assert_eq!(
            prove_valid(&assumptions, &goal, &BapaLimits::default()),
            BapaOutcome::Unknown
        );
    }
}
