//! Quantifier-free and quantified Presburger arithmetic.
//!
//! Two deciders are provided:
//!
//! * a **Fourier–Motzkin refutation** over the rationals (with integer
//!   tightening of strict inequalities), which is sound for proving
//!   unsatisfiability and fast; and
//! * **Cooper's quantifier elimination**, a complete decision procedure for
//!   Presburger sentences, used when the variable count is small enough.
//!
//! [`unsatisfiable`] combines the two: it returns `true` only when the
//! sentence is definitely unsatisfiable.

use crate::BapaLimits;
use std::collections::{BTreeMap, BTreeSet};

/// A linear expression `sum(coeff_i * var_i) + constant`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LinExpr {
    /// Variable coefficients (zero coefficients are removed).
    pub coeffs: BTreeMap<String, i64>,
    /// The constant term.
    pub constant: i64,
}

impl LinExpr {
    /// The constant expression.
    pub fn constant(value: i64) -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: value,
        }
    }

    /// The expression `coeff * var`.
    pub fn variable(name: &str, coeff: i64) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        if coeff != 0 {
            coeffs.insert(name.to_string(), coeff);
        }
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Adds `coeff * var` to this expression in place.
    pub fn add_var(&mut self, name: &str, coeff: i64) {
        let entry = self.coeffs.entry(name.to_string()).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            self.coeffs.remove(name);
        }
    }

    /// Returns `self + other`.
    pub fn plus(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.constant += other.constant;
        for (name, coeff) in &other.coeffs {
            out.add_var(name, *coeff);
        }
        out
    }

    /// Returns `k * self`.
    pub fn scaled(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::constant(0);
        }
        LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|(n, c)| (n.clone(), c * k))
                .collect(),
            constant: self.constant * k,
        }
    }

    /// Returns `self + k`.
    pub fn shifted(&self, k: i64) -> LinExpr {
        let mut out = self.clone();
        out.constant += k;
        out
    }

    /// The coefficient of a variable (zero if absent).
    pub fn coeff(&self, name: &str) -> i64 {
        self.coeffs.get(name).copied().unwrap_or(0)
    }

    /// Removes the variable and returns its former coefficient.
    pub fn remove(&mut self, name: &str) -> i64 {
        self.coeffs.remove(name).unwrap_or(0)
    }

    /// Returns `true` if the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Substitutes `var := replacement` (the replacement is itself linear).
    pub fn substitute(&self, name: &str, replacement: &LinExpr) -> LinExpr {
        let coeff = self.coeff(name);
        if coeff == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.remove(name);
        out.plus(&replacement.scaled(coeff))
    }
}

/// Presburger formulas.  `Le(e)` means `e <= 0`; `Divides(d, e)` means
/// `d | e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PForm {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// `expr <= 0`.
    Le(LinExpr),
    /// `d` divides `expr` (`d > 0`).
    Divides(i64, LinExpr),
    /// Negation.
    Not(Box<PForm>),
    /// Conjunction.
    And(Vec<PForm>),
    /// Disjunction.
    Or(Vec<PForm>),
    /// Existential quantification over an integer variable.
    Exists(String, Box<PForm>),
}

impl PForm {
    /// `expr <= 0`, with constant folding.
    pub fn le(expr: LinExpr) -> PForm {
        if expr.is_constant() {
            if expr.constant <= 0 {
                PForm::True
            } else {
                PForm::False
            }
        } else {
            PForm::Le(expr)
        }
    }

    /// Negation with simplification.
    // Associated smart constructor named after the connective, not an
    // operator on self; `std::ops::Not` would change every call site.
    #[allow(clippy::should_implement_trait)]
    pub fn not(inner: PForm) -> PForm {
        match inner {
            PForm::True => PForm::False,
            PForm::False => PForm::True,
            PForm::Not(inner) => *inner,
            other => PForm::Not(Box::new(other)),
        }
    }

    /// Flattening conjunction.
    pub fn and(parts: Vec<PForm>) -> PForm {
        let mut out = Vec::new();
        for p in parts {
            match p {
                PForm::True => {}
                PForm::False => return PForm::False,
                PForm::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => PForm::True,
            1 => out.pop().expect("len checked"),
            _ => PForm::And(out),
        }
    }

    /// Flattening disjunction.
    pub fn or(parts: Vec<PForm>) -> PForm {
        let mut out = Vec::new();
        for p in parts {
            match p {
                PForm::False => {}
                PForm::True => return PForm::True,
                PForm::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => PForm::False,
            1 => out.pop().expect("len checked"),
            _ => PForm::Or(out),
        }
    }

    /// Collects free variables (quantified variables are excluded).
    pub fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            PForm::True | PForm::False => {}
            PForm::Le(e) | PForm::Divides(_, e) => out.extend(e.coeffs.keys().cloned()),
            PForm::Not(inner) => inner.collect_vars(out),
            PForm::And(parts) | PForm::Or(parts) => parts.iter().for_each(|p| p.collect_vars(out)),
            PForm::Exists(var, body) => {
                let mut inner = BTreeSet::new();
                body.collect_vars(&mut inner);
                inner.remove(var);
                out.extend(inner);
            }
        }
    }

    /// Number of nodes (used for quantifier-elimination budgets).
    pub fn size(&self) -> usize {
        match self {
            PForm::True | PForm::False | PForm::Le(_) | PForm::Divides(..) => 1,
            PForm::Not(inner) => 1 + inner.size(),
            PForm::And(parts) | PForm::Or(parts) => {
                1 + parts.iter().map(PForm::size).sum::<usize>()
            }
            PForm::Exists(_, body) => 1 + body.size(),
        }
    }

    /// Negation normal form over the literal set `{Le, Divides}`.
    pub fn nnf(&self) -> PForm {
        self.nnf_signed(true)
    }

    fn nnf_signed(&self, positive: bool) -> PForm {
        match self {
            PForm::True => {
                if positive {
                    PForm::True
                } else {
                    PForm::False
                }
            }
            PForm::False => {
                if positive {
                    PForm::False
                } else {
                    PForm::True
                }
            }
            PForm::Le(e) => {
                if positive {
                    PForm::le(e.clone())
                } else {
                    // not (e <= 0)  <=>  e >= 1  <=>  -e + 1 <= 0 (integers)
                    PForm::le(e.scaled(-1).shifted(1))
                }
            }
            PForm::Divides(d, e) => {
                if positive {
                    PForm::Divides(*d, e.clone())
                } else {
                    PForm::Not(Box::new(PForm::Divides(*d, e.clone())))
                }
            }
            PForm::Not(inner) => inner.nnf_signed(!positive),
            PForm::And(parts) => {
                let converted: Vec<PForm> = parts.iter().map(|p| p.nnf_signed(positive)).collect();
                if positive {
                    PForm::and(converted)
                } else {
                    PForm::or(converted)
                }
            }
            PForm::Or(parts) => {
                let converted: Vec<PForm> = parts.iter().map(|p| p.nnf_signed(positive)).collect();
                if positive {
                    PForm::or(converted)
                } else {
                    PForm::and(converted)
                }
            }
            PForm::Exists(var, body) => {
                // Quantifiers are only produced at the top level by the Venn
                // translation; a negated existential cannot be put in NNF over
                // this literal language, so keep it (Cooper handles prenex
                // sentences only and the callers guarantee that shape).
                if positive {
                    PForm::Exists(var.clone(), Box::new(body.nnf_signed(true)))
                } else {
                    PForm::Not(Box::new(PForm::Exists(
                        var.clone(),
                        Box::new(body.nnf_signed(true)),
                    )))
                }
            }
        }
    }

    /// Substitutes a variable by a linear expression in every literal.
    pub fn substitute(&self, name: &str, replacement: &LinExpr) -> PForm {
        match self {
            PForm::True | PForm::False => self.clone(),
            PForm::Le(e) => PForm::le(e.substitute(name, replacement)),
            PForm::Divides(d, e) => PForm::Divides(*d, e.substitute(name, replacement)),
            PForm::Not(inner) => PForm::not(inner.substitute(name, replacement)),
            PForm::And(parts) => PForm::and(
                parts
                    .iter()
                    .map(|p| p.substitute(name, replacement))
                    .collect(),
            ),
            PForm::Or(parts) => PForm::or(
                parts
                    .iter()
                    .map(|p| p.substitute(name, replacement))
                    .collect(),
            ),
            PForm::Exists(var, body) => {
                if var == name {
                    self.clone()
                } else {
                    PForm::Exists(var.clone(), Box::new(body.substitute(name, replacement)))
                }
            }
        }
    }

    /// Evaluates a variable-free formula.
    ///
    /// # Panics
    ///
    /// Panics if the formula still contains variables or quantifiers.
    pub fn eval_closed(&self) -> bool {
        match self {
            PForm::True => true,
            PForm::False => false,
            PForm::Le(e) => {
                assert!(e.is_constant(), "eval_closed on open formula");
                e.constant <= 0
            }
            PForm::Divides(d, e) => {
                assert!(e.is_constant(), "eval_closed on open formula");
                e.constant.rem_euclid(*d) == 0
            }
            PForm::Not(inner) => !inner.eval_closed(),
            PForm::And(parts) => parts.iter().all(PForm::eval_closed),
            PForm::Or(parts) => parts.iter().any(PForm::eval_closed),
            PForm::Exists(..) => panic!("eval_closed on quantified formula"),
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

fn lcm(a: i64, b: i64) -> i64 {
    (a / gcd(a, b)).saturating_mul(b).abs().max(1)
}

/// Ceiling division for a positive divisor.
fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b) + i64::from(a.rem_euclid(b) != 0)
}

// --------------------------------------------------------------------------
// Fourier–Motzkin refutation
// --------------------------------------------------------------------------

/// A conjunction of `expr <= 0` constraints (divisibility literals dropped).
#[derive(Debug, Clone, Default)]
struct Conjunct {
    les: Vec<LinExpr>,
}

impl Conjunct {
    /// Normalises constraints (divide by the gcd of the coefficients, round
    /// the constant towards the tighter integer bound) and removes duplicates.
    fn normalise(&mut self) {
        for le in &mut self.les {
            let mut g = 0i64;
            for c in le.coeffs.values() {
                g = gcd(g, *c);
            }
            if g > 1 {
                for c in le.coeffs.values_mut() {
                    *c /= g;
                }
                // sum(c*g*x) + k <= 0  <=>  sum(c*x) <= -k/g  <=> ... + ceil(k/g) <= 0
                le.constant = div_ceil(le.constant, g);
            }
        }
        self.les.sort();
        self.les.dedup();
    }

    /// Fourier–Motzkin elimination over the rationals: returns `true` if the
    /// conjunction is infeasible (which implies integer infeasibility).
    fn infeasible(mut self, max_constraints: usize) -> bool {
        loop {
            self.normalise();
            // Constant contradictions?
            for le in &self.les {
                if le.is_constant() && le.constant > 0 {
                    return true;
                }
            }
            // Pick the variable whose elimination produces the fewest new
            // constraints (classic Fourier–Motzkin heuristic).
            let mut vars: BTreeSet<String> = BTreeSet::new();
            for le in &self.les {
                vars.extend(le.coeffs.keys().cloned());
            }
            let var = match vars.into_iter().min_by_key(|v| {
                let lowers = self.les.iter().filter(|e| e.coeff(v) < 0).count();
                let uppers = self.les.iter().filter(|e| e.coeff(v) > 0).count();
                lowers * uppers
            }) {
                Some(v) => v,
                None => return false,
            };
            let mut lowers: Vec<LinExpr> = Vec::new(); // var >= expr  (coeff < 0)
            let mut uppers: Vec<LinExpr> = Vec::new(); // var <= expr  (coeff > 0)
            let mut rest: Vec<LinExpr> = Vec::new();
            for le in self.les.drain(..) {
                let c = le.coeff(&var);
                if c == 0 {
                    rest.push(le);
                } else if c > 0 {
                    uppers.push(le);
                } else {
                    lowers.push(le);
                }
            }
            // Combine every lower with every upper:  (c_u > 0): c_u*x + r_u <= 0
            // and (c_l < 0): c_l*x + r_l <= 0.  Eliminate x by the positive
            // combination |c_l| * upper + c_u * lower.
            for upper in &uppers {
                for lower in &lowers {
                    let cu = upper.coeff(&var);
                    let cl = lower.coeff(&var).abs();
                    let combined = upper.scaled(cl).plus(&lower.scaled(cu));
                    debug_assert_eq!(combined.coeff(&var), 0);
                    rest.push(combined);
                }
            }
            if rest.len() > max_constraints {
                return false; // give up rather than blow up
            }
            self.les = rest;
        }
    }
}

/// Converts an NNF, quantifier-free formula into disjunctive normal form as a
/// list of conjunctions of `<= 0` constraints.  Divisibility literals are
/// dropped (weakening, hence sound for refutation).  Returns `None` if the
/// DNF exceeds the cap.
fn dnf(form: &PForm, cap: usize) -> Option<Vec<Conjunct>> {
    match form {
        PForm::True => Some(vec![Conjunct::default()]),
        PForm::False => Some(vec![]),
        PForm::Le(e) => Some(vec![Conjunct {
            les: vec![e.clone()],
        }]),
        PForm::Divides(..) | PForm::Not(_) => Some(vec![Conjunct::default()]), // dropped
        PForm::And(parts) => {
            let mut acc = vec![Conjunct::default()];
            for part in parts {
                let branches = dnf(part, cap)?;
                let mut next = Vec::new();
                for a in &acc {
                    for b in &branches {
                        let mut merged = a.clone();
                        merged.les.extend(b.les.iter().cloned());
                        next.push(merged);
                        if next.len() > cap {
                            return None;
                        }
                    }
                }
                acc = next;
            }
            Some(acc)
        }
        PForm::Or(parts) => {
            let mut out = Vec::new();
            for part in parts {
                out.extend(dnf(part, cap)?);
                if out.len() > cap {
                    return None;
                }
            }
            Some(out)
        }
        PForm::Exists(_, body) => dnf(body, cap),
    }
}

/// Sound unsatisfiability check by rational Fourier–Motzkin on the DNF.
pub fn fm_unsatisfiable(body: &PForm) -> bool {
    let nnf = body.nnf();
    match dnf(&nnf, 4_096) {
        Some(conjuncts) => conjuncts.into_iter().all(|c| c.infeasible(20_000)),
        None => false,
    }
}

// --------------------------------------------------------------------------
// Cooper's algorithm
// --------------------------------------------------------------------------

/// Eliminates one existential quantifier `exists x. body` where `body` is
/// quantifier-free and in NNF.  Returns `None` if the result would exceed the
/// node budget.
fn cooper_eliminate(var: &str, body: &PForm, budget: usize) -> Option<PForm> {
    // 1. Compute the lcm of the coefficients of `var`.
    let mut coeff_lcm = 1i64;
    collect_coeff_lcm(body, var, &mut coeff_lcm);
    // 2. Scale every literal so the coefficient of var is +-coeff_lcm, then
    //    conceptually substitute y = coeff_lcm * var and add coeff_lcm | y.
    let scaled = scale_var(body, var, coeff_lcm);
    let scaled = PForm::and(vec![
        scaled,
        PForm::Divides(coeff_lcm, LinExpr::variable(var, 1)),
    ]);
    // 3. delta = lcm of the divisors of all divisibility literals.
    let mut delta = 1i64;
    collect_divisor_lcm(&scaled, var, &mut delta);
    // 4. Lower bounds: literals of the form  -y + b <= 0  (i.e. y >= b).
    let mut lower_bounds: Vec<LinExpr> = Vec::new();
    collect_lower_bounds(&scaled, var, &mut lower_bounds);

    let mut disjuncts = Vec::new();
    for j in 1..=delta {
        // F_{-infinity}[y := j]
        let minus_inf = minus_infinity(&scaled, var);
        disjuncts.push(minus_inf.substitute(var, &LinExpr::constant(j)));
        // F[y := b + j] for every lower bound b.
        for bound in &lower_bounds {
            disjuncts.push(scaled.substitute(var, &bound.shifted(j)));
        }
        let total: usize = disjuncts.iter().map(PForm::size).sum();
        if total > budget {
            return None;
        }
    }
    Some(PForm::or(disjuncts))
}

fn collect_coeff_lcm(form: &PForm, var: &str, acc: &mut i64) {
    match form {
        PForm::Le(e) | PForm::Divides(_, e) => {
            let c = e.coeff(var);
            if c != 0 {
                *acc = lcm(*acc, c.abs());
            }
        }
        PForm::Not(inner) => collect_coeff_lcm(inner, var, acc),
        PForm::And(parts) | PForm::Or(parts) => {
            parts.iter().for_each(|p| collect_coeff_lcm(p, var, acc))
        }
        _ => {}
    }
}

/// Scales literals so the coefficient of `var` becomes `+-target` and then
/// renames `target*var` to just `var` (the standard Cooper step).
fn scale_var(form: &PForm, var: &str, target: i64) -> PForm {
    match form {
        PForm::Le(e) => {
            let c = e.coeff(var);
            if c == 0 {
                PForm::le(e.clone())
            } else {
                let factor = target / c.abs();
                let mut scaled = e.scaled(factor);
                // Now the coefficient of var is +-target; rename to +-1.
                let sign = if c > 0 { 1 } else { -1 };
                scaled.remove(var);
                scaled.add_var(var, sign);
                PForm::Le(scaled)
            }
        }
        PForm::Divides(d, e) => {
            let c = e.coeff(var);
            if c == 0 {
                PForm::Divides(*d, e.clone())
            } else {
                let factor = target / c.abs();
                let mut scaled = e.scaled(factor);
                let sign = if c > 0 { 1 } else { -1 };
                scaled.remove(var);
                scaled.add_var(var, sign);
                PForm::Divides(d * factor, scaled)
            }
        }
        PForm::Not(inner) => PForm::Not(Box::new(scale_var(inner, var, target))),
        PForm::And(parts) => PForm::and(parts.iter().map(|p| scale_var(p, var, target)).collect()),
        PForm::Or(parts) => PForm::or(parts.iter().map(|p| scale_var(p, var, target)).collect()),
        other => other.clone(),
    }
}

fn collect_divisor_lcm(form: &PForm, var: &str, acc: &mut i64) {
    match form {
        PForm::Divides(d, e) if e.coeff(var) != 0 => {
            *acc = lcm(*acc, *d);
        }
        PForm::Not(inner) => collect_divisor_lcm(inner, var, acc),
        PForm::And(parts) | PForm::Or(parts) => {
            parts.iter().for_each(|p| collect_divisor_lcm(p, var, acc))
        }
        _ => {}
    }
}

fn collect_lower_bounds(form: &PForm, var: &str, out: &mut Vec<LinExpr>) {
    match form {
        // -var + rest <= 0  means  var >= rest, i.e. the *strict* lower
        // bound used by Cooper's B-set is rest - 1.
        PForm::Le(e) if e.coeff(var) == -1 => {
            let mut rest = e.clone();
            rest.remove(var);
            out.push(rest.shifted(-1));
        }
        PForm::Not(inner) => collect_lower_bounds(inner, var, out),
        PForm::And(parts) | PForm::Or(parts) => {
            parts.iter().for_each(|p| collect_lower_bounds(p, var, out))
        }
        _ => {}
    }
}

/// The `F_{-infinity}` transformation: upper-bound literals become true,
/// lower-bound literals become false.
fn minus_infinity(form: &PForm, var: &str) -> PForm {
    match form {
        PForm::Le(e) => match e.coeff(var) {
            0 => PForm::le(e.clone()),
            c if c > 0 => PForm::True, // var <= something: true at -infinity
            _ => PForm::False,         // var >= something: false at -infinity
        },
        PForm::Divides(..) => form.clone(),
        PForm::Not(inner) => PForm::not(minus_infinity(inner, var)),
        PForm::And(parts) => PForm::and(parts.iter().map(|p| minus_infinity(p, var)).collect()),
        PForm::Or(parts) => PForm::or(parts.iter().map(|p| minus_infinity(p, var)).collect()),
        other => other.clone(),
    }
}

/// Decides a prenex existential sentence `exists x1 ... xn. body` with
/// Cooper's algorithm.  Returns `None` if the quantifier-elimination budget is
/// exceeded.
pub fn cooper_decide(sentence: &PForm, limits: &BapaLimits) -> Option<bool> {
    // Peel the existential prefix.
    let mut vars = Vec::new();
    let mut body = sentence;
    while let PForm::Exists(var, inner) = body {
        vars.push(var.clone());
        body = inner;
    }
    if vars.len() > limits.max_cooper_vars {
        return None;
    }
    let mut current = body.nnf();
    // Eliminate innermost-first (reverse declaration order).
    for var in vars.iter().rev() {
        if limits.expired() {
            return None;
        }
        current = cooper_eliminate(var, &current, limits.max_qe_nodes)?.nnf();
        if current.size() > limits.max_qe_nodes {
            return None;
        }
    }
    let mut remaining = BTreeSet::new();
    current.collect_vars(&mut remaining);
    if !remaining.is_empty() {
        return None; // non-prenex input; refuse rather than mis-evaluate
    }
    Some(current.eval_closed())
}

/// Returns `true` only if the sentence is definitely unsatisfiable.
pub fn unsatisfiable(sentence: &PForm, limits: &BapaLimits) -> bool {
    // Fast sound refutation first.
    if fm_unsatisfiable(sentence) {
        return true;
    }
    // Exact decision for small problems.
    matches!(cooper_decide(sentence, limits), Some(false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> LinExpr {
        LinExpr::variable(name, 1)
    }

    fn exists_all(vars: &[&str], body: PForm) -> PForm {
        let mut out = body;
        for var in vars.iter().rev() {
            out = PForm::Exists(var.to_string(), Box::new(out));
        }
        out
    }

    #[test]
    fn linear_expression_algebra() {
        let e = v("x").scaled(2).plus(&v("y").scaled(-1)).shifted(3);
        assert_eq!(e.coeff("x"), 2);
        assert_eq!(e.coeff("y"), -1);
        assert_eq!(e.constant, 3);
        let s = e.substitute("x", &v("y").shifted(1));
        assert_eq!(s.coeff("x"), 0);
        assert_eq!(s.coeff("y"), 1);
        assert_eq!(s.constant, 5);
    }

    #[test]
    fn fm_detects_simple_contradiction() {
        // x <= 0  and  x >= 1
        let body = PForm::and(vec![
            PForm::le(v("x")),
            PForm::le(v("x").scaled(-1).shifted(1)),
        ]);
        assert!(fm_unsatisfiable(&body));
    }

    #[test]
    fn fm_does_not_claim_satisfiable_systems_unsat() {
        let body = PForm::and(vec![
            PForm::le(v("x").scaled(-1)),   // x >= 0
            PForm::le(v("x").shifted(-10)), // x <= 10
        ]);
        assert!(!fm_unsatisfiable(&body));
    }

    #[test]
    fn cooper_decides_satisfiable_sentence() {
        // exists x. x >= 0 /\ x <= 10
        let body = PForm::and(vec![
            PForm::le(v("x").scaled(-1)),
            PForm::le(v("x").shifted(-10)),
        ]);
        let sentence = exists_all(&["x"], body);
        assert_eq!(cooper_decide(&sentence, &BapaLimits::default()), Some(true));
    }

    #[test]
    fn cooper_decides_unsatisfiable_sentence() {
        // exists x. x >= 1 /\ x <= 0
        let body = PForm::and(vec![
            PForm::le(v("x").scaled(-1).shifted(1)),
            PForm::le(v("x")),
        ]);
        let sentence = exists_all(&["x"], body);
        assert_eq!(
            cooper_decide(&sentence, &BapaLimits::default()),
            Some(false)
        );
    }

    #[test]
    fn cooper_handles_divisibility() {
        // exists x. 0 <= x <= 5 /\ 2 | x /\ 3 | x  -> x = 0 works, satisfiable.
        let body = PForm::and(vec![
            PForm::le(v("x").scaled(-1)),
            PForm::le(v("x").shifted(-5)),
            PForm::Divides(2, v("x")),
            PForm::Divides(3, v("x")),
        ]);
        assert_eq!(
            cooper_decide(&exists_all(&["x"], body), &BapaLimits::default()),
            Some(true)
        );

        // exists x. 1 <= x <= 5 /\ 2 | x /\ 3 | x  -> needs x = 6, unsatisfiable.
        let body = PForm::and(vec![
            PForm::le(v("x").scaled(-1).shifted(1)),
            PForm::le(v("x").shifted(-5)),
            PForm::Divides(2, v("x")),
            PForm::Divides(3, v("x")),
        ]);
        assert_eq!(
            cooper_decide(&exists_all(&["x"], body), &BapaLimits::default()),
            Some(false)
        );
    }

    #[test]
    fn cooper_with_two_variables() {
        // exists x y. x = 2y /\ x = 2y + 1  is unsatisfiable.
        let eq1a = v("x").plus(&v("y").scaled(-2));
        let eq1b = eq1a.scaled(-1);
        let eq2a = v("x").plus(&v("y").scaled(-2)).shifted(-1);
        let eq2b = eq2a.scaled(-1);
        let body = PForm::and(vec![
            PForm::le(eq1a),
            PForm::le(eq1b),
            PForm::le(eq2a),
            PForm::le(eq2b),
        ]);
        assert_eq!(
            cooper_decide(&exists_all(&["x", "y"], body), &BapaLimits::default()),
            Some(false)
        );
    }

    #[test]
    fn cooper_scaled_coefficients() {
        // exists x. 2x >= 3 /\ 2x <= 4  -> x = 2, satisfiable.
        let body = PForm::and(vec![
            PForm::le(LinExpr::variable("x", -2).shifted(3)),
            PForm::le(LinExpr::variable("x", 2).shifted(-4)),
        ]);
        assert_eq!(
            cooper_decide(&exists_all(&["x"], body), &BapaLimits::default()),
            Some(true)
        );

        // exists x. 2x >= 3 /\ 2x <= 3  -> 2x = 3 has no integer solution.
        let body = PForm::and(vec![
            PForm::le(LinExpr::variable("x", -2).shifted(3)),
            PForm::le(LinExpr::variable("x", 2).shifted(-3)),
        ]);
        assert_eq!(
            cooper_decide(&exists_all(&["x"], body), &BapaLimits::default()),
            Some(false)
        );
    }

    #[test]
    fn unsatisfiable_combines_both_engines() {
        // Rationally feasible but integer infeasible: FM cannot refute, Cooper can.
        let body = PForm::and(vec![
            PForm::le(LinExpr::variable("x", -2).shifted(3)),
            PForm::le(LinExpr::variable("x", 2).shifted(-3)),
        ]);
        let sentence = exists_all(&["x"], body);
        assert!(unsatisfiable(&sentence, &BapaLimits::default()));
    }

    #[test]
    fn negated_le_tightens_for_integers() {
        // not(x <= 0) became x >= 1 in NNF: so x <= 0 /\ not(x <= 0) is unsat.
        let body = PForm::and(vec![PForm::le(v("x")), PForm::not(PForm::le(v("x")))]);
        assert!(fm_unsatisfiable(&body));
    }
}
