//! Quantifier-free and quantified Presburger arithmetic.
//!
//! Two deciders are provided:
//!
//! * a **Fourier–Motzkin refutation** over the rationals (with integer
//!   tightening of strict inequalities), which is sound for proving
//!   unsatisfiability and fast; and
//! * **Cooper's quantifier elimination**, a complete decision procedure for
//!   Presburger sentences, used when the variable count is small enough.
//!
//! [`unsatisfiable`] combines the two: it returns `true` only when the
//! sentence is definitely unsatisfiable.

use crate::BapaLimits;
use std::collections::{BTreeMap, BTreeSet};

/// A linear expression `sum(coeff_i * var_i) + constant`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LinExpr {
    /// Variable coefficients (zero coefficients are removed).
    pub coeffs: BTreeMap<String, i64>,
    /// The constant term.
    pub constant: i64,
}

impl LinExpr {
    /// The constant expression.
    pub fn constant(value: i64) -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: value,
        }
    }

    /// The expression `coeff * var`.
    pub fn variable(name: &str, coeff: i64) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        if coeff != 0 {
            coeffs.insert(name.to_string(), coeff);
        }
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Adds `coeff * var` to this expression in place.
    pub fn add_var(&mut self, name: &str, coeff: i64) {
        let entry = self.coeffs.entry(name.to_string()).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            self.coeffs.remove(name);
        }
    }

    /// Returns `self + other`.
    pub fn plus(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.constant += other.constant;
        for (name, coeff) in &other.coeffs {
            out.add_var(name, *coeff);
        }
        out
    }

    /// Returns `k * self`.
    pub fn scaled(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::constant(0);
        }
        LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|(n, c)| (n.clone(), c * k))
                .collect(),
            constant: self.constant * k,
        }
    }

    /// Returns `self + k`.
    pub fn shifted(&self, k: i64) -> LinExpr {
        let mut out = self.clone();
        out.constant += k;
        out
    }

    /// The coefficient of a variable (zero if absent).
    pub fn coeff(&self, name: &str) -> i64 {
        self.coeffs.get(name).copied().unwrap_or(0)
    }

    /// Removes the variable and returns its former coefficient.
    pub fn remove(&mut self, name: &str) -> i64 {
        self.coeffs.remove(name).unwrap_or(0)
    }

    /// Returns `true` if the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Substitutes `var := replacement` (the replacement is itself linear).
    pub fn substitute(&self, name: &str, replacement: &LinExpr) -> LinExpr {
        let coeff = self.coeff(name);
        if coeff == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.remove(name);
        out.plus(&replacement.scaled(coeff))
    }
}

/// Presburger formulas.  `Le(e)` means `e <= 0`; `Divides(d, e)` means
/// `d | e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PForm {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// `expr <= 0`.
    Le(LinExpr),
    /// `d` divides `expr` (`d > 0`).
    Divides(i64, LinExpr),
    /// Negation.
    Not(Box<PForm>),
    /// Conjunction.
    And(Vec<PForm>),
    /// Disjunction.
    Or(Vec<PForm>),
    /// Existential quantification over an integer variable.
    Exists(String, Box<PForm>),
}

impl PForm {
    /// `expr <= 0`, with constant folding.
    pub fn le(expr: LinExpr) -> PForm {
        if expr.is_constant() {
            if expr.constant <= 0 {
                PForm::True
            } else {
                PForm::False
            }
        } else {
            PForm::Le(expr)
        }
    }

    /// Negation with simplification.
    // Associated smart constructor named after the connective, not an
    // operator on self; `std::ops::Not` would change every call site.
    #[allow(clippy::should_implement_trait)]
    pub fn not(inner: PForm) -> PForm {
        match inner {
            PForm::True => PForm::False,
            PForm::False => PForm::True,
            PForm::Not(inner) => *inner,
            other => PForm::Not(Box::new(other)),
        }
    }

    /// Flattening conjunction.
    pub fn and(parts: Vec<PForm>) -> PForm {
        let mut out = Vec::new();
        for p in parts {
            match p {
                PForm::True => {}
                PForm::False => return PForm::False,
                PForm::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => PForm::True,
            1 => out.pop().expect("len checked"),
            _ => PForm::And(out),
        }
    }

    /// Flattening disjunction.
    pub fn or(parts: Vec<PForm>) -> PForm {
        let mut out = Vec::new();
        for p in parts {
            match p {
                PForm::False => {}
                PForm::True => return PForm::True,
                PForm::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => PForm::False,
            1 => out.pop().expect("len checked"),
            _ => PForm::Or(out),
        }
    }

    /// Collects free variables (quantified variables are excluded).
    pub fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            PForm::True | PForm::False => {}
            PForm::Le(e) | PForm::Divides(_, e) => out.extend(e.coeffs.keys().cloned()),
            PForm::Not(inner) => inner.collect_vars(out),
            PForm::And(parts) | PForm::Or(parts) => parts.iter().for_each(|p| p.collect_vars(out)),
            PForm::Exists(var, body) => {
                let mut inner = BTreeSet::new();
                body.collect_vars(&mut inner);
                inner.remove(var);
                out.extend(inner);
            }
        }
    }

    /// Number of nodes (used for quantifier-elimination budgets).
    pub fn size(&self) -> usize {
        match self {
            PForm::True | PForm::False | PForm::Le(_) | PForm::Divides(..) => 1,
            PForm::Not(inner) => 1 + inner.size(),
            PForm::And(parts) | PForm::Or(parts) => {
                1 + parts.iter().map(PForm::size).sum::<usize>()
            }
            PForm::Exists(_, body) => 1 + body.size(),
        }
    }

    /// Negation normal form over the literal set `{Le, Divides}`.
    pub fn nnf(&self) -> PForm {
        self.nnf_signed(true)
    }

    fn nnf_signed(&self, positive: bool) -> PForm {
        match self {
            PForm::True => {
                if positive {
                    PForm::True
                } else {
                    PForm::False
                }
            }
            PForm::False => {
                if positive {
                    PForm::False
                } else {
                    PForm::True
                }
            }
            PForm::Le(e) => {
                if positive {
                    PForm::le(e.clone())
                } else {
                    // not (e <= 0)  <=>  e >= 1  <=>  -e + 1 <= 0 (integers)
                    PForm::le(e.scaled(-1).shifted(1))
                }
            }
            PForm::Divides(d, e) => {
                if positive {
                    PForm::Divides(*d, e.clone())
                } else {
                    PForm::Not(Box::new(PForm::Divides(*d, e.clone())))
                }
            }
            PForm::Not(inner) => inner.nnf_signed(!positive),
            PForm::And(parts) => {
                let converted: Vec<PForm> = parts.iter().map(|p| p.nnf_signed(positive)).collect();
                if positive {
                    PForm::and(converted)
                } else {
                    PForm::or(converted)
                }
            }
            PForm::Or(parts) => {
                let converted: Vec<PForm> = parts.iter().map(|p| p.nnf_signed(positive)).collect();
                if positive {
                    PForm::or(converted)
                } else {
                    PForm::and(converted)
                }
            }
            PForm::Exists(var, body) => {
                // Quantifiers are only produced at the top level by the Venn
                // translation; a negated existential cannot be put in NNF over
                // this literal language, so keep it (Cooper handles prenex
                // sentences only and the callers guarantee that shape).
                if positive {
                    PForm::Exists(var.clone(), Box::new(body.nnf_signed(true)))
                } else {
                    PForm::Not(Box::new(PForm::Exists(
                        var.clone(),
                        Box::new(body.nnf_signed(true)),
                    )))
                }
            }
        }
    }

    /// Substitutes a variable by a linear expression in every literal.
    pub fn substitute(&self, name: &str, replacement: &LinExpr) -> PForm {
        match self {
            PForm::True | PForm::False => self.clone(),
            PForm::Le(e) => PForm::le(e.substitute(name, replacement)),
            PForm::Divides(d, e) => PForm::Divides(*d, e.substitute(name, replacement)),
            PForm::Not(inner) => PForm::not(inner.substitute(name, replacement)),
            PForm::And(parts) => PForm::and(
                parts
                    .iter()
                    .map(|p| p.substitute(name, replacement))
                    .collect(),
            ),
            PForm::Or(parts) => PForm::or(
                parts
                    .iter()
                    .map(|p| p.substitute(name, replacement))
                    .collect(),
            ),
            PForm::Exists(var, body) => {
                if var == name {
                    self.clone()
                } else {
                    PForm::Exists(var.clone(), Box::new(body.substitute(name, replacement)))
                }
            }
        }
    }

    /// Evaluates a variable-free formula.
    ///
    /// # Panics
    ///
    /// Panics if the formula still contains variables or quantifiers.
    pub fn eval_closed(&self) -> bool {
        match self {
            PForm::True => true,
            PForm::False => false,
            PForm::Le(e) => {
                assert!(e.is_constant(), "eval_closed on open formula");
                e.constant <= 0
            }
            PForm::Divides(d, e) => {
                assert!(e.is_constant(), "eval_closed on open formula");
                e.constant.rem_euclid(*d) == 0
            }
            PForm::Not(inner) => !inner.eval_closed(),
            PForm::And(parts) => parts.iter().all(PForm::eval_closed),
            PForm::Or(parts) => parts.iter().any(PForm::eval_closed),
            PForm::Exists(..) => panic!("eval_closed on quantified formula"),
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

fn lcm(a: i64, b: i64) -> i64 {
    (a / gcd(a, b)).saturating_mul(b).abs().max(1)
}

/// Ceiling division for a positive divisor.
fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b) + i64::from(a.rem_euclid(b) != 0)
}

// --------------------------------------------------------------------------
// Fourier–Motzkin refutation
// --------------------------------------------------------------------------

/// Dense interner from variable names to the integer ids the refutation core
/// works over.  One instance lives for the duration of a single
/// [`fm_unsatisfiable`] call — ids never escape it.
#[derive(Default)]
struct NameIds(std::collections::HashMap<String, usize>);

impl NameIds {
    fn id(&mut self, name: &str) -> usize {
        if let Some(&id) = self.0.get(name) {
            return id;
        }
        let id = self.0.len();
        self.0.insert(name.to_string(), id);
        id
    }
}

/// Converts a string-keyed expression into the id-keyed form (canonical by
/// construction: `BTreeMap` iteration is name-ordered but ids are assigned in
/// first-seen order, so a final canonicalisation pass re-sorts).
fn to_id_expr(e: &LinExpr, ids: &mut NameIds) -> IdLinExpr {
    let mut out = IdLinExpr::constant(e.constant);
    for (name, &k) in &e.coeffs {
        out.push_term(ids.id(name), k);
    }
    out.canonicalize();
    out
}

/// Converts an NNF, quantifier-free formula into disjunctive normal form as a
/// list of conjunctions of id-keyed `<= 0` constraints.  Divisibility
/// literals are dropped (weakening, hence sound for refutation).  Returns
/// `None` if the DNF exceeds the cap.  Working over [`IdLinExpr`] here keeps
/// the cross-product clones flat `memcpy`s instead of `BTreeMap` rebuilds —
/// the Venn sentences this decides have dozens of region variables per
/// constraint.
fn dnf_id(form: &PForm, ids: &mut NameIds, cap: usize) -> Option<Vec<Vec<IdLinExpr>>> {
    match form {
        PForm::True => Some(vec![Vec::new()]),
        PForm::False => Some(vec![]),
        PForm::Le(e) => Some(vec![vec![to_id_expr(e, ids)]]),
        PForm::Divides(..) | PForm::Not(_) => Some(vec![Vec::new()]), // dropped
        PForm::And(parts) => {
            let mut acc = vec![Vec::new()];
            for part in parts {
                let branches = dnf_id(part, ids, cap)?;
                let mut next = Vec::new();
                for a in &acc {
                    for b in &branches {
                        let mut merged = a.clone();
                        merged.extend(b.iter().cloned());
                        next.push(merged);
                        if next.len() > cap {
                            return None;
                        }
                    }
                }
                acc = next;
            }
            Some(acc)
        }
        PForm::Or(parts) => {
            let mut out = Vec::new();
            for part in parts {
                out.extend(dnf_id(part, ids, cap)?);
                if out.len() > cap {
                    return None;
                }
            }
            Some(out)
        }
        PForm::Exists(_, body) => dnf_id(body, ids, cap),
    }
}

/// Sound unsatisfiability check by rational Fourier–Motzkin on the DNF.  The
/// string-keyed input is interned once; the DNF expansion and the elimination
/// itself run entirely over [`IdLinExpr`].
pub fn fm_unsatisfiable(body: &PForm) -> bool {
    let nnf = body.nnf();
    let mut ids = NameIds::default();
    match dnf_id(&nnf, &mut ids, 4_096) {
        Some(conjuncts) => conjuncts
            .into_iter()
            .all(|c| id_conjunction_infeasible(&c, 20_000)),
        None => false,
    }
}

// --------------------------------------------------------------------------
// Integer-keyed Fourier–Motzkin (the ground solver's hot path)
// --------------------------------------------------------------------------

/// A linear expression keyed by small integer variable ids instead of
/// `String` names: `sum(coeff_i * id_i) + constant`.
///
/// This is the representation the ground CDCL(T) solver feeds to its
/// incremental Fourier–Motzkin re-check: re-keying a constraint onto the
/// current congruence-class representatives becomes an integer lookup plus a
/// sorted merge, where the string-keyed path used to format and hash a
/// `t{rep}` name per coefficient per check.  Terms are a `(id, coefficient)`
/// list sorted by id with no zero coefficients, so combining two expressions
/// is a linear merge and the buffers can be pooled (see
/// [`IdLinExpr::clear`]).  The string-keyed [`LinExpr`] remains the API for
/// the Venn translator and Cooper elimination, which genuinely work over
/// named set/element variables.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct IdLinExpr {
    /// `(variable id, coefficient)` pairs, strictly sorted by id once
    /// canonical; zero coefficients are removed by [`IdLinExpr::canonicalize`].
    terms: Vec<(usize, i64)>,
    /// The constant term.
    pub constant: i64,
}

impl IdLinExpr {
    /// The constant expression.
    pub fn constant(value: i64) -> IdLinExpr {
        IdLinExpr {
            terms: Vec::new(),
            constant: value,
        }
    }

    /// Clears the expression in place, retaining the term buffer's capacity —
    /// the solver pools these slots across backjumps instead of freeing them.
    pub fn clear(&mut self) {
        self.terms.clear();
        self.constant = 0;
    }

    /// Appends `coeff * id` without normalising.  Call
    /// [`IdLinExpr::canonicalize`] once the expression is fully accumulated.
    pub fn push_term(&mut self, id: usize, coeff: i64) {
        if coeff != 0 {
            self.terms.push((id, coeff));
        }
    }

    /// Sorts the terms by id, merges duplicate ids and drops zero
    /// coefficients.
    pub fn canonicalize(&mut self) {
        self.terms.sort_unstable_by_key(|&(id, _)| id);
        let mut w = 0usize;
        for r in 0..self.terms.len() {
            let (id, k) = self.terms[r];
            if w > 0 && self.terms[w - 1].0 == id {
                self.terms[w - 1].1 += k;
                if self.terms[w - 1].1 == 0 {
                    w -= 1;
                }
            } else if k != 0 {
                self.terms[w] = (id, k);
                w += 1;
            }
        }
        self.terms.truncate(w);
    }

    /// The `(id, coefficient)` terms (sorted by id once canonical).
    pub fn terms(&self) -> &[(usize, i64)] {
        &self.terms
    }

    /// The coefficient of a variable (zero if absent).  Requires canonical
    /// form.
    pub fn coeff(&self, id: usize) -> i64 {
        self.terms
            .binary_search_by_key(&id, |&(i, _)| i)
            .map(|i| self.terms[i].1)
            .unwrap_or(0)
    }

    /// Returns `true` if the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Scales the expression in place by a non-zero factor.
    pub fn scale(&mut self, k: i64) {
        debug_assert_ne!(k, 0);
        for t in &mut self.terms {
            t.1 *= k;
        }
        self.constant *= k;
    }

    /// Adds `k` to the constant term in place.
    pub fn shift(&mut self, k: i64) {
        self.constant += k;
    }

    /// Writes `ka * a + kb * b` into `out` (cleared first, capacity
    /// retained) by a linear merge of the two sorted term lists.
    pub fn combine_into(out: &mut IdLinExpr, a: &IdLinExpr, ka: i64, b: &IdLinExpr, kb: i64) {
        out.terms.clear();
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.terms.len() || j < b.terms.len() {
            let next = match (a.terms.get(i), b.terms.get(j)) {
                (Some(&(ia, ca)), Some(&(ib, cb))) => {
                    if ia == ib {
                        i += 1;
                        j += 1;
                        (ia, ka * ca + kb * cb)
                    } else if ia < ib {
                        i += 1;
                        (ia, ka * ca)
                    } else {
                        j += 1;
                        (ib, kb * cb)
                    }
                }
                (Some(&(ia, ca)), None) => {
                    i += 1;
                    (ia, ka * ca)
                }
                (None, Some(&(ib, cb))) => {
                    j += 1;
                    (ib, kb * cb)
                }
                (None, None) => unreachable!("loop condition"),
            };
            if next.1 != 0 {
                out.terms.push(next);
            }
        }
        out.constant = ka * a.constant + kb * b.constant;
    }

    /// Normalises one constraint `self <= 0`: divides by the gcd of the
    /// coefficients and rounds the constant towards the tighter integer
    /// bound, exactly like the string-keyed [`Conjunct`] normalisation.
    fn normalise_le(&mut self) {
        let mut g = 0i64;
        for &(_, c) in &self.terms {
            g = gcd(g, c);
        }
        if g > 1 {
            for t in &mut self.terms {
                t.1 /= g;
            }
            self.constant = div_ceil(self.constant, g);
        }
    }
}

/// Fourier–Motzkin elimination over a conjunction of `expr <= 0` id-keyed
/// constraints: returns `true` if the conjunction is infeasible over the
/// rationals (which implies integer infeasibility).  The semantics mirror
/// [`Conjunct::infeasible`] — gcd normalisation with integer tightening, the
/// fewest-new-constraints variable pick, positive combinations, and the
/// give-up cap — but the ground solver hands constraints straight in as a
/// conjunction, skipping the NNF/DNF detour of [`fm_unsatisfiable`] entirely.
pub fn id_conjunction_infeasible(constraints: &[IdLinExpr], max_constraints: usize) -> bool {
    let mut les: Vec<IdLinExpr> = constraints.to_vec();
    // (variable, lower-bound count, upper-bound count) aggregation scratch.
    let mut counts: Vec<(usize, usize, usize)> = Vec::new();
    loop {
        for le in &mut les {
            le.normalise_le();
        }
        les.sort_unstable();
        les.dedup();
        // Constant contradictions?
        for le in &les {
            if le.is_constant() && le.constant > 0 {
                return true;
            }
        }
        // Pick the variable whose elimination produces the fewest new
        // constraints (classic Fourier–Motzkin heuristic).
        counts.clear();
        for le in &les {
            for &(id, c) in le.terms() {
                counts.push((id, usize::from(c < 0), usize::from(c > 0)));
            }
        }
        counts.sort_unstable_by_key(|&(id, _, _)| id);
        counts.dedup_by(|next, prev| {
            if prev.0 == next.0 {
                prev.1 += next.1;
                prev.2 += next.2;
                true
            } else {
                false
            }
        });
        let var = match counts.iter().min_by_key(|&&(_, lo, up)| lo * up) {
            Some(&(id, _, _)) => id,
            None => return false,
        };
        let mut lowers: Vec<IdLinExpr> = Vec::new(); // var >= expr  (coeff < 0)
        let mut uppers: Vec<IdLinExpr> = Vec::new(); // var <= expr  (coeff > 0)
        let mut rest: Vec<IdLinExpr> = Vec::new();
        for le in les.drain(..) {
            let c = le.coeff(var);
            if c == 0 {
                rest.push(le);
            } else if c > 0 {
                uppers.push(le);
            } else {
                lowers.push(le);
            }
        }
        // Combine every lower with every upper:  (c_u > 0): c_u*x + r_u <= 0
        // and (c_l < 0): c_l*x + r_l <= 0.  Eliminate x by the positive
        // combination |c_l| * upper + c_u * lower.
        for upper in &uppers {
            for lower in &lowers {
                let cu = upper.coeff(var);
                let cl = lower.coeff(var).abs();
                let mut combined = IdLinExpr::default();
                IdLinExpr::combine_into(&mut combined, upper, cl, lower, cu);
                debug_assert_eq!(combined.coeff(var), 0);
                rest.push(combined);
            }
        }
        if rest.len() > max_constraints {
            return false; // give up rather than blow up
        }
        les = rest;
    }
}

// --------------------------------------------------------------------------
// Cooper's algorithm
// --------------------------------------------------------------------------

/// Eliminates one existential quantifier `exists x. body` where `body` is
/// quantifier-free and in NNF.  Returns `None` if the result would exceed the
/// node budget.
fn cooper_eliminate(var: &str, body: &PForm, budget: usize) -> Option<PForm> {
    // 1. Compute the lcm of the coefficients of `var`.
    let mut coeff_lcm = 1i64;
    collect_coeff_lcm(body, var, &mut coeff_lcm);
    // 2. Scale every literal so the coefficient of var is +-coeff_lcm, then
    //    conceptually substitute y = coeff_lcm * var and add coeff_lcm | y.
    let scaled = scale_var(body, var, coeff_lcm);
    let scaled = PForm::and(vec![
        scaled,
        PForm::Divides(coeff_lcm, LinExpr::variable(var, 1)),
    ]);
    // 3. delta = lcm of the divisors of all divisibility literals.
    let mut delta = 1i64;
    collect_divisor_lcm(&scaled, var, &mut delta);
    // 4. Lower bounds: literals of the form  -y + b <= 0  (i.e. y >= b).
    let mut lower_bounds: Vec<LinExpr> = Vec::new();
    collect_lower_bounds(&scaled, var, &mut lower_bounds);

    let mut disjuncts = Vec::new();
    for j in 1..=delta {
        // F_{-infinity}[y := j]
        let minus_inf = minus_infinity(&scaled, var);
        disjuncts.push(minus_inf.substitute(var, &LinExpr::constant(j)));
        // F[y := b + j] for every lower bound b.
        for bound in &lower_bounds {
            disjuncts.push(scaled.substitute(var, &bound.shifted(j)));
        }
        let total: usize = disjuncts.iter().map(PForm::size).sum();
        if total > budget {
            return None;
        }
    }
    Some(PForm::or(disjuncts))
}

fn collect_coeff_lcm(form: &PForm, var: &str, acc: &mut i64) {
    match form {
        PForm::Le(e) | PForm::Divides(_, e) => {
            let c = e.coeff(var);
            if c != 0 {
                *acc = lcm(*acc, c.abs());
            }
        }
        PForm::Not(inner) => collect_coeff_lcm(inner, var, acc),
        PForm::And(parts) | PForm::Or(parts) => {
            parts.iter().for_each(|p| collect_coeff_lcm(p, var, acc))
        }
        _ => {}
    }
}

/// Scales literals so the coefficient of `var` becomes `+-target` and then
/// renames `target*var` to just `var` (the standard Cooper step).
fn scale_var(form: &PForm, var: &str, target: i64) -> PForm {
    match form {
        PForm::Le(e) => {
            let c = e.coeff(var);
            if c == 0 {
                PForm::le(e.clone())
            } else {
                let factor = target / c.abs();
                let mut scaled = e.scaled(factor);
                // Now the coefficient of var is +-target; rename to +-1.
                let sign = if c > 0 { 1 } else { -1 };
                scaled.remove(var);
                scaled.add_var(var, sign);
                PForm::Le(scaled)
            }
        }
        PForm::Divides(d, e) => {
            let c = e.coeff(var);
            if c == 0 {
                PForm::Divides(*d, e.clone())
            } else {
                let factor = target / c.abs();
                let mut scaled = e.scaled(factor);
                let sign = if c > 0 { 1 } else { -1 };
                scaled.remove(var);
                scaled.add_var(var, sign);
                PForm::Divides(d * factor, scaled)
            }
        }
        PForm::Not(inner) => PForm::Not(Box::new(scale_var(inner, var, target))),
        PForm::And(parts) => PForm::and(parts.iter().map(|p| scale_var(p, var, target)).collect()),
        PForm::Or(parts) => PForm::or(parts.iter().map(|p| scale_var(p, var, target)).collect()),
        other => other.clone(),
    }
}

fn collect_divisor_lcm(form: &PForm, var: &str, acc: &mut i64) {
    match form {
        PForm::Divides(d, e) if e.coeff(var) != 0 => {
            *acc = lcm(*acc, *d);
        }
        PForm::Not(inner) => collect_divisor_lcm(inner, var, acc),
        PForm::And(parts) | PForm::Or(parts) => {
            parts.iter().for_each(|p| collect_divisor_lcm(p, var, acc))
        }
        _ => {}
    }
}

fn collect_lower_bounds(form: &PForm, var: &str, out: &mut Vec<LinExpr>) {
    match form {
        // -var + rest <= 0  means  var >= rest, i.e. the *strict* lower
        // bound used by Cooper's B-set is rest - 1.
        PForm::Le(e) if e.coeff(var) == -1 => {
            let mut rest = e.clone();
            rest.remove(var);
            out.push(rest.shifted(-1));
        }
        PForm::Not(inner) => collect_lower_bounds(inner, var, out),
        PForm::And(parts) | PForm::Or(parts) => {
            parts.iter().for_each(|p| collect_lower_bounds(p, var, out))
        }
        _ => {}
    }
}

/// The `F_{-infinity}` transformation: upper-bound literals become true,
/// lower-bound literals become false.
fn minus_infinity(form: &PForm, var: &str) -> PForm {
    match form {
        PForm::Le(e) => match e.coeff(var) {
            0 => PForm::le(e.clone()),
            c if c > 0 => PForm::True, // var <= something: true at -infinity
            _ => PForm::False,         // var >= something: false at -infinity
        },
        PForm::Divides(..) => form.clone(),
        PForm::Not(inner) => PForm::not(minus_infinity(inner, var)),
        PForm::And(parts) => PForm::and(parts.iter().map(|p| minus_infinity(p, var)).collect()),
        PForm::Or(parts) => PForm::or(parts.iter().map(|p| minus_infinity(p, var)).collect()),
        other => other.clone(),
    }
}

/// Decides a prenex existential sentence `exists x1 ... xn. body` with
/// Cooper's algorithm.  Returns `None` if the quantifier-elimination budget is
/// exceeded.
pub fn cooper_decide(sentence: &PForm, limits: &BapaLimits) -> Option<bool> {
    // Peel the existential prefix.
    let mut vars = Vec::new();
    let mut body = sentence;
    while let PForm::Exists(var, inner) = body {
        vars.push(var.clone());
        body = inner;
    }
    if vars.len() > limits.max_cooper_vars {
        return None;
    }
    let mut current = body.nnf();
    // Eliminate innermost-first (reverse declaration order).
    for var in vars.iter().rev() {
        if limits.expired() {
            return None;
        }
        current = cooper_eliminate(var, &current, limits.max_qe_nodes)?.nnf();
        if current.size() > limits.max_qe_nodes {
            return None;
        }
    }
    let mut remaining = BTreeSet::new();
    current.collect_vars(&mut remaining);
    if !remaining.is_empty() {
        return None; // non-prenex input; refuse rather than mis-evaluate
    }
    Some(current.eval_closed())
}

/// Returns `true` only if the sentence is definitely unsatisfiable.
pub fn unsatisfiable(sentence: &PForm, limits: &BapaLimits) -> bool {
    // Fast sound refutation first.
    fm_unsatisfiable(sentence) || matches!(cooper_decide(sentence, limits), Some(false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> LinExpr {
        LinExpr::variable(name, 1)
    }

    fn exists_all(vars: &[&str], body: PForm) -> PForm {
        let mut out = body;
        for var in vars.iter().rev() {
            out = PForm::Exists(var.to_string(), Box::new(out));
        }
        out
    }

    #[test]
    fn linear_expression_algebra() {
        let e = v("x").scaled(2).plus(&v("y").scaled(-1)).shifted(3);
        assert_eq!(e.coeff("x"), 2);
        assert_eq!(e.coeff("y"), -1);
        assert_eq!(e.constant, 3);
        let s = e.substitute("x", &v("y").shifted(1));
        assert_eq!(s.coeff("x"), 0);
        assert_eq!(s.coeff("y"), 1);
        assert_eq!(s.constant, 5);
    }

    #[test]
    fn fm_detects_simple_contradiction() {
        // x <= 0  and  x >= 1
        let body = PForm::and(vec![
            PForm::le(v("x")),
            PForm::le(v("x").scaled(-1).shifted(1)),
        ]);
        assert!(fm_unsatisfiable(&body));
    }

    #[test]
    fn fm_does_not_claim_satisfiable_systems_unsat() {
        let body = PForm::and(vec![
            PForm::le(v("x").scaled(-1)),   // x >= 0
            PForm::le(v("x").shifted(-10)), // x <= 10
        ]);
        assert!(!fm_unsatisfiable(&body));
    }

    #[test]
    fn cooper_decides_satisfiable_sentence() {
        // exists x. x >= 0 /\ x <= 10
        let body = PForm::and(vec![
            PForm::le(v("x").scaled(-1)),
            PForm::le(v("x").shifted(-10)),
        ]);
        let sentence = exists_all(&["x"], body);
        assert_eq!(cooper_decide(&sentence, &BapaLimits::default()), Some(true));
    }

    #[test]
    fn cooper_decides_unsatisfiable_sentence() {
        // exists x. x >= 1 /\ x <= 0
        let body = PForm::and(vec![
            PForm::le(v("x").scaled(-1).shifted(1)),
            PForm::le(v("x")),
        ]);
        let sentence = exists_all(&["x"], body);
        assert_eq!(
            cooper_decide(&sentence, &BapaLimits::default()),
            Some(false)
        );
    }

    #[test]
    fn cooper_handles_divisibility() {
        // exists x. 0 <= x <= 5 /\ 2 | x /\ 3 | x  -> x = 0 works, satisfiable.
        let body = PForm::and(vec![
            PForm::le(v("x").scaled(-1)),
            PForm::le(v("x").shifted(-5)),
            PForm::Divides(2, v("x")),
            PForm::Divides(3, v("x")),
        ]);
        assert_eq!(
            cooper_decide(&exists_all(&["x"], body), &BapaLimits::default()),
            Some(true)
        );

        // exists x. 1 <= x <= 5 /\ 2 | x /\ 3 | x  -> needs x = 6, unsatisfiable.
        let body = PForm::and(vec![
            PForm::le(v("x").scaled(-1).shifted(1)),
            PForm::le(v("x").shifted(-5)),
            PForm::Divides(2, v("x")),
            PForm::Divides(3, v("x")),
        ]);
        assert_eq!(
            cooper_decide(&exists_all(&["x"], body), &BapaLimits::default()),
            Some(false)
        );
    }

    #[test]
    fn cooper_with_two_variables() {
        // exists x y. x = 2y /\ x = 2y + 1  is unsatisfiable.
        let eq1a = v("x").plus(&v("y").scaled(-2));
        let eq1b = eq1a.scaled(-1);
        let eq2a = v("x").plus(&v("y").scaled(-2)).shifted(-1);
        let eq2b = eq2a.scaled(-1);
        let body = PForm::and(vec![
            PForm::le(eq1a),
            PForm::le(eq1b),
            PForm::le(eq2a),
            PForm::le(eq2b),
        ]);
        assert_eq!(
            cooper_decide(&exists_all(&["x", "y"], body), &BapaLimits::default()),
            Some(false)
        );
    }

    #[test]
    fn cooper_scaled_coefficients() {
        // exists x. 2x >= 3 /\ 2x <= 4  -> x = 2, satisfiable.
        let body = PForm::and(vec![
            PForm::le(LinExpr::variable("x", -2).shifted(3)),
            PForm::le(LinExpr::variable("x", 2).shifted(-4)),
        ]);
        assert_eq!(
            cooper_decide(&exists_all(&["x"], body), &BapaLimits::default()),
            Some(true)
        );

        // exists x. 2x >= 3 /\ 2x <= 3  -> 2x = 3 has no integer solution.
        let body = PForm::and(vec![
            PForm::le(LinExpr::variable("x", -2).shifted(3)),
            PForm::le(LinExpr::variable("x", 2).shifted(-3)),
        ]);
        assert_eq!(
            cooper_decide(&exists_all(&["x"], body), &BapaLimits::default()),
            Some(false)
        );
    }

    #[test]
    fn unsatisfiable_combines_both_engines() {
        // Rationally feasible but integer infeasible: FM cannot refute, Cooper can.
        let body = PForm::and(vec![
            PForm::le(LinExpr::variable("x", -2).shifted(3)),
            PForm::le(LinExpr::variable("x", 2).shifted(-3)),
        ]);
        let sentence = exists_all(&["x"], body);
        assert!(unsatisfiable(&sentence, &BapaLimits::default()));
    }

    #[test]
    fn negated_le_tightens_for_integers() {
        // not(x <= 0) became x >= 1 in NNF: so x <= 0 /\ not(x <= 0) is unsat.
        let body = PForm::and(vec![PForm::le(v("x")), PForm::not(PForm::le(v("x")))]);
        assert!(fm_unsatisfiable(&body));
    }

    #[test]
    fn id_expression_canonicalization_and_merge() {
        let mut e = IdLinExpr::constant(3);
        e.push_term(7, 2);
        e.push_term(2, -1);
        e.push_term(7, -2);
        e.push_term(4, 5);
        e.canonicalize();
        assert_eq!(e.terms(), &[(2, -1), (4, 5)]);
        assert_eq!(e.coeff(7), 0);
        assert_eq!(e.coeff(4), 5);
        let mut f = IdLinExpr::constant(-1);
        f.push_term(4, -5);
        f.push_term(9, 1);
        f.canonicalize();
        let mut out = IdLinExpr::default();
        IdLinExpr::combine_into(&mut out, &e, 1, &f, 1);
        assert_eq!(out.terms(), &[(2, -1), (9, 1)]);
        assert_eq!(out.constant, 2);
        IdLinExpr::combine_into(&mut out, &e, 2, &f, -3);
        assert_eq!(out.coeff(4), 25);
        assert_eq!(out.constant, 9);
    }

    #[test]
    fn id_fm_detects_simple_contradiction() {
        // x <= 0  and  x >= 1.
        let mut le = IdLinExpr::default();
        le.push_term(0, 1);
        le.canonicalize();
        let mut ge = IdLinExpr::constant(1);
        ge.push_term(0, -1);
        ge.canonicalize();
        assert!(id_conjunction_infeasible(&[le.clone(), ge], 20_000));
        assert!(!id_conjunction_infeasible(&[le], 20_000));
    }

    #[test]
    fn id_fm_tightens_scaled_constraints() {
        // 2x <= -3 and 2x >= -3: rationally a point, but gcd tightening
        // rounds 2x <= -3 down to x <= -2 and 2x >= -3 up to x >= -1.
        let mut upper = IdLinExpr::constant(3);
        upper.push_term(0, 2);
        upper.canonicalize();
        let mut lower = IdLinExpr::constant(-3);
        lower.push_term(0, -2);
        lower.canonicalize();
        assert!(id_conjunction_infeasible(&[upper, lower], 20_000));
    }

    /// The id-keyed conjunction path and the string-keyed DNF path must agree
    /// on every pure conjunction: the ground solver switched from the latter
    /// to the former, so a divergence here is a solver soundness bug.
    #[test]
    fn id_fm_agrees_with_string_fm_on_random_conjunctions() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let n_constraints = 1 + (next() % 6) as usize;
            let n_vars = 1 + (next() % 4) as usize;
            let mut id_les = Vec::new();
            let mut parts = Vec::new();
            for _ in 0..n_constraints {
                let mut id_le = IdLinExpr::constant((next() % 9) as i64 - 4);
                let mut le = LinExpr::constant(id_le.constant);
                for var in 0..n_vars {
                    let coeff = (next() % 7) as i64 - 3;
                    id_le.push_term(var, coeff);
                    le.add_var(&format!("t{var}"), coeff);
                }
                id_le.canonicalize();
                id_les.push(id_le);
                parts.push(PForm::le(le));
            }
            let id_verdict = id_conjunction_infeasible(&id_les, 20_000);
            let string_verdict = fm_unsatisfiable(&PForm::and(parts));
            assert_eq!(id_verdict, string_verdict, "diverged on {id_les:?}");
        }
    }
}
