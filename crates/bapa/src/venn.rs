//! Venn-region reduction from BAPA to Presburger arithmetic.
//!
//! Every set variable (including the implicit singleton sets of element
//! variables) partitions the universe; with `n` set variables there are `2^n`
//! Venn regions.  Introducing one non-negative integer variable per region
//! cardinality turns every set-algebra and cardinality atom into linear
//! arithmetic, after which the sentence is decided by [`crate::presburger`].
//!
//! This translator is the remaining client of the *string-keyed* [`LinExpr`]
//! API: region variables are synthesised names (`venn$r`, `single$e`), not
//! interned term ids, and the translation is a per-leaf construction rather
//! than a hot incremental loop.  The ground solver's incremental arithmetic
//! uses the integer-keyed [`crate::presburger::IdLinExpr`] entry points
//! instead.

use crate::extract::{BapaForm, IntTerm, SetTerm};
use crate::presburger::{LinExpr, PForm};
use crate::BapaLimits;
use std::collections::BTreeSet;

/// Name of the implicit singleton set for an element variable.
fn singleton_set(elem: &str) -> String {
    format!("single${elem}")
}

/// Name of the cardinality variable of a Venn region.
fn region_var(region: usize) -> String {
    format!("venn${region}")
}

/// Context for the translation: the ordered list of set variables.
struct VennCtx {
    sets: Vec<String>,
    // Precomputed `venn$r` names: `card` walks every region per set term,
    // so formatting these on demand dominated the translation.
    region_names: Vec<String>,
}

impl VennCtx {
    fn new(sets: Vec<String>) -> VennCtx {
        let region_names = (0..1usize << sets.len()).map(region_var).collect();
        VennCtx { sets, region_names }
    }

    fn region_count(&self) -> usize {
        1usize << self.sets.len()
    }

    /// Returns `true` if the given region lies inside the denotation of the
    /// set term (regions are identified by the bitmask of set memberships).
    fn region_in(&self, region: usize, term: &SetTerm) -> bool {
        match term {
            SetTerm::Var(name) => {
                let idx = self
                    .sets
                    .iter()
                    .position(|s| s == name)
                    .expect("set variable registered during collection");
                region & (1 << idx) != 0
            }
            SetTerm::Empty => false,
            SetTerm::Singleton(elem) => {
                let name = singleton_set(elem);
                let idx = self
                    .sets
                    .iter()
                    .position(|s| s == &name)
                    .expect("singleton set registered during collection");
                region & (1 << idx) != 0
            }
            SetTerm::Union(a, b) => self.region_in(region, a) || self.region_in(region, b),
            SetTerm::Inter(a, b) => self.region_in(region, a) && self.region_in(region, b),
            SetTerm::Diff(a, b) => self.region_in(region, a) && !self.region_in(region, b),
        }
    }

    /// The cardinality of a set term as a linear expression over region vars.
    fn card(&self, term: &SetTerm) -> LinExpr {
        let mut expr = LinExpr::constant(0);
        for region in 1..self.region_count() {
            // Region 0 (outside every set) never contributes to any card.
            if self.region_in(region, term) {
                expr.add_var(&self.region_names[region], 1);
            }
        }
        expr
    }

    fn int_term(&self, term: &IntTerm) -> LinExpr {
        match term {
            IntTerm::Const(value) => LinExpr::constant(*value),
            IntTerm::Var(name) => LinExpr::variable(name, 1),
            IntTerm::Card(set) => self.card(set),
            IntTerm::Add(a, b) => self.int_term(a).plus(&self.int_term(b)),
            IntTerm::Sub(a, b) => self.int_term(a).plus(&self.int_term(b).scaled(-1)),
            IntTerm::MulConst(k, a) => self.int_term(a).scaled(*k),
        }
    }

    fn form(&self, form: &BapaForm) -> PForm {
        match form {
            BapaForm::True => PForm::True,
            BapaForm::False => PForm::False,
            BapaForm::Not(inner) => PForm::not(self.form(inner)),
            BapaForm::And(parts) => PForm::and(parts.iter().map(|p| self.form(p)).collect()),
            BapaForm::Or(parts) => PForm::or(parts.iter().map(|p| self.form(p)).collect()),
            // a <= b  <=>  a - b <= 0
            BapaForm::IntLe(a, b) => PForm::le(self.int_term(a).plus(&self.int_term(b).scaled(-1))),
            // a < b  <=>  a - b + 1 <= 0 (integers)
            BapaForm::IntLt(a, b) => PForm::le(
                self.int_term(a)
                    .plus(&self.int_term(b).scaled(-1))
                    .shifted(1),
            ),
            BapaForm::IntEq(a, b) => {
                let diff = self.int_term(a).plus(&self.int_term(b).scaled(-1));
                PForm::and(vec![PForm::le(diff.clone()), PForm::le(diff.scaled(-1))])
            }
            // A = B  <=>  |A \ B| + |B \ A| = 0
            BapaForm::SetEq(a, b) => {
                let sym_diff = SetTerm::Union(
                    Box::new(SetTerm::Diff(Box::new(a.clone()), Box::new(b.clone()))),
                    Box::new(SetTerm::Diff(Box::new(b.clone()), Box::new(a.clone()))),
                );
                let card = self.card(&sym_diff);
                PForm::and(vec![PForm::le(card.clone()), PForm::le(card.scaled(-1))])
            }
            // A subseteq B  <=>  |A \ B| = 0
            BapaForm::Subset(a, b) => {
                let diff = SetTerm::Diff(Box::new(a.clone()), Box::new(b.clone()));
                let card = self.card(&diff);
                PForm::and(vec![PForm::le(card.clone()), PForm::le(card.scaled(-1))])
            }
            // x in S  <=>  |single$x \ S| = 0 (with the global |single$x| = 1)
            BapaForm::Member(elem, set) => {
                let diff = SetTerm::Diff(
                    Box::new(SetTerm::Singleton(elem.clone())),
                    Box::new(set.clone()),
                );
                let card = self.card(&diff);
                PForm::and(vec![PForm::le(card.clone()), PForm::le(card.scaled(-1))])
            }
            // x = y  <=>  single$x = single$y
            BapaForm::ElemEq(a, b) => self.form(&BapaForm::SetEq(
                SetTerm::Singleton(a.clone()),
                SetTerm::Singleton(b.clone()),
            )),
        }
    }
}

/// Splits the conjuncts of a BAPA conjunction into connected components of
/// the variable-sharing graph: two conjuncts land in the same component when
/// they share a set variable, an element variable or an integer variable.
///
/// The Venn construction is exponential in the number of set variables of the
/// formula it is given, so solving each component separately is the
/// difference between `2^(m+n)` regions and `2^m + 2^n` — and because the
/// fragment has no universe complement, a conjunction is satisfiable exactly
/// when every component is satisfiable on its own universe.  Returned indices
/// partition `parts`.
pub fn components(parts: &[BapaForm]) -> Vec<Vec<usize>> {
    use std::collections::BTreeMap;
    // Union-find over conjunct indices.
    let mut parent: Vec<usize> = (0..parts.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    // First conjunct seen for every variable, namespaced by kind (set /
    // element / integer — extraction classifies every name into one kind, and
    // the translation never links same-named variables of different kinds).
    let mut owner: BTreeMap<(u8, String), usize> = BTreeMap::new();
    for (i, part) in parts.iter().enumerate() {
        let mut sets = BTreeSet::new();
        let mut elems = BTreeSet::new();
        let mut ints = BTreeSet::new();
        part.set_vars(&mut sets);
        part.element_vars(&mut elems);
        part.int_vars(&mut ints);
        let tagged = sets
            .into_iter()
            .map(|v| (0u8, v))
            .chain(elems.into_iter().map(|v| (1u8, v)))
            .chain(ints.into_iter().map(|v| (2u8, v)));
        for key in tagged {
            match owner.get(&key) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
                None => {
                    owner.insert(key, i);
                }
            }
        }
    }
    let mut grouped: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..parts.len() {
        let root = find(&mut parent, i);
        grouped.entry(root).or_default().push(i);
    }
    grouped.into_values().collect()
}

/// Flattens a BAPA formula into its top-level conjuncts.
pub fn conjuncts(form: &BapaForm) -> Vec<BapaForm> {
    match form {
        BapaForm::And(parts) => parts.clone(),
        BapaForm::True => Vec::new(),
        other => vec![other.clone()],
    }
}

/// Checks unsatisfiability of a conjunction of BAPA formulas by solving each
/// shared-variable connected component independently.
///
/// A component whose set-variable count exceeds the limit is skipped (it can
/// neither prove nor disprove unsatisfiability on its own), so the check
/// degrades gracefully instead of giving up on the whole conjunction the way
/// the monolithic translation did.
pub fn conjunction_unsatisfiable(parts: &[BapaForm], limits: &BapaLimits) -> bool {
    for component in components(parts) {
        if limits.expired() {
            return false;
        }
        if component_unsatisfiable(parts, &component, limits) {
            return true;
        }
    }
    false
}

/// Decides one shared-variable component (given as indices into `parts`).
/// Shared by the uncached path above and the verdict-caching wrapper in
/// `crate::incremental`, so the component solving logic cannot drift.
pub fn component_unsatisfiable(
    parts: &[BapaForm],
    component: &[usize],
    limits: &BapaLimits,
) -> bool {
    let formula = BapaForm::and(component.iter().map(|&i| parts[i].clone()).collect());
    match to_presburger(&formula, limits) {
        Some(sentence) => crate::presburger::unsatisfiable(&sentence, limits),
        None => false,
    }
}

/// Translates a BAPA formula into an existentially closed Presburger sentence
/// whose satisfiability coincides with the satisfiability of the input.
///
/// Returns `None` when the number of set variables exceeds the configured
/// limit (the Venn construction is exponential in that number).
pub fn to_presburger(form: &BapaForm, limits: &BapaLimits) -> Option<PForm> {
    let mut set_names: BTreeSet<String> = BTreeSet::new();
    form.set_vars(&mut set_names);
    let mut elem_names: BTreeSet<String> = BTreeSet::new();
    form.element_vars(&mut elem_names);
    for elem in &elem_names {
        set_names.insert(singleton_set(elem));
    }
    if set_names.len() > limits.max_set_vars {
        return None;
    }
    let ctx = VennCtx::new(set_names.into_iter().collect());

    let mut conjuncts = Vec::new();
    // Region cardinalities are non-negative.
    for region in 1..ctx.region_count() {
        conjuncts.push(PForm::le(LinExpr::variable(&ctx.region_names[region], -1)));
    }
    // Every element variable denotes exactly one element: |single$x| = 1.
    for elem in &elem_names {
        let card = ctx.card(&SetTerm::Singleton(elem.clone()));
        conjuncts.push(PForm::le(card.clone().shifted(-1)));
        conjuncts.push(PForm::le(card.scaled(-1).shifted(1)));
    }
    conjuncts.push(ctx.form(form));
    let body = PForm::and(conjuncts);

    // Existentially close over every variable (region vars and free int vars).
    let mut vars: BTreeSet<String> = BTreeSet::new();
    body.collect_vars(&mut vars);
    let mut sentence = body;
    for var in vars {
        sentence = PForm::Exists(var, Box::new(sentence));
    }
    Some(sentence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use crate::presburger::unsatisfiable;
    use ipl_logic::parser::parse_form;

    fn unsat(input: &str) -> bool {
        let form = parse_form(input).unwrap();
        let bapa = extract(&form).expect("formula in fragment");
        let sentence = to_presburger(&bapa, &BapaLimits::default()).expect("within limits");
        unsatisfiable(&sentence, &BapaLimits::default())
    }

    #[test]
    fn union_cardinality_upper_bound_is_valid() {
        // Negation of a valid fact must be unsatisfiable.
        assert!(unsat("~(card(a union b) <= card(a) + card(b))"));
    }

    #[test]
    fn intersection_bound() {
        assert!(unsat("~(card(a inter b) <= card(a))"));
    }

    #[test]
    fn singleton_membership_forces_cardinality() {
        assert!(unsat("x in s & card(s) = 0"));
        assert!(!unsat("x in s & card(s) = 1"));
    }

    #[test]
    fn too_many_set_variables_bails_out() {
        let form =
            parse_form("card(a union b union c union d union e union f union g union h) = 0")
                .unwrap();
        let bapa = extract(&form).unwrap();
        assert!(to_presburger(&bapa, &BapaLimits::default()).is_none());
    }

    #[test]
    fn satisfiable_formulas_stay_satisfiable() {
        assert!(!unsat(
            "card(a) = 3 & card(b) = 2 & a subseteq b | card(a) = 0"
        ));
        assert!(!unsat("card(a) = 2 & x in a"));
    }
}
