//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * assumption-base control — verifying with `from` clauses honoured versus
//!   ignored (Section 4.2 of the paper);
//! * instantiation budget — the effect of the bounded quantifier-
//!   instantiation rounds on verification.

use criterion::{criterion_group, criterion_main, Criterion};
use ipl_bench::bench_options;
use ipl_core::{Request, Session};
use ipl_provers::ProverConfig;

fn ablations(c: &mut Criterion) {
    let benchmark = ipl_suite::by_name("Hash Table").expect("benchmark exists");
    let verify = |session: &Session| {
        session
            .verify(&Request::new(benchmark.source))
            .expect("verifies")
            .report
    };

    // Report the outcome of each configuration once.
    for (label, options) in [
        ("from-clauses-honoured", bench_options()),
        (
            "from-clauses-ignored",
            bench_options().with_from_clauses(false),
        ),
        (
            "single-instantiation-round",
            bench_options().with_config(ProverConfig {
                instantiation_rounds: 1,
                ..bench_options().config
            }),
        ),
    ] {
        let report = verify(&Session::new(options));
        println!(
            "ablation {label}: {}/{} sequents proved in {:.2?}",
            report.proved_sequents(),
            report.total_sequents(),
            report.total_duration()
        );
    }

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("hash-table-with-from", |b| {
        let session = Session::new(bench_options());
        b.iter(|| verify(&session).proved_sequents());
    });
    group.bench_function("hash-table-ignoring-from", |b| {
        let session = Session::new(bench_options().with_from_clauses(false));
        b.iter(|| verify(&session).proved_sequents());
    });
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
