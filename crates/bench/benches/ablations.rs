//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * assumption-base control — verifying with `from` clauses honoured versus
//!   ignored (Section 4.2 of the paper);
//! * instantiation budget — the effect of the bounded quantifier-
//!   instantiation rounds on verification;
//! * the CDCL(T) ground-core features — eager theory propagation and Luby
//!   restarts toggled independently, with the conflict-count win of the
//!   propagation asserted, not just reported.

use criterion::{criterion_group, criterion_main, Criterion};
use ipl_bench::bench_options;
use ipl_core::{Request, Session};
use ipl_provers::ground::stats_snapshot;
use ipl_provers::{GroundConfig, ProverConfig};
use std::io::Write;
use std::time::Instant;

fn ablations(c: &mut Criterion) {
    let benchmark = ipl_suite::by_name("Hash Table").expect("benchmark exists");
    let verify = |session: &Session| {
        session
            .verify(&Request::new(benchmark.source))
            .expect("verifies")
            .report
    };

    // The ground-core feature matrix on Hash Table (the workload the CDCL(T)
    // upgrades target): wall-clock, conflicts, and theory propagations per
    // corner, with the markdown comparison appended to the CI job summary.
    let base = bench_options().config;
    let corner = |theory_propagation: bool, restarts: bool| ProverConfig {
        ground: GroundConfig {
            theory_propagation,
            restarts,
            ..base.ground
        },
        ..base
    };
    let mut rows = Vec::new();
    for (label, config) in [
        ("propagation+restarts", corner(true, true)),
        ("no-theory-propagation", corner(false, true)),
        ("no-restarts", corner(true, false)),
        ("neither", corner(false, false)),
    ] {
        let options = bench_options().with_config(config).with_jobs(1);
        let before = stats_snapshot();
        let start = Instant::now();
        let report = verify(&Session::new(options));
        let wall_ms = start.elapsed().as_millis();
        let delta = stats_snapshot().since(&before);
        println!(
            "ablation ground/{label}: {}/{} sequents in {wall_ms} ms, \
             {} conflicts, {} theory propagations",
            report.proved_sequents(),
            report.total_sequents(),
            delta.conflicts,
            delta.theory_propagations
        );
        rows.push((label, wall_ms, delta));
    }
    // The eager-propagation claim, pinned: theory facts surfaced before
    // conflicts must strictly reduce the conflicts needed on Hash Table
    // (compare the two corners that differ only in propagation).
    let conflicts = |label: &str| {
        rows.iter()
            .find(|(l, _, _)| *l == label)
            .map(|(_, _, d)| d.conflicts)
            .expect("corner measured")
    };
    assert!(
        conflicts("propagation+restarts") < conflicts("no-theory-propagation"),
        "theory propagation must strictly reduce conflicts on Hash Table \
         (with: {}, without: {})",
        conflicts("propagation+restarts"),
        conflicts("no-theory-propagation")
    );
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        let mut markdown = String::from(
            "## CDCL(T) ground-core ablations (Hash Table, 1 thread)\n\n\
             | configuration | wall ms | conflicts | theory propagations |\n\
             |---|---:|---:|---:|\n",
        );
        for (label, wall_ms, delta) in &rows {
            markdown.push_str(&format!(
                "| {label} | {wall_ms} | {} | {} |\n",
                delta.conflicts, delta.theory_propagations
            ));
        }
        markdown.push('\n');
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&summary_path)
        {
            let _ = file.write_all(markdown.as_bytes());
        }
    }

    // Report the outcome of each configuration once.
    for (label, options) in [
        ("from-clauses-honoured", bench_options()),
        (
            "from-clauses-ignored",
            bench_options().with_from_clauses(false),
        ),
        (
            "single-instantiation-round",
            bench_options().with_config(ProverConfig {
                instantiation_rounds: 1,
                ..bench_options().config
            }),
        ),
    ] {
        let report = verify(&Session::new(options));
        println!(
            "ablation {label}: {}/{} sequents proved in {:.2?}",
            report.proved_sequents(),
            report.total_sequents(),
            report.total_duration()
        );
    }

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("hash-table-with-from", |b| {
        let session = Session::new(bench_options());
        b.iter(|| verify(&session).proved_sequents());
    });
    group.bench_function("hash-table-ignoring-from", |b| {
        let session = Session::new(bench_options().with_from_clauses(false));
        b.iter(|| verify(&session).proved_sequents());
    });
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
