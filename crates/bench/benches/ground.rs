//! Micro-benchmarks of the CDCL ground core on the hottest real workload:
//! the Hash Table `put` and `initialize` sequents (the benchmark that dominated
//! the full-table wall-clock before the CDCL rewrite), measured with clause
//! learning on and off.
//!
//! The bench binary also pins the allocation win of the clause database over
//! the recursive tableau: the retained naive reference still pays the
//! per-disjunct `rest.clone()` + `Form::Or` re-wrap at every branch point,
//! so its allocation count on a branching-heavy refutation must strictly
//! dominate the CDCL engine's.  A counting global allocator measures both;
//! the comparison is asserted, not assumed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipl_gcl::translate::{translate_ext, TranslateCtx};
use ipl_gcl::wlp::vc_of;
use ipl_logic::{Form, SortEnv};
use ipl_provers::ground::{reference, refute, GroundResult};
use ipl_provers::preprocess::build_problem;
use ipl_provers::{Cancel, ProverConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A pass-through allocator that counts allocations, for the clause-DB
/// versus recursive-tableau comparison.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let value = f();
    (value, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

/// The preprocessed ground refutation problems of one Hash Table method,
/// with the `from`-clause assumption selection applied like the pipeline.
fn hash_table_ground_problems(method_name: &str) -> Vec<(Vec<Form>, SortEnv)> {
    let benchmark = ipl_suite::by_name("Hash Table").expect("benchmark exists");
    let module = ipl_lang::parse_module(benchmark.source).expect("parses");
    let lowered = ipl_lang::lower_module(&module).expect("lowers");
    let method = lowered
        .methods
        .iter()
        .find(|m| m.name == method_name)
        .unwrap_or_else(|| panic!("method {method_name} exists"));
    let mut ctx = TranslateCtx::new();
    let simple = translate_ext(&method.command, &mut ctx);
    let vc = vc_of(&simple);
    ipl_gcl::split::split_all(&vc)
        .into_iter()
        .filter(|s| !s.is_trivially_valid())
        .map(|sequent| {
            let assumptions: Vec<Form> = sequent
                .selected_assumptions()
                .into_iter()
                .map(|l| l.form.clone())
                .collect();
            let problem = build_problem(&assumptions, &sequent.goal, &method.env);
            (problem.ground, method.env.clone())
        })
        .collect()
}

fn ground(c: &mut Criterion) {
    let cdcl = ProverConfig::without_cache();
    let no_learning = ProverConfig {
        use_cache: false,
        ..ProverConfig::without_learning()
    };
    let cancel = Cancel::never();

    // The allocation pin: the naive recursive tableau clones the remaining
    // disjunction list at every branch point; the clause database must not.
    let env = SortEnv::new();
    let forms = reference::pigeonhole(5);
    let (result, cdcl_allocs) = allocations(|| refute(&forms, &env, &cdcl, &cancel));
    assert_eq!(result, GroundResult::Unsat);
    let (result, naive_allocs) = allocations(|| reference::refute_naive(&forms, &env, 1_000_000));
    assert_eq!(result, GroundResult::Unsat);
    println!(
        "allocations refuting pigeonhole(5): cdcl {cdcl_allocs}, naive recursive {naive_allocs} \
         ({:.1}x)",
        naive_allocs as f64 / cdcl_allocs.max(1) as f64
    );
    assert!(
        cdcl_allocs < naive_allocs,
        "the clause database must allocate less than the cloning tableau \
         (cdcl {cdcl_allocs} vs naive {naive_allocs})"
    );

    // The string-free arithmetic pin: the Fourier–Motzkin re-check used to
    // key every coefficient by a fresh `format!("t{rep}")` string, so a Hash
    // Table `put` refutation allocated in proportion to (constraints ×
    // re-checks).  The id-keyed pooled path re-keys by integer term ids into
    // reused buffers; the ceiling below sits ~1.5x above the measured
    // allocation count of the converted engine and far below what the
    // string-keyed re-check spent, so a regression back to per-check string
    // keys trips the assertion, not just the wall-clock numbers.
    let put_problems = hash_table_ground_problems("put");
    assert!(!put_problems.is_empty(), "put has non-trivial sequents");
    // Warm-up pass so lazily initialised globals don't count.
    for (ground_forms, env) in &put_problems {
        refute(ground_forms, env, &cdcl, &cancel);
    }
    let (_, put_allocs) = allocations(|| {
        for (ground_forms, env) in &put_problems {
            black_box(refute(ground_forms, env, &cdcl, &cancel));
        }
    });
    const PUT_ALLOCATION_CEILING: u64 = 700_000; // measured: ~465k id-keyed
    println!("allocations refuting hash table put: {put_allocs}");
    assert!(
        put_allocs <= PUT_ALLOCATION_CEILING,
        "the arithmetic re-check must stay string-free \
         (put refutation allocated {put_allocs}, ceiling {PUT_ALLOCATION_CEILING})"
    );

    let mut group = c.benchmark_group("ground");
    for method in ["put", "initialize"] {
        let problems = hash_table_ground_problems(method);
        assert!(!problems.is_empty(), "{method} has non-trivial sequents");
        for (label, config) in [("cdcl", &cdcl), ("no-learning", &no_learning)] {
            group.bench_function(&format!("hashtable-{method}-{label}"), |b| {
                b.iter(|| {
                    for (ground_forms, env) in &problems {
                        black_box(refute(ground_forms, env, config, &cancel));
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, ground);
criterion_main!(benches);
