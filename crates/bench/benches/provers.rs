//! Micro-benchmarks of the individual reasoning systems in the cascade.

use criterion::{criterion_group, criterion_main, Criterion};
use ipl_logic::parser::parse_form;
use ipl_logic::{Labeled, Sort, SortEnv};
use ipl_provers::{Cascade, ProverConfig, Query};

fn env() -> SortEnv {
    let mut e = SortEnv::new();
    for v in ["i", "j", "size", "csize", "x"] {
        e.declare_var(v, Sort::Int);
    }
    for v in ["o", "a", "b", "first"] {
        e.declare_var(v, Sort::Obj);
    }
    e.declare_var("next", Sort::obj_field());
    e.declare_var("content", Sort::int_obj_set());
    e.declare_var("newcontent", Sort::int_obj_set());
    e
}

fn query(assumptions: &[&str], goal: &str) -> Query {
    Query::new(
        assumptions
            .iter()
            .enumerate()
            .map(|(i, s)| Labeled::new(format!("A{i}"), parse_form(s).unwrap()))
            .collect(),
        parse_form(goal).unwrap(),
        env(),
    )
}

fn provers(c: &mut Criterion) {
    let cascade = Cascade::standard(ProverConfig::without_cache());
    let cases = vec![
        (
            "ground-euf-lia",
            query(
                &["a = b", "b = first", "0 <= i", "i < size"],
                "a = first & 0 <= i + 1",
            ),
        ),
        (
            "quantifier-instantiation",
            query(
                &[
                    "forall k:int, e:obj. (k, e) in content --> 0 <= k",
                    "(i, o) in content",
                ],
                "0 <= i",
            ),
        ),
        (
            "bapa-cardinality",
            query(
                &[
                    "~((i, o) in content)",
                    "newcontent = content union {(i, o)}",
                ],
                "card(newcontent) = card(content) + 1",
            ),
        ),
        (
            "shape-reachability",
            query(
                &["reach(next, first, a)", "a.next = b"],
                "reach(next, first, b)",
            ),
        ),
    ];

    let mut group = c.benchmark_group("provers");
    group.sample_size(20);
    for (name, q) in cases {
        group.bench_function(name, |b| b.iter(|| cascade.prove(&q).outcome));
    }
    group.finish();
}

/// Head-to-head of the two instantiation engines on quantifier-heavy
/// queries: trigger-driven E-matching versus the sort-pool cross-product
/// fallback it replaced.
fn instantiation_engines(c: &mut Criterion) {
    let ematch = Cascade::standard(ProverConfig::without_cache());
    let pool = Cascade::standard(ProverConfig {
        use_cache: false,
        ..ProverConfig::without_triggers()
    });
    // Several irrelevant ground facts inflate the sort pool; E-matching only
    // instantiates against terms that occur under the trigger heads.
    let q = query(
        &[
            "forall k:int, e:obj. (k, e) in content --> 0 <= k",
            "forall n:int. p(n) --> 0 <= n",
            "(i, o) in content",
            "0 <= j",
            "j < size",
            "size <= csize",
            "a = b",
            "first.next = a",
        ],
        "0 <= i",
    );

    let mut group = c.benchmark_group("instantiation");
    group.sample_size(20);
    group.bench_function("ematch", |b| b.iter(|| ematch.prove(&q).outcome));
    group.bench_function("sort-pool", |b| b.iter(|| pool.prove(&q).outcome));
    group.finish();
}

criterion_group!(benches, provers, instantiation_engines);
criterion_main!(benches);
