//! Regenerates Table 1 and measures the verification of a representative
//! structure (the Linked List) so Criterion reports a stable statistic.

use criterion::{criterion_group, criterion_main, Criterion};
use ipl_bench::{bench_options, verify_counts};

fn table1(c: &mut Criterion) {
    // Print the full table once.
    let rows = ipl_suite::table1::generate(&bench_options());
    println!("\n===== Table 1 (reproduction) =====");
    println!("{}", ipl_suite::table1::render(&rows));

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for name in ["Linked List", "Association List", "Cursor List"] {
        group.bench_function(name, |b| {
            b.iter(|| verify_counts(name, &bench_options()));
        });
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
