//! Regenerates Table 2 (verification without vs with proof constructs) and
//! measures the two configurations on a representative structure.

use criterion::{criterion_group, criterion_main, Criterion};
use ipl_bench::bench_options;
use ipl_core::VerifyOptions;

fn table2(c: &mut Criterion) {
    let rows = ipl_suite::table2::generate(&bench_options());
    println!("\n===== Table 2 (reproduction) =====");
    println!("{}", ipl_suite::table2::render(&rows));

    let benchmark = ipl_suite::by_name("Priority Queue").expect("benchmark exists");
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("priority-queue-with-constructs", |b| {
        b.iter(|| {
            ipl_core::verify_source(benchmark.source, &bench_options())
                .unwrap()
                .proved_sequents()
        });
    });
    group.bench_function("priority-queue-without-constructs", |b| {
        let options = VerifyOptions {
            use_proof_constructs: false,
            ..bench_options()
        };
        b.iter(|| {
            ipl_core::verify_source(benchmark.source, &options)
                .unwrap()
                .proved_sequents()
        });
    });
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
