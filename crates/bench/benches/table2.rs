//! Regenerates Table 2 (verification without vs with proof constructs) and
//! measures the two configurations on a representative structure.

use criterion::{criterion_group, criterion_main, Criterion};
use ipl_bench::bench_options;
use ipl_core::{Request, Session};

fn table2(c: &mut Criterion) {
    let rows = ipl_suite::table2::generate(&bench_options());
    println!("\n===== Table 2 (reproduction) =====");
    println!("{}", ipl_suite::table2::render(&rows));

    let benchmark = ipl_suite::by_name("Priority Queue").expect("benchmark exists");
    let verify = |session: &Session| {
        session
            .verify(&Request::new(benchmark.source))
            .expect("verifies")
            .report
            .proved_sequents()
    };
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("priority-queue-with-constructs", |b| {
        let session = Session::new(bench_options());
        b.iter(|| verify(&session));
    });
    group.bench_function("priority-queue-without-constructs", |b| {
        let session = Session::new(bench_options().with_proof_constructs(false));
        b.iter(|| verify(&session));
    });
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
