//! Micro-benchmarks of the shared (`Arc`-based, hash-consed) term
//! representation against the cost profile of the old `Box`-based tree:
//!
//! * `clone-shared` — cloning a formula today: a pointer bump per recursive
//!   position (the operation the pipeline performs hundreds of times per
//!   method);
//! * `clone-deep` — a full structural rebuild, which is what every one of
//!   those clones cost with `Box<Form>` children;
//! * `subst-shared` vs `subst-tree` — capture-avoiding substitution on a
//!   hash-consed DAG (pointer-memoised, linear in distinct nodes) against the
//!   same formula as a plain tree;
//! * `intern` — the cost of hash-consing itself, for scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipl_logic::parser::parse_form;
use ipl_logic::{share, substitute, Form};
use std::collections::HashMap;

/// Rebuilds the whole tree, allocating every node anew — the clone cost of
/// the pre-refactor `Box<Form>` representation.
fn deep_clone(form: &Form) -> Form {
    form.map_children(deep_clone)
}

/// A formula shaped like the suite's verification conditions: nested
/// quantifiers, field reads and repeated subterms that hash-consing shares.
fn vc_like(depth: usize) -> Form {
    let leaf = parse_form(
        "forall i:int. 0 <= i & i < size --> (elements[i] ~= null & (i, elements[i]) in content)",
    )
    .unwrap();
    let mut form = leaf.clone();
    for _ in 0..depth {
        form = Form::and(vec![
            Form::implies(parse_form("0 <= size").unwrap(), form.clone()),
            Form::or(vec![form, leaf.clone()]),
        ]);
    }
    form
}

fn terms(c: &mut Criterion) {
    let tree = vc_like(8);
    let shared = share(&tree);
    println!("\nterm-construction benchmark: {} tree nodes", tree.size());

    let mut group = c.benchmark_group("terms");
    group.sample_size(30);
    group.bench_function("clone-shared", |b| {
        b.iter(|| black_box(black_box(&shared).clone()))
    });
    group.bench_function("clone-deep", |b| {
        b.iter(|| black_box(deep_clone(black_box(&tree))))
    });

    let mut map = HashMap::new();
    map.insert("size".to_string(), Form::var("size#1"));
    group.bench_function("subst-shared", |b| {
        b.iter(|| black_box(substitute(black_box(&shared), &map)))
    });
    group.bench_function("subst-tree", |b| {
        b.iter(|| black_box(substitute(black_box(&tree), &map)))
    });

    group.bench_function("intern", |b| b.iter(|| black_box(share(black_box(&tree)))));
    group.bench_function("eq-shared", |b| {
        // Pointer-identity fast path: both sides intern to the same root.
        let other = share(&tree);
        b.iter(|| black_box(black_box(&shared) == black_box(&other)))
    });
    group.finish();

    // Sanity: sharing must not change structure.
    assert_eq!(shared, tree);
}

criterion_group!(benches, terms);
criterion_main!(benches);
