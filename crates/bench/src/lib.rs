//! # `ipl-bench` — benchmark harness
//!
//! Criterion benchmarks that regenerate the paper's evaluation artefacts:
//!
//! * `benches/table1.rs` — Table 1 (construct counts and verification time);
//! * `benches/table2.rs` — Table 2 (verification without vs with the proof
//!   language constructs);
//! * `benches/ablations.rs` — ablations over the design choices called out in
//!   DESIGN.md: assumption-base control (`from` clauses) and instantiation
//!   budgets;
//! * `benches/provers.rs` — micro-benchmarks of the individual reasoners
//!   (ground SMT-lite, quantifier instantiation, BAPA, shape).
//!
//! Each table bench prints the full regenerated table once, then measures a
//! representative verification run so Criterion has a stable quantity to
//! report.

use ipl_core::VerifyOptions;

/// The verification options used by the benchmark harnesses.  The proof
/// cache is disabled: criterion repeats each verification many times, and a
/// cache hit on iteration two would measure replay instead of prover work.
pub fn bench_options() -> VerifyOptions {
    VerifyOptions::default()
        .with_config(ipl_provers::ProverConfig {
            use_cache: false,
            ..ipl_suite::suite_config()
        })
        .with_record_sequents(false)
}

/// Verifies one named benchmark and returns (proved, total) sequent counts.
pub fn verify_counts(name: &str, options: &VerifyOptions) -> (usize, usize) {
    let benchmark = ipl_suite::by_name(name).expect("benchmark exists");
    let report = ipl_core::Session::new(options.clone())
        .verify(&ipl_core::Request::new(benchmark.source))
        .expect("verifies")
        .report;
    (report.proved_sequents(), report.total_sequents())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_disable_sequent_recording() {
        assert!(!bench_options().record_sequents);
    }
}
