//! Typed verification errors.
//!
//! The original entry points reported failures as `Result<_, String>`, which
//! a CLI can print but a daemon, an LSP loop or a language binding cannot
//! inspect.  [`VerifyError`] keeps the exact `Display` text of the old
//! strings (so CLI messages do not churn) while carrying the structure —
//! error kind, 1-based line, byte-offset [`Span`] — that the `ipl serve`
//! protocol serializes into error frames.

use ipl_lang::lower::LowerError;
use ipl_lang::parser::LangError;
use std::fmt;
use std::path::PathBuf;

/// A byte-offset range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first offending character.
    pub start: usize,
    /// Byte offset one past the last offending character.
    pub end: usize,
}

/// Why a verification request could not produce a [`ModuleReport`]
/// (crate::ModuleReport).  Prover failures are *not* errors — an unproved,
/// crashed or deadline-skipped sequent is recorded in the report; this type
/// covers the stages before dispatch (parse, lower) plus I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The source text failed to parse.
    #[non_exhaustive]
    Parse {
        /// Description of the syntax error.
        message: String,
        /// 1-based line number.
        line: usize,
        /// Byte offsets of the offending token, when known.
        span: Option<Span>,
    },
    /// The parsed module failed semantic lowering.
    #[non_exhaustive]
    Lower {
        /// Description of the problem.
        message: String,
    },
    /// A filesystem operation failed (reading a source file, a cache
    /// directory that must exist).
    #[non_exhaustive]
    Io {
        /// The underlying error text.
        message: String,
        /// The path involved, when known.
        path: Option<PathBuf>,
    },
}

impl VerifyError {
    /// Short machine-readable tag: `"parse"`, `"lower"` or `"io"`.
    pub fn kind(&self) -> &'static str {
        match self {
            VerifyError::Parse { .. } => "parse",
            VerifyError::Lower { .. } => "lower",
            VerifyError::Io { .. } => "io",
        }
    }

    /// The 1-based source line, for parse errors.
    pub fn line(&self) -> Option<usize> {
        match self {
            VerifyError::Parse { line, .. } => Some(*line),
            _ => None,
        }
    }

    /// The byte-offset span of the offending token, when known.
    pub fn span(&self) -> Option<Span> {
        match self {
            VerifyError::Parse { span, .. } => *span,
            _ => None,
        }
    }

    /// Wraps an I/O error with the path it concerns.
    pub fn io(error: &std::io::Error, path: impl Into<PathBuf>) -> VerifyError {
        VerifyError::Io {
            message: error.to_string(),
            path: Some(path.into()),
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Byte-for-byte the strings the `Result<_, String>` era produced.
            VerifyError::Parse { message, line, .. } => write!(f, "line {line}: {message}"),
            VerifyError::Lower { message } => write!(f, "lowering error: {message}"),
            VerifyError::Io { message, path } => match path {
                Some(path) => write!(f, "{}: {message}", path.display()),
                None => write!(f, "{message}"),
            },
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<LangError> for VerifyError {
    fn from(e: LangError) -> VerifyError {
        VerifyError::Parse {
            message: e.message,
            line: e.line,
            span: e.span.map(|(start, end)| Span { start, end }),
        }
    }
}

impl From<LowerError> for VerifyError {
    fn from(e: LowerError) -> VerifyError {
        VerifyError::Lower { message: e.message }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_the_legacy_strings() {
        let parse_err = ipl_lang::parse_module("module M {\n  var x: unknown;\n}").unwrap_err();
        let legacy = parse_err.to_string();
        let typed: VerifyError = parse_err.into();
        assert_eq!(typed.to_string(), legacy);
        assert_eq!(typed.kind(), "parse");
        assert_eq!(typed.line(), Some(2));
        assert!(typed.span().is_some());

        let lower = VerifyError::Lower {
            message: "duplicate method `m`".into(),
        };
        assert_eq!(lower.to_string(), "lowering error: duplicate method `m`");
        assert_eq!(lower.kind(), "lower");
        assert_eq!(lower.line(), None);
    }

    #[test]
    fn spans_index_the_source() {
        let source = "module M {\n  var x: unknown;\n}";
        let typed: VerifyError = ipl_lang::parse_module(source).unwrap_err().into();
        let span = typed.span().unwrap();
        assert_eq!(&source[span.start..span.end], "unknown");
    }

    #[test]
    fn io_errors_carry_the_path() {
        let e = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let typed = VerifyError::io(&e, "/tmp/missing.ipl");
        assert_eq!(typed.kind(), "io");
        assert_eq!(typed.to_string(), "/tmp/missing.ipl: gone");
    }
}
