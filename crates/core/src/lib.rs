//! # `ipl-core` — the verification driver
//!
//! This crate ties the pipeline of the paper together:
//!
//! 1. parse an annotated module (`ipl-lang`),
//! 2. lower each method to extended guarded commands,
//! 3. translate to simple guarded commands (Figures 6 and 8 via `ipl-gcl`),
//! 4. generate the verification condition by weakest liberal preconditions
//!    (Figure 5) and split it into labelled sequents (Figure 7),
//! 5. dispatch every sequent to the integrated prover cascade
//!    (`ipl-provers`), honouring `from`-clause assumption selection,
//! 6. collect the per-method and per-module statistics reported in
//!    Tables 1 and 2 of the paper.
//!
//! The public entry point is [`session::Session`]: build one from a
//! [`VerifyOptions`], then call [`Session::verify`](session::Session::verify)
//! with a [`session::Request`].  The session owns the long-lived state — the
//! prover cascade, the persistent store handle (scanned once, not per call),
//! and previous reports for incremental replay — which is what `ipl serve`
//! keeps warm across requests.  The historical free functions
//! ([`verify_source`], [`verify_module`] and their `_incremental` twins)
//! survive as deprecated shims that build a throwaway session per call.
//! [`VerifyOptions::without_proof_constructs`] reproduces the "Without Proof
//! Language Constructs" configuration of Table 2 by stripping every proof
//! statement before verification.
//!
//! ## The parallel scheduler
//!
//! Sequent proving is embarrassingly parallel: every sequent is an
//! independent query against a `Send + Sync` cascade over `Arc`-shared terms.
//! [`verify_module`] therefore runs a small hand-rolled worker pool
//! ([`VerifyOptions::jobs`] threads, default = available parallelism) in two
//! waves: first the per-method pipeline front-end (translate → wlp → split →
//! hash-consing of the sequent terms), then one flat work list of every
//! non-trivial sequent in the module.  Workers pull indices from a shared
//! atomic cursor and write results into per-slot cells, so reports are
//! assembled **in input order and deterministically** regardless of thread
//! count — `jobs = 1` and `jobs = N` produce identical reports (timings
//! aside; see [`ModuleReport::normalized`]).

pub mod error;
pub mod report;
pub mod session;

pub use error::{Span, VerifyError};
use ipl_gcl::split::{split_all, Sequent};
use ipl_gcl::translate::{translate_ext, TranslateCtx};
use ipl_gcl::wlp::vc_of;
use ipl_lang::lower::{lower_module, LoweredMethod};
use ipl_lang::Module;
use ipl_logic::Labeled;
use ipl_provers::cache::{Fingerprint, ProofCache};
pub use ipl_provers::cache_store::CompactStats;
use ipl_provers::{containment, Cascade, Outcome, ProverAnswer, ProverConfig, Query};
pub use report::{MethodReport, ModuleReport, SequentReport};
pub use session::{Request, Response, Session, SessionStats};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Options controlling a verification run.
///
/// `#[non_exhaustive]`: construct via [`VerifyOptions::default`] (or the
/// named presets) and refine with the builder methods — new knobs can then be
/// added without breaking callers.  The fields stay public for reading and
/// in-place mutation.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct VerifyOptions {
    /// Prover budgets.
    pub config: ProverConfig,
    /// When `false`, every integrated proof language construct is stripped
    /// before verification (the Table 2 baseline configuration).
    pub use_proof_constructs: bool,
    /// When `false`, `from` clauses are ignored and the provers always see
    /// the full assumption base (used by the ablation benchmarks).
    pub use_from_clauses: bool,
    /// Record one [`SequentReport`] per sequent (disable to save memory in
    /// benchmarks).
    pub record_sequents: bool,
    /// Worker threads proving sequents concurrently; `0` (the default) uses
    /// the machine's available parallelism, `1` forces the sequential path.
    pub jobs: usize,
    /// Directory of the persistent proof store (see
    /// [`ipl_provers::cache_store`]).  When set (and the in-memory cache is
    /// enabled), previously persisted proofs are preloaded before dispatch
    /// and every freshly proved sequent is appended after — so re-verifying
    /// an unchanged module in a *new process* costs one fingerprint lookup
    /// per sequent.  `None` (the default) keeps the cache process-local.
    pub cache_dir: Option<PathBuf>,
    /// Module-level wall-clock budget.  When set, the deadline flows down
    /// through every prover's cooperative [`ipl_provers::Cancel`] token;
    /// sequents dispatched after it passes are reported as
    /// `Skipped(DeadlineExceeded)` and the run returns a *partial* report
    /// instead of hanging or aborting.  `None` (the default) leaves only the
    /// per-prover timeouts in force.
    pub module_deadline: Option<Duration>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            config: ProverConfig::default(),
            use_proof_constructs: true,
            use_from_clauses: true,
            record_sequents: true,
            jobs: 0,
            cache_dir: None,
            module_deadline: None,
        }
    }
}

impl VerifyOptions {
    /// The Table 2 baseline: all proof language constructs removed.
    pub fn without_proof_constructs() -> Self {
        VerifyOptions {
            use_proof_constructs: false,
            ..Self::default()
        }
    }

    /// Ablation: keep the proof constructs but ignore `from` clauses.
    pub fn ignoring_from_clauses() -> Self {
        VerifyOptions {
            use_from_clauses: false,
            ..Self::default()
        }
    }

    /// The worker count actually used: `jobs`, or the machine's available
    /// parallelism when `jobs` is `0`.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }

    /// Sets the prover budgets.
    #[must_use]
    pub fn with_config(mut self, config: ProverConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the worker count (`0` = available parallelism).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enables the persistent proof store in `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the module-level wall-clock budget.
    #[must_use]
    pub fn with_module_deadline(mut self, deadline: Duration) -> Self {
        self.module_deadline = Some(deadline);
        self
    }

    /// Controls per-sequent report recording (disable to save memory in
    /// benchmarks; incremental replay needs it on).
    #[must_use]
    pub fn with_record_sequents(mut self, record: bool) -> Self {
        self.record_sequents = record;
        self
    }

    /// Controls whether integrated proof constructs are kept (`false` is the
    /// Table 2 baseline).
    #[must_use]
    pub fn with_proof_constructs(mut self, use_proof_constructs: bool) -> Self {
        self.use_proof_constructs = use_proof_constructs;
        self
    }

    /// Controls `from`-clause assumption selection (`false` is the ablation
    /// configuration).
    #[must_use]
    pub fn with_from_clauses(mut self, use_from_clauses: bool) -> Self {
        self.use_from_clauses = use_from_clauses;
        self
    }
}

/// Verifies a module from source text.
///
/// # Errors
///
/// Returns a [`VerifyError`] when parsing or lowering fails.  Its `Display`
/// output is identical to the error strings of earlier releases.
#[deprecated(note = "build a `Session` and call `Session::verify` instead")]
pub fn verify_source(source: &str, options: &VerifyOptions) -> Result<ModuleReport, VerifyError> {
    let module = ipl_lang::parse_module(source)?;
    Session::new(options.clone()).verify_module(&module, None)
}

/// Re-verifies a module from source text, replaying the unchanged sequents of
/// a previous run (see [`verify_module_incremental`]).
///
/// # Errors
///
/// Returns a [`VerifyError`] when parsing or lowering fails.
#[deprecated(
    note = "build a `Session` and call `Session::verify` with `Request::with_incremental`"
)]
pub fn verify_source_incremental(
    source: &str,
    previous: &ModuleReport,
    options: &VerifyOptions,
) -> Result<ModuleReport, VerifyError> {
    let module = ipl_lang::parse_module(source)?;
    Session::new(options.clone()).verify_module(&module, Some(previous))
}

/// Verifies a parsed module, proving the sequents of all its methods on the
/// configured worker pool.
///
/// # Errors
///
/// Returns a [`VerifyError`] when lowering fails.
#[deprecated(note = "build a `Session` and call `Session::verify_module` instead")]
pub fn verify_module(
    module: &Module,
    options: &VerifyOptions,
) -> Result<ModuleReport, VerifyError> {
    Session::new(options.clone()).verify_module(module, None)
}

/// Re-verifies a module given the report of a previous run: a sequent whose
/// content fingerprint is unchanged since `previous` replays its recorded
/// outcome without dispatching the cascade (a previously proved sequent
/// counts as a cache hit with its original prover attribution; a previously
/// unproved one skips the expensive re-attempt, which is the steady-state
/// saving after an edit).  Fingerprint-changed and new sequents are proved
/// normally.
///
/// Replay requires `previous` to carry per-sequent fingerprints — i.e. it
/// must come from a run with [`VerifyOptions::record_sequents`] and the
/// proof cache enabled.  Sequents without a matching prior fingerprint
/// degrade gracefully to a full cascade dispatch, so the result is always as
/// if the module had been verified from scratch under the same store.
///
/// # Errors
///
/// Returns a [`VerifyError`] when lowering fails.
#[deprecated(note = "build a `Session` and call `Session::verify_module` instead")]
pub fn verify_module_incremental(
    module: &Module,
    previous: &ModuleReport,
    options: &VerifyOptions,
) -> Result<ModuleReport, VerifyError> {
    Session::new(options.clone()).verify_module(module, Some(previous))
}

/// The two prover waves shared by [`Session`] and [`verify_method`]: lower,
/// prepare every method, dispatch every non-trivial sequent, assemble the
/// report deterministically.  The store is the caller's business (the
/// session preloads before and appends after); this function only *collects*
/// the freshly provable `(fingerprint, prover)` pairs and returns them
/// alongside the report.
pub(crate) fn drive(
    module: &Module,
    options: &VerifyOptions,
    previous: Option<&ModuleReport>,
    cascade: &Cascade,
    prover_names: &[&'static str],
) -> Result<(ModuleReport, Vec<(Fingerprint, String)>), VerifyError> {
    let lowered = lower_module(module)?;
    let jobs = options.effective_jobs();
    let mut report = ModuleReport::new(&lowered.name, module);
    report.jobs = jobs;

    // Per-run telemetry starts from zero: without this, a later run in the
    // same process (Table 2's double run, `--compare-sequential`) inherits
    // the previous run's hit/miss counters.  The *entries* stay, which is the
    // point of the cache.
    let cache = ProofCache::global();
    cache.reset_stats();

    // The previous run's per-sequent fingerprints, for incremental replay.
    let prior = previous.map(prior_index).unwrap_or_default();

    // The module deadline starts counting now: front-end, dispatch and
    // retries all share one wall-clock budget.
    let deadline = options
        .module_deadline
        .map(|budget| Instant::now() + budget);

    // Wave 1: the pipeline front-end, one work item per method.  A panicking
    // front-end quarantines that one method (the recovery closure marks it
    // crashed) and the other methods proceed.
    let prepared = parallel_map(
        jobs,
        &lowered.methods,
        |method| prepare(method, options),
        Prepared::crashed,
    );

    // Wave 2: one flat work list of every non-trivial sequent in the module,
    // so a single proof-heavy method cannot serialise the pool.
    let mut work: Vec<(usize, usize)> = Vec::new();
    for (method_index, p) in prepared.iter().enumerate() {
        for (sequent_index, sequent) in p.sequents.iter().enumerate() {
            if !sequent.is_trivially_valid() {
                work.push((method_index, sequent_index));
            }
        }
    }
    let answers = parallel_map(
        jobs,
        &work,
        |&(method_index, sequent_index)| {
            let p = &prepared[method_index];
            let sequent = &p.sequents[sequent_index];
            let query = sequent_query(sequent, &p.method.env, options);
            if options.config.use_cache && !prior.is_empty() {
                let fingerprint = ProofCache::fingerprint(&query, &options.config, prover_names);
                if let Some(prev) = prior.get(&(p.method.name.as_str(), sequent.name.as_str())) {
                    if prev.fingerprint == Some(fingerprint.as_u128()) {
                        return replay_answer(prev, fingerprint);
                    }
                }
            }
            cascade.prove_under(&query, deadline)
        },
        // A panic that escapes even the cascade's own stage containment
        // (driver bug, query construction) still only quarantines its one
        // sequent; the worker thread survives and keeps claiming work, so
        // `--jobs N` never degrades to N-1.
        |_, message| crashed_answer("driver", message),
    );

    // This run's freshly proved fingerprints, for the caller to persist
    // (`StoreHandle::append_new` skips everything already on disk).
    let proved: Vec<(Fingerprint, String)> = answers
        .iter()
        .filter(|answer| answer.outcome == Outcome::Proved)
        .filter_map(|answer| Some((answer.fingerprint?, answer.prover.clone()?)))
        .collect();

    // Deterministic assembly in input order.
    let mut per_method: Vec<Vec<(usize, ProverAnswer)>> = vec![Vec::new(); prepared.len()];
    for (&(method_index, sequent_index), answer) in work.iter().zip(answers) {
        per_method[method_index].push((sequent_index, answer));
    }
    for (p, answers) in prepared.into_iter().zip(per_method) {
        report.methods.push(assemble(p, answers, options));
    }
    Ok((report, proved))
}

/// Indexes a previous report's recorded sequents by `(method, sequent)` name
/// for incremental replay.  Sequents recorded without a fingerprint (cache
/// disabled, pre-store report) are skipped — they can only be re-proved.
/// Crashed and deadline-skipped priors are also excluded: those outcomes
/// describe the previous run's *infrastructure*, not the sequent, so the
/// sequent gets a fresh dispatch.
fn prior_index(previous: &ModuleReport) -> HashMap<(&str, &str), &SequentReport> {
    let mut index = HashMap::new();
    for method in &previous.methods {
        for sequent in &method.sequents {
            let replayable = !matches!(
                sequent.outcome,
                Outcome::Crashed { .. } | Outcome::Skipped(_)
            );
            if sequent.fingerprint.is_some() && replayable {
                index.insert((method.name.as_str(), sequent.name.as_str()), sequent);
            }
        }
    }
    index
}

/// The answer recorded for a sequent whose dispatch (not any prover stage)
/// panicked: quarantined, never a verdict.
fn crashed_answer(stage: &str, message: String) -> ProverAnswer {
    ProverAnswer {
        outcome: Outcome::Crashed {
            stage: stage.to_string(),
            message,
        },
        prover: None,
        duration: Duration::ZERO,
        stage_durations: Vec::new(),
        cached: false,
        fingerprint: None,
        retries: 0,
    }
}

/// The answer replayed for a sequent whose fingerprint is unchanged since the
/// previous run: same outcome, same prover attribution, no cascade dispatch.
/// Only proved replays count as cache hits (an unproved sequent was answered
/// by the previous run's *absence* of a proof, not by the cache).
fn replay_answer(previous: &SequentReport, fingerprint: Fingerprint) -> ProverAnswer {
    let start = Instant::now();
    ProverAnswer {
        outcome: if previous.proved {
            Outcome::Proved
        } else {
            Outcome::Unknown
        },
        prover: previous.prover.clone(),
        duration: start.elapsed(),
        stage_durations: Vec::new(),
        cached: previous.proved,
        fingerprint: Some(fingerprint),
        retries: 0,
    }
}

/// Verifies one lowered method (the standalone entry point used by tests and
/// ablations); its sequents are proved on the configured worker pool.
pub fn verify_method(
    method: &LoweredMethod,
    cascade: &Cascade,
    options: &VerifyOptions,
) -> MethodReport {
    let deadline = options
        .module_deadline
        .map(|budget| Instant::now() + budget);
    let prepared = prepare(method, options);
    let work: Vec<usize> = (0..prepared.sequents.len())
        .filter(|&i| !prepared.sequents[i].is_trivially_valid())
        .collect();
    let answers = parallel_map(
        options.effective_jobs(),
        &work,
        |&sequent_index| {
            cascade.prove_under(
                &sequent_query(
                    &prepared.sequents[sequent_index],
                    &prepared.method.env,
                    options,
                ),
                deadline,
            )
        },
        |_, message| crashed_answer("driver", message),
    );
    let answers = work.into_iter().zip(answers).collect();
    assemble(prepared, answers, options)
}

/// The pipeline front-end output for one method: its split, hash-consed
/// sequents, the proof-construct counts of the command that was verified,
/// and the front-end wall-clock.
struct Prepared<'a> {
    method: &'a LoweredMethod,
    sequents: Vec<Sequent>,
    counts: ipl_gcl::cmd::ConstructCounts,
    front_end: std::time::Duration,
    /// Panic message when the front-end itself crashed; the method is then
    /// reported as one quarantined sequent instead of poisoning the run.
    crashed: Option<String>,
}

impl<'a> Prepared<'a> {
    fn crashed(method: &'a LoweredMethod, message: String) -> Prepared<'a> {
        Prepared {
            method,
            sequents: Vec::new(),
            counts: ipl_gcl::cmd::ConstructCounts::default(),
            front_end: Duration::ZERO,
            crashed: Some(message),
        }
    }
}

/// Runs translate → wlp → split for one method and interns every sequent
/// formula so that structurally equal subterms — within the method, across
/// methods and across modules — share one allocation (pointer-equality fast
/// paths, memoised substitution, deduplicated memory).
fn prepare<'a>(method: &'a LoweredMethod, options: &VerifyOptions) -> Prepared<'a> {
    let start = Instant::now();
    let command = if options.use_proof_constructs {
        method.command.clone()
    } else {
        method.command.strip_proofs()
    };
    let counts = if options.use_proof_constructs {
        method.counts
    } else {
        command.count_constructs()
    };
    let mut ctx = TranslateCtx::new();
    let simple = translate_ext(&command, &mut ctx);
    let vc = vc_of(&simple);
    let mut sequents = split_all(&vc);
    for sequent in &mut sequents {
        sequent.goal = ipl_logic::intern::share(&sequent.goal);
        for assumption in &mut sequent.assumptions {
            assumption.form = ipl_logic::intern::share(&assumption.form);
        }
    }
    Prepared {
        method,
        sequents,
        counts,
        front_end: start.elapsed(),
        crashed: None,
    }
}

/// Folds the per-sequent answers (indexed by position in
/// `prepared.sequents`) into the method report, in sequent order.
fn assemble(
    prepared: Prepared<'_>,
    mut answers: Vec<(usize, ProverAnswer)>,
    options: &VerifyOptions,
) -> MethodReport {
    answers.sort_by_key(|(sequent_index, _)| *sequent_index);
    let mut answers = answers.into_iter().peekable();

    let mut report = MethodReport::new(&prepared.method.name);
    report.counts = prepared.counts;
    if let Some(message) = prepared.crashed {
        // The front-end never produced sequents; report the method as one
        // quarantined obligation so it can never count as verified.
        report.total_sequents = 1;
        report.crashed_sequents = 1;
        if options.record_sequents {
            report.sequents.push(SequentReport {
                name: format!("{}::front-end", prepared.method.name),
                goal_label: "FrontEnd".to_string(),
                proved: false,
                outcome: Outcome::Crashed {
                    stage: "front-end".to_string(),
                    message,
                },
                prover: None,
                duration: Duration::ZERO,
                fingerprint: None,
            });
        }
        return report;
    }
    let mut duration = prepared.front_end;
    for (sequent_index, sequent) in prepared.sequents.iter().enumerate() {
        if sequent.is_trivially_valid() {
            report.trivial_sequents += 1;
            report.proved_sequents += 1;
            report.total_sequents += 1;
            *report
                .prover_counts
                .entry("trivial".to_string())
                .or_insert(0) += 1;
            continue;
        }
        report.total_sequents += 1;
        let answer = match answers.next() {
            Some((index, answer)) if index == sequent_index => answer,
            _ => unreachable!("every non-trivial sequent has exactly one answer"),
        };
        match &answer.outcome {
            Outcome::Proved => {
                report.proved_sequents += 1;
                if let Some(prover) = &answer.prover {
                    *report.prover_counts.entry(prover.clone()).or_insert(0) += 1;
                }
            }
            Outcome::Crashed { .. } => report.crashed_sequents += 1,
            Outcome::Skipped(_) => report.skipped_sequents += 1,
            Outcome::Unknown => {}
        }
        report.retries += answer.retries as usize;
        if answer.cached {
            report.cache_hits += 1;
        }
        for (stage, stage_duration) in &answer.stage_durations {
            *report
                .stage_durations
                .entry(stage.clone())
                .or_insert(std::time::Duration::ZERO) += *stage_duration;
        }
        duration += answer.duration;
        if options.record_sequents {
            report.sequents.push(SequentReport {
                name: sequent.name.clone(),
                goal_label: sequent.goal_label.clone(),
                proved: answer.outcome.is_proved(),
                outcome: answer.outcome.clone(),
                prover: answer.prover.clone(),
                duration: answer.duration,
                fingerprint: answer.fingerprint.map(Fingerprint::as_u128),
            });
        }
    }
    // With sequents proved concurrently, per-method wall-clock is not well
    // defined; the report carries front-end time plus summed prover time,
    // which is comparable across worker counts.
    report.duration = duration;
    report
}

/// Builds the prover query for one sequent, applying the `from`-clause
/// assumption selection.
fn sequent_query(sequent: &Sequent, env: &ipl_logic::SortEnv, options: &VerifyOptions) -> Query {
    let assumptions: Vec<Labeled> = if options.use_from_clauses {
        sequent
            .selected_assumptions()
            .into_iter()
            .cloned()
            .collect()
    } else {
        sequent.assumptions.clone()
    };
    Query::new(assumptions, sequent.goal.clone(), env.clone())
}

/// Maps `f` over `items` on a scoped worker pool of at most `jobs` threads.
///
/// Workers claim indices from a shared atomic cursor and write each result
/// into its own slot, so the output order equals the input order no matter
/// how the items were scheduled.  `jobs <= 1` (or a single item) runs inline
/// without spawning.
///
/// Every `f` call runs inside a panic-containment boundary
/// ([`ipl_provers::containment`]): a panicking item resolves to
/// `recover(item, message)` instead of unwinding, so the worker thread
/// survives and keeps claiming work — a crash degrades one slot's result,
/// never the pool's parallelism.  (`recover` itself must not panic.)
fn parallel_map<'a, T: Sync, R: Send>(
    jobs: usize,
    items: &'a [T],
    f: impl Fn(&'a T) -> R + Sync,
    recover: impl Fn(&'a T, String) -> R + Sync,
) -> Vec<R> {
    let run = |item: &'a T| match containment::contain(|| f(item)) {
        Ok(result) => result,
        Err(message) => recover(item, message),
    };
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(run).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    break;
                };
                let result = run(item);
                *slots[index].lock().expect("worker slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
// The free-function shims must keep passing their historical tests.
#[allow(deprecated)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
        module Counter {
          var value: int;
          specvar positive: bool;
          vardef positive = "0 < value";
          invariant NonNeg: "0 <= value";

          method increment() returns (result: int)
            modifies value, positive
            ensures "value = old(value) + 1 & result = value"
          {
            value := value + 1;
            result := value;
          }

          method add(amount: int)
            requires "0 <= amount"
            modifies value, positive
            ensures "value = old(value) + amount"
          {
            var i: int := 0;
            while (i < amount)
              invariant "0 <= i & i <= amount & value = old(value) + i"
            {
              call increment();
              i := i + 1;
            }
          }
        }
    "#;

    #[test]
    fn verifies_a_simple_module() {
        let report = verify_source(COUNTER, &VerifyOptions::default()).unwrap();
        assert_eq!(report.module_name, "Counter");
        assert_eq!(report.methods.len(), 2);
        for method in &report.methods {
            assert!(
                method.fully_proved(),
                "{} left {} of {} sequents unproved",
                method.name,
                method.total_sequents - method.proved_sequents,
                method.total_sequents
            );
        }
        assert!(report.fully_proved());
        assert!(report.total_sequents() >= report.methods.len());
        assert!(report.jobs >= 1);
    }

    #[test]
    fn failing_postcondition_is_reported() {
        let source = r#"
            module Broken {
              var value: int;
              method bad()
                modifies value
                ensures "value = 1"
              {
                value := 2;
              }
            }
        "#;
        let report = verify_source(source, &VerifyOptions::default()).unwrap();
        assert!(!report.fully_proved());
        let method = &report.methods[0];
        assert!(method.proved_sequents < method.total_sequents);
    }

    #[test]
    fn parse_errors_are_propagated() {
        assert!(verify_source("module {", &VerifyOptions::default()).is_err());
    }

    #[test]
    fn proof_constructs_can_be_stripped() {
        let source = r#"
            module Notes {
              var x: int;
              method m()
                modifies x
                ensures "x = 1"
              {
                x := 1;
                note Obvious: "x = 1";
              }
            }
        "#;
        let with = verify_source(source, &VerifyOptions::default()).unwrap();
        let without = verify_source(source, &VerifyOptions::without_proof_constructs()).unwrap();
        assert!(with.methods[0].counts.note == 1);
        assert!(without.methods[0].counts.note == 0);
        assert!(with.methods[0].total_sequents > without.methods[0].total_sequents);
        assert!(without.fully_proved());
    }

    #[test]
    fn job_counts_do_not_change_results() {
        // Cache off so the 4-thread run drives the provers concurrently
        // rather than replaying the sequential run's cached answers.
        let uncached = ProverConfig {
            use_cache: false,
            ..ProverConfig::default()
        };
        let sequential = verify_source(
            COUNTER,
            &VerifyOptions {
                config: uncached,
                jobs: 1,
                ..VerifyOptions::default()
            },
        )
        .unwrap();
        let parallel = verify_source(
            COUNTER,
            &VerifyOptions {
                config: uncached,
                jobs: 4,
                ..VerifyOptions::default()
            },
        )
        .unwrap();
        assert_eq!(sequential.normalized(), parallel.normalized());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let no_crash =
            |_: &usize, message: String| -> usize { unreachable!("unexpected crash: {message}") };
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(7, &items, |&x| x * 2, no_crash);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let inline = parallel_map(1, &items, |&x| x * 2, no_crash);
        assert_eq!(doubled, inline);
    }

    #[test]
    fn parallel_map_contains_worker_panics_and_keeps_the_pool_alive() {
        let items: Vec<usize> = (0..64).collect();
        let results = parallel_map(
            4,
            &items,
            |&x| {
                if x % 7 == 0 {
                    panic!("poison item {x}");
                }
                x * 2
            },
            |&x, message| {
                assert_eq!(message, format!("poison item {x}"));
                usize::MAX
            },
        );
        // Every slot is filled: the crashing items resolved to the recovery
        // value and every other item was still processed.
        for (x, result) in items.iter().zip(&results) {
            if x % 7 == 0 {
                assert_eq!(*result, usize::MAX);
            } else {
                assert_eq!(*result, x * 2);
            }
        }
    }

    #[test]
    fn expired_module_deadline_returns_a_partial_report() {
        let options = VerifyOptions {
            module_deadline: Some(Duration::ZERO),
            config: ProverConfig {
                use_cache: false,
                ..ProverConfig::default()
            },
            ..VerifyOptions::default()
        };
        let report = verify_source(COUNTER, &options).unwrap();
        assert!(!report.fully_proved());
        assert_eq!(
            report.skipped_sequents(),
            report.total_sequents()
                - report
                    .methods
                    .iter()
                    .map(|m| m.trivial_sequents)
                    .sum::<usize>(),
            "every dispatched sequent must be deadline-skipped"
        );
        assert_eq!(report.crashed_sequents(), 0);
        for method in &report.methods {
            for sequent in &method.sequents {
                assert!(matches!(
                    sequent.outcome,
                    Outcome::Skipped(ipl_provers::SkipReason::DeadlineExceeded)
                ));
            }
        }
    }

    #[test]
    fn generous_module_deadline_changes_nothing() {
        let config = ProverConfig {
            use_cache: false,
            ..ProverConfig::default()
        };
        let plain = verify_source(
            COUNTER,
            &VerifyOptions {
                config,
                ..VerifyOptions::default()
            },
        )
        .unwrap();
        let budgeted = verify_source(
            COUNTER,
            &VerifyOptions {
                config,
                module_deadline: Some(Duration::from_secs(3600)),
                ..VerifyOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plain.normalized(), budgeted.normalized());
    }
}
