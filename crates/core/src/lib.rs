//! # `ipl-core` — the verification driver
//!
//! This crate ties the pipeline of the paper together:
//!
//! 1. parse an annotated module (`ipl-lang`),
//! 2. lower each method to extended guarded commands,
//! 3. translate to simple guarded commands (Figures 6 and 8 via `ipl-gcl`),
//! 4. generate the verification condition by weakest liberal preconditions
//!    (Figure 5) and split it into labelled sequents (Figure 7),
//! 5. dispatch every sequent to the integrated prover cascade
//!    (`ipl-provers`), honouring `from`-clause assumption selection,
//! 6. collect the per-method and per-module statistics reported in
//!    Tables 1 and 2 of the paper.
//!
//! The two public entry points are [`verify_module`] (on a parsed module) and
//! [`verify_source`] (on source text).  [`VerifyOptions::without_proof_constructs`]
//! reproduces the "Without Proof Language Constructs" configuration of
//! Table 2 by stripping every proof statement before verification.

pub mod report;

use ipl_gcl::split::{split_all, Sequent};
use ipl_gcl::translate::{translate_ext, TranslateCtx};
use ipl_gcl::wlp::vc_of;
use ipl_lang::lower::{lower_module, LoweredMethod};
use ipl_lang::Module;
use ipl_provers::{Cascade, Outcome, ProverConfig, Query};
pub use report::{MethodReport, ModuleReport, SequentReport};
use std::time::Instant;

/// Options controlling a verification run.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Prover budgets.
    pub config: ProverConfig,
    /// When `false`, every integrated proof language construct is stripped
    /// before verification (the Table 2 baseline configuration).
    pub use_proof_constructs: bool,
    /// When `false`, `from` clauses are ignored and the provers always see
    /// the full assumption base (used by the ablation benchmarks).
    pub use_from_clauses: bool,
    /// Record one [`SequentReport`] per sequent (disable to save memory in
    /// benchmarks).
    pub record_sequents: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            config: ProverConfig::default(),
            use_proof_constructs: true,
            use_from_clauses: true,
            record_sequents: true,
        }
    }
}

impl VerifyOptions {
    /// The Table 2 baseline: all proof language constructs removed.
    pub fn without_proof_constructs() -> Self {
        VerifyOptions {
            use_proof_constructs: false,
            ..Self::default()
        }
    }

    /// Ablation: keep the proof constructs but ignore `from` clauses.
    pub fn ignoring_from_clauses() -> Self {
        VerifyOptions {
            use_from_clauses: false,
            ..Self::default()
        }
    }
}

/// Verifies a module from source text.
///
/// # Errors
///
/// Returns an error string when parsing or lowering fails.
pub fn verify_source(source: &str, options: &VerifyOptions) -> Result<ModuleReport, String> {
    let module = ipl_lang::parse_module(source).map_err(|e| e.to_string())?;
    verify_module(&module, options)
}

/// Verifies a parsed module.
///
/// # Errors
///
/// Returns an error string when lowering fails.
pub fn verify_module(module: &Module, options: &VerifyOptions) -> Result<ModuleReport, String> {
    let lowered = lower_module(module).map_err(|e| e.to_string())?;
    let cascade = Cascade::standard(options.config);
    let mut report = ModuleReport::new(&lowered.name, module);
    for method in &lowered.methods {
        report
            .methods
            .push(verify_method(method, &cascade, options));
    }
    Ok(report)
}

/// Verifies one lowered method.
pub fn verify_method(
    method: &LoweredMethod,
    cascade: &Cascade,
    options: &VerifyOptions,
) -> MethodReport {
    let start = Instant::now();
    let command = if options.use_proof_constructs {
        method.command.clone()
    } else {
        method.command.strip_proofs()
    };
    let mut ctx = TranslateCtx::new();
    let simple = translate_ext(&command, &mut ctx);
    let vc = vc_of(&simple);
    let sequents = split_all(&vc);

    let mut report = MethodReport::new(&method.name);
    report.counts = if options.use_proof_constructs {
        method.counts
    } else {
        command.count_constructs()
    };
    for sequent in &sequents {
        if sequent.is_trivially_valid() {
            report.trivial_sequents += 1;
            report.proved_sequents += 1;
            report.total_sequents += 1;
            *report
                .prover_counts
                .entry("trivial".to_string())
                .or_insert(0) += 1;
            continue;
        }
        report.total_sequents += 1;
        let answer = cascade.prove(&sequent_query(sequent, method, options));
        if answer.outcome == Outcome::Proved {
            report.proved_sequents += 1;
            if let Some(prover) = &answer.prover {
                *report.prover_counts.entry(prover.clone()).or_insert(0) += 1;
            }
        }
        for (stage, duration) in &answer.stage_durations {
            *report
                .stage_durations
                .entry(stage.clone())
                .or_insert(std::time::Duration::ZERO) += *duration;
        }
        if options.record_sequents {
            report.sequents.push(SequentReport {
                name: sequent.name.clone(),
                goal_label: sequent.goal_label.clone(),
                proved: answer.outcome == Outcome::Proved,
                prover: answer.prover.clone(),
                duration: answer.duration,
            });
        }
    }
    report.duration = start.elapsed();
    report
}

/// Builds the prover query for one sequent, applying the `from`-clause
/// assumption selection.
fn sequent_query(sequent: &Sequent, method: &LoweredMethod, options: &VerifyOptions) -> Query {
    let assumptions = if options.use_from_clauses {
        sequent
            .selected_assumptions()
            .into_iter()
            .cloned()
            .collect()
    } else {
        sequent.assumptions.clone()
    };
    Query::new(assumptions, sequent.goal.clone(), method.env.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
        module Counter {
          var value: int;
          specvar positive: bool;
          vardef positive = "0 < value";
          invariant NonNeg: "0 <= value";

          method increment() returns (result: int)
            modifies value, positive
            ensures "value = old(value) + 1 & result = value"
          {
            value := value + 1;
            result := value;
          }

          method add(amount: int)
            requires "0 <= amount"
            modifies value, positive
            ensures "value = old(value) + amount"
          {
            var i: int := 0;
            while (i < amount)
              invariant "0 <= i & i <= amount & value = old(value) + i"
            {
              call increment();
              i := i + 1;
            }
          }
        }
    "#;

    #[test]
    fn verifies_a_simple_module() {
        let report = verify_source(COUNTER, &VerifyOptions::default()).unwrap();
        assert_eq!(report.module_name, "Counter");
        assert_eq!(report.methods.len(), 2);
        for method in &report.methods {
            assert!(
                method.fully_proved(),
                "{} left {} of {} sequents unproved",
                method.name,
                method.total_sequents - method.proved_sequents,
                method.total_sequents
            );
        }
        assert!(report.fully_proved());
        assert!(report.total_sequents() >= report.methods.len());
    }

    #[test]
    fn failing_postcondition_is_reported() {
        let source = r#"
            module Broken {
              var value: int;
              method bad()
                modifies value
                ensures "value = 1"
              {
                value := 2;
              }
            }
        "#;
        let report = verify_source(source, &VerifyOptions::default()).unwrap();
        assert!(!report.fully_proved());
        let method = &report.methods[0];
        assert!(method.proved_sequents < method.total_sequents);
    }

    #[test]
    fn parse_errors_are_propagated() {
        assert!(verify_source("module {", &VerifyOptions::default()).is_err());
    }

    #[test]
    fn proof_constructs_can_be_stripped() {
        let source = r#"
            module Notes {
              var x: int;
              method m()
                modifies x
                ensures "x = 1"
              {
                x := 1;
                note Obvious: "x = 1";
              }
            }
        "#;
        let with = verify_source(source, &VerifyOptions::default()).unwrap();
        let without = verify_source(source, &VerifyOptions::without_proof_constructs()).unwrap();
        assert!(with.methods[0].counts.note == 1);
        assert!(without.methods[0].counts.note == 0);
        assert!(with.methods[0].total_sequents > without.methods[0].total_sequents);
        assert!(without.fully_proved());
    }
}
