//! Verification reports: the per-sequent, per-method and per-module
//! statistics from which the paper's tables are regenerated.

use ipl_gcl::cmd::ConstructCounts;
use ipl_lang::Module;
use ipl_provers::Outcome;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Outcome of one sequent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequentReport {
    /// Unique sequent name.
    pub name: String,
    /// Label of the originating obligation (e.g. `Postcondition`).
    pub goal_label: String,
    /// Whether some prover discharged it.
    pub proved: bool,
    /// Full outcome, distinguishing an honest `Unknown` from a quarantined
    /// crash or a deadline skip (`proved` stays in sync with
    /// `outcome.is_proved()`).
    pub outcome: Outcome,
    /// Which prover discharged it.
    pub prover: Option<String>,
    /// Time spent on this sequent across the cascade.
    pub duration: Duration,
    /// Raw 128-bit content fingerprint of the dispatched query (present when
    /// the proof cache was enabled).  `verify_module_incremental` matches
    /// this against the next run's fingerprints to decide which sequents can
    /// replay; it is excluded from [`ModuleReport::normalized`] like every
    /// other non-semantic field.
    pub fingerprint: Option<u128>,
}

/// Outcome of one method.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MethodReport {
    /// Method name.
    pub name: String,
    /// Number of non-trivial plus trivial sequents.
    pub total_sequents: usize,
    /// Number of sequents discharged.
    pub proved_sequents: usize,
    /// Number of sequents discharged syntactically during splitting.
    pub trivial_sequents: usize,
    /// Proof-construct counts (Table 1 columns).
    pub counts: ConstructCounts,
    /// Wall-clock verification time for the method.
    pub duration: Duration,
    /// Sequents discharged per cascade stage (prover name -> count).
    pub prover_counts: BTreeMap<String, usize>,
    /// Wall-clock spent per cascade stage across all sequents of the method
    /// (prover name -> total), including stages that failed to prove.
    pub stage_durations: BTreeMap<String, Duration>,
    /// Sequents answered from the content-addressed proof cache instead of a
    /// prover run (each still counts toward `proved_sequents`, attributed to
    /// the prover that originally discharged it).
    pub cache_hits: usize,
    /// Sequents quarantined because a prover stage (or the driver) panicked;
    /// counted in `total_sequents` but never in `proved_sequents`.
    pub crashed_sequents: usize,
    /// Sequents never dispatched because the module deadline had passed.
    pub skipped_sequents: usize,
    /// Budget-escalation retries run across the method's sequents (0 unless
    /// [`ipl_provers::RetryPolicy`] is enabled).
    pub retries: usize,
    /// Per-sequent details (when recording is enabled).
    pub sequents: Vec<SequentReport>,
}

impl MethodReport {
    /// Creates an empty report for the named method.
    pub fn new(name: &str) -> Self {
        MethodReport {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// `true` when every sequent of the method was proved.
    pub fn fully_proved(&self) -> bool {
        self.proved_sequents == self.total_sequents
    }

    /// The sequents that failed (empty unless recording was enabled).
    pub fn failed_sequents(&self) -> Vec<&SequentReport> {
        self.sequents.iter().filter(|s| !s.proved).collect()
    }
}

/// Outcome of a whole module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModuleReport {
    /// Module name.
    pub module_name: String,
    /// Number of methods in the module.
    pub method_count: usize,
    /// Number of executable statements in the module (Table 1).
    pub statement_count: usize,
    /// Number of specification variables (Table 1).
    pub specvar_count: usize,
    /// Number of class invariants (Table 1).
    pub invariant_count: usize,
    /// Worker threads the verification driver used.
    pub jobs: usize,
    /// Per-method reports.
    pub methods: Vec<MethodReport>,
}

impl ModuleReport {
    /// Creates a report shell with the module-level statistics filled in.
    pub fn new(name: &str, module: &Module) -> Self {
        ModuleReport {
            module_name: name.to_string(),
            method_count: module.methods.len(),
            statement_count: module.statement_count(),
            specvar_count: module.specvars.len(),
            invariant_count: module.invariants.len(),
            jobs: 1,
            methods: Vec::new(),
        }
    }

    /// `true` when every method verified completely.
    pub fn fully_proved(&self) -> bool {
        self.methods.iter().all(MethodReport::fully_proved)
    }

    /// Number of methods whose every sequent was proved.
    pub fn methods_verified(&self) -> usize {
        self.methods.iter().filter(|m| m.fully_proved()).count()
    }

    /// Total number of sequents across all methods.
    pub fn total_sequents(&self) -> usize {
        self.methods.iter().map(|m| m.total_sequents).sum()
    }

    /// Total number of proved sequents across all methods.
    pub fn proved_sequents(&self) -> usize {
        self.methods.iter().map(|m| m.proved_sequents).sum()
    }

    /// Total verification time.
    pub fn total_duration(&self) -> Duration {
        self.methods.iter().map(|m| m.duration).sum()
    }

    /// Total proof-cache hits across all methods.
    pub fn cache_hits(&self) -> usize {
        self.methods.iter().map(|m| m.cache_hits).sum()
    }

    /// Total sequents quarantined by a contained crash.
    pub fn crashed_sequents(&self) -> usize {
        self.methods.iter().map(|m| m.crashed_sequents).sum()
    }

    /// Total sequents skipped because the module deadline passed.
    pub fn skipped_sequents(&self) -> usize {
        self.methods.iter().map(|m| m.skipped_sequents).sum()
    }

    /// Total budget-escalation retries across all methods.
    pub fn retries(&self) -> usize {
        self.methods.iter().map(|m| m.retries).sum()
    }

    /// A canonical rendering of everything *semantic* in the report — module
    /// statistics, per-method sequent outcomes, per-sequent prover
    /// attribution — excluding wall-clock timings and cache-hit counters
    /// (which legitimately vary between runs and worker counts).  Two runs of
    /// the same module under the same budgets must produce byte-identical
    /// normalized reports regardless of `jobs`; the determinism suite
    /// asserts exactly that.
    pub fn normalized(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "module {} methods={} statements={} specvars={} invariants={}\n",
            self.module_name,
            self.method_count,
            self.statement_count,
            self.specvar_count,
            self.invariant_count,
        ));
        for method in &self.methods {
            out.push_str(&format!(
                "method {} total={} proved={} trivial={} counts={:?}\n",
                method.name,
                method.total_sequents,
                method.proved_sequents,
                method.trivial_sequents,
                method.counts,
            ));
            for (prover, count) in &method.prover_counts {
                out.push_str(&format!("  prover {prover} {count}\n"));
            }
            for sequent in &method.sequents {
                out.push_str(&format!(
                    "  sequent {} [{}] proved={} by={} outcome={}\n",
                    sequent.name,
                    sequent.goal_label,
                    sequent.proved,
                    sequent.prover.as_deref().unwrap_or("-"),
                    sequent.outcome.tag(),
                ));
            }
        }
        out
    }

    /// Sequents discharged per cascade stage, aggregated over all methods.
    pub fn prover_counts(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for method in &self.methods {
            for (prover, count) in &method.prover_counts {
                *out.entry(prover.clone()).or_insert(0) += count;
            }
        }
        out
    }

    /// Wall-clock per cascade stage, aggregated over all methods.
    pub fn stage_durations(&self) -> BTreeMap<String, Duration> {
        let mut out = BTreeMap::new();
        for method in &self.methods {
            for (stage, duration) in &method.stage_durations {
                *out.entry(stage.clone()).or_insert(Duration::ZERO) += *duration;
            }
        }
        out
    }

    /// Aggregated proof-construct counts (Table 1 row for this module).
    pub fn total_counts(&self) -> ConstructCounts {
        let mut counts = ConstructCounts::default();
        for m in &self.methods {
            counts.add(&m.counts);
        }
        counts
    }

    /// A plain-text summary of the verification run.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "module {}: {}/{} methods verified, {}/{} sequents proved in {:.2?}\n",
            self.module_name,
            self.methods_verified(),
            self.method_count,
            self.proved_sequents(),
            self.total_sequents(),
            self.total_duration(),
        ));
        for method in &self.methods {
            out.push_str(&format!(
                "  {:<24} {:>3}/{:<3} sequents  {:>5} trivial  {:.2?}\n",
                method.name,
                method.proved_sequents,
                method.total_sequents,
                method.trivial_sequents,
                method.duration,
            ));
            for failed in method.failed_sequents() {
                match &failed.outcome {
                    Outcome::Crashed { stage, message } => out.push_str(&format!(
                        "    CRASHED: {} [{}] in {stage}: {message}\n",
                        failed.name, failed.goal_label
                    )),
                    Outcome::Skipped(reason) => out.push_str(&format!(
                        "    SKIPPED: {} [{}] ({reason:?})\n",
                        failed.name, failed.goal_label
                    )),
                    _ => out.push_str(&format!(
                        "    UNPROVED: {} [{}]\n",
                        failed.name, failed.goal_label
                    )),
                }
            }
        }
        let crashed = self.crashed_sequents();
        let skipped = self.skipped_sequents();
        if crashed + skipped > 0 {
            out.push_str(&format!(
                "  faults: {crashed} crashed, {skipped} deadline-skipped (quarantined, not verdicts)\n",
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_report_counts() {
        let mut report = MethodReport::new("m");
        report.total_sequents = 3;
        report.proved_sequents = 2;
        assert!(!report.fully_proved());
        report.proved_sequents = 3;
        assert!(report.fully_proved());
    }

    #[test]
    fn module_report_aggregation() {
        let module = ipl_lang::parse_module(
            "module M { var x: int; method a() { x := 1; } method b() { x := 2; } }",
        )
        .unwrap();
        let mut report = ModuleReport::new("M", &module);
        assert_eq!(report.method_count, 2);
        assert_eq!(report.statement_count, 2);
        let mut a = MethodReport::new("a");
        a.total_sequents = 2;
        a.proved_sequents = 2;
        let mut b = MethodReport::new("b");
        b.total_sequents = 4;
        b.proved_sequents = 3;
        report.methods = vec![a, b];
        assert_eq!(report.methods_verified(), 1);
        assert_eq!(report.total_sequents(), 6);
        assert_eq!(report.proved_sequents(), 5);
        assert!(!report.fully_proved());
        assert!(report.render().contains("1/2 methods"));
    }
}
