//! Long-lived verification sessions.
//!
//! A [`Session`] owns everything worth keeping warm between verification
//! requests: the prover cascade built for one [`VerifyOptions`]
//! (crate::VerifyOptions), the persistent proof store handle (opened and
//! scanned **once**, not per call), and the previous reports keyed by module
//! path for incremental replay.  `ipl serve` holds one `Session` for its
//! whole lifetime; the deprecated free functions construct a throwaway one
//! per call, which is exactly the old cost model.
//!
//! Requests are plain values ([`Request`]) and answers carry the report plus
//! session-level telemetry ([`Response`]), so the same surface serves the
//! CLI, the daemon protocol, and future LSP/WASM adapters.

use crate::{drive, ModuleReport, VerifyError, VerifyOptions};
use ipl_lang::Module;
use ipl_provers::cache::ProofCache;
use ipl_provers::cache_store::{CompactStats, StoreHandle};
use ipl_provers::Cascade;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One verification request against a [`Session`].
///
/// Construct with [`Request::new`] and refine with the builder methods; the
/// struct is `#[non_exhaustive]` so new knobs can be added without breaking
/// callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Request {
    /// The annotated module source text.
    pub source: String,
    /// Key for the session's previous-report table (defaults to the parsed
    /// module name).  A daemon serving many files passes the file path here.
    pub path: Option<String>,
    /// Replay fingerprint-unchanged sequents from this session's previous
    /// report for the same key (see
    /// [`verify_module_incremental`](crate::verify_module_incremental)).
    pub incremental: bool,
    /// Wall-clock budget for this request, overriding
    /// [`VerifyOptions::module_deadline`] (crate::VerifyOptions).
    pub deadline: Option<Duration>,
    /// Worker threads for this request, overriding `VerifyOptions::jobs`.
    pub jobs: Option<usize>,
}

impl Request {
    /// A request to verify `source` under the session's defaults.
    pub fn new(source: impl Into<String>) -> Request {
        Request {
            source: source.into(),
            path: None,
            incremental: false,
            deadline: None,
            jobs: None,
        }
    }

    /// Keys this request's report under `path` instead of the module name.
    #[must_use]
    pub fn with_path(mut self, path: impl Into<String>) -> Request {
        self.path = Some(path.into());
        self
    }

    /// Enables (or disables) incremental replay against the session's
    /// previous report for the same key.
    #[must_use]
    pub fn with_incremental(mut self, incremental: bool) -> Request {
        self.incremental = incremental;
        self
    }

    /// Sets a wall-clock budget for this request.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Request {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the worker count for this request.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Request {
        self.jobs = Some(jobs);
        self
    }
}

/// A successful answer to one [`Request`]: the report plus the session-level
/// telemetry the daemon protocol exposes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Response {
    /// The verification report (partial when the deadline expired; prover
    /// crashes are quarantined inside it, never surfaced as errors).
    pub report: ModuleReport,
    /// Wall-clock for this request (parse through report assembly).
    pub wall: Duration,
    /// Times the on-disk store log has been scanned over the session's whole
    /// life.  Stays at most 1 — the warm-request guarantee.
    pub store_preloads: usize,
    /// Distinct fingerprints the store knows to be on disk.
    pub store_entries: usize,
    /// Entries this request appended to the store.
    pub store_appended: usize,
}

/// Cumulative session telemetry (the daemon's `stats` frame).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SessionStats {
    /// Requests verified (successfully) so far.
    pub requests: usize,
    /// Distinct fingerprints the store knows to be on disk.
    pub store_entries: usize,
    /// Times the on-disk log was scanned into the in-memory cache (0 or 1).
    pub store_preloads: usize,
    /// Total entries appended to the store by this session.
    pub store_appended: usize,
}

/// Long-lived verification state: one cascade, one store handle, one
/// previous-report table.  Shared across threads (`&Session` is enough to
/// verify), so a daemon can serve concurrent connections from one session.
pub struct Session {
    options: VerifyOptions,
    cascade: Cascade,
    prover_names: Vec<&'static str>,
    /// The persistent store, opened (and its log scanned) once at session
    /// construction.  `None` when no cache dir is configured, the in-memory
    /// cache is off, or the store could not be opened (degraded with a
    /// warning — persistence is an accelerator, not a dependency).
    store: Mutex<Option<StoreHandle>>,
    /// Previous reports keyed by request path (or module name), for
    /// incremental replay.
    previous: Mutex<HashMap<String, ModuleReport>>,
    requests: AtomicUsize,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("options", &self.options)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Session {
    /// Builds a session for `options`, constructing the cascade and opening
    /// (but not yet replaying) the persistent store.
    pub fn new(options: VerifyOptions) -> Session {
        let cascade = Cascade::standard(options.config);
        let prover_names = cascade.prover_names();
        let store = open_store(&options, &prover_names);
        Session {
            options,
            cascade,
            prover_names,
            store: Mutex::new(store),
            previous: Mutex::new(HashMap::new()),
            requests: AtomicUsize::new(0),
        }
    }

    /// The options this session was built with.
    pub fn options(&self) -> &VerifyOptions {
        &self.options
    }

    /// Verifies one request: parse, optionally replay against the previous
    /// report for the same key, prove, persist, remember.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] when parsing or lowering fails.  Prover
    /// failures (unproved, crashed, deadline-skipped sequents) are *not*
    /// errors; they are recorded inside the report.
    pub fn verify(&self, request: &Request) -> Result<Response, VerifyError> {
        let start = Instant::now();
        let module = ipl_lang::parse_module(&request.source)?;
        let key = request.path.clone().unwrap_or_else(|| module.name.clone());
        let previous = if request.incremental {
            self.previous
                .lock()
                .expect("previous-report table poisoned")
                .get(&key)
                .cloned()
        } else {
            None
        };
        let mut options = self.options.clone();
        if let Some(jobs) = request.jobs {
            options.jobs = jobs;
        }
        if let Some(deadline) = request.deadline {
            options.module_deadline = Some(deadline);
        }
        let (report, appended) = self.run(&module, &options, previous.as_ref())?;
        if options.record_sequents {
            self.previous
                .lock()
                .expect("previous-report table poisoned")
                .insert(key, report.clone());
        }
        let stats = self.stats();
        Ok(Response {
            report,
            wall: start.elapsed(),
            store_preloads: stats.store_preloads,
            store_entries: stats.store_entries,
            store_appended: appended,
        })
    }

    /// Verifies a parsed module under the session's options, optionally
    /// replaying a previous report.  This is the surface the deprecated free
    /// functions shim onto; [`Session::verify`] adds request parsing, option
    /// overrides and the previous-report table on top.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] when lowering fails.
    pub fn verify_module(
        &self,
        module: &Module,
        previous: Option<&ModuleReport>,
    ) -> Result<ModuleReport, VerifyError> {
        self.run(module, &self.options.clone(), previous)
            .map(|(report, _)| report)
    }

    /// Seeds the previous-report table, so later incremental requests for
    /// `key` can replay against `report` (used by benchmark harnesses that
    /// carry reports across sessions).
    pub fn remember(&self, key: impl Into<String>, report: ModuleReport) {
        self.previous
            .lock()
            .expect("previous-report table poisoned")
            .insert(key.into(), report);
    }

    /// The report most recently remembered for `key`.
    pub fn recall(&self, key: &str) -> Option<ModuleReport> {
        self.previous
            .lock()
            .expect("previous-report table poisoned")
            .get(key)
            .cloned()
    }

    /// Compacts the session's persistent store in place: duplicates and
    /// corrupt ranges are dropped via write-to-temp + atomic rename and the
    /// generation stamp is bumped (see
    /// [`CacheStore::compact`](ipl_provers::cache_store::CacheStore::compact)).
    /// The warm index swaps over without a rescan — `store_preloads` stays
    /// at most 1 — and the set of answerable fingerprints is unchanged.
    /// Returns `None` when the session has no store.
    ///
    /// # Errors
    ///
    /// Propagates locking and I/O errors; on error the original log is
    /// untouched.
    pub fn compact_store(&self) -> std::io::Result<Option<CompactStats>> {
        let mut store = self.store.lock().expect("store handle poisoned");
        match store.as_mut() {
            Some(handle) => handle.compact().map(Some),
            None => Ok(None),
        }
    }

    /// Cumulative session telemetry.
    pub fn stats(&self) -> SessionStats {
        let store = self.store.lock().expect("store handle poisoned");
        let mut stats = SessionStats {
            requests: self.requests.load(Ordering::Relaxed),
            ..SessionStats::default()
        };
        if let Some(handle) = store.as_ref() {
            stats.store_entries = handle.store().len();
            stats.store_preloads = handle.preload_count();
            stats.store_appended = handle.appended();
        }
        stats
    }

    /// The full verify path shared by [`Session::verify`] and the shims:
    /// warm the in-memory cache from the store (first call only), drive the
    /// prover waves, persist the freshly proved fingerprints.  Returns the
    /// report and how many entries were appended.
    fn run(
        &self,
        module: &Module,
        options: &VerifyOptions,
        previous: Option<&ModuleReport>,
    ) -> Result<(ModuleReport, usize), VerifyError> {
        {
            let mut store = self.store.lock().expect("store handle poisoned");
            if let Some(handle) = store.as_mut() {
                handle.ensure_preloaded(ProofCache::global());
            }
        }
        let (report, proved) = drive(module, options, previous, &self.cascade, &self.prover_names)?;
        let mut appended = 0;
        if !proved.is_empty() {
            let mut store = self.store.lock().expect("store handle poisoned");
            if let Some(handle) = store.as_mut() {
                match handle.append_new(&proved) {
                    Ok(count) => appended = count,
                    Err(e) => eprintln!(
                        "warning: could not persist proofs to {}: {e}",
                        handle.store().path().display()
                    ),
                }
            }
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        Ok((report, appended))
    }
}

/// Opens the persistent store when `cache_dir` is configured and the
/// in-memory cache is on.  A store that cannot be opened (permissions, disk)
/// degrades to cache-only verification with a warning.
fn open_store(options: &VerifyOptions, prover_names: &[&'static str]) -> Option<StoreHandle> {
    let dir = options.cache_dir.as_ref()?;
    if !options.config.use_cache {
        return None;
    }
    match StoreHandle::open(dir, &options.config, prover_names) {
        Ok(handle) => Some(handle),
        Err(e) => {
            eprintln!("warning: proof store in {} unavailable: {e}", dir.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VerifyError;

    const COUNTER: &str = r#"
        module Counter {
          var value: int;
          invariant NonNeg: "0 <= value";

          method increment() returns (result: int)
            modifies value
            ensures "value = old(value) + 1 & result = value"
          {
            value := value + 1;
            result := value;
          }
        }
    "#;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ipl-session-test-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn a_session_verifies_requests() {
        let session = Session::new(VerifyOptions::default());
        let response = session.verify(&Request::new(COUNTER)).unwrap();
        assert!(response.report.fully_proved());
        assert_eq!(response.report.module_name, "Counter");
        assert_eq!(session.stats().requests, 1);
        // No cache dir: the store never preloads or appends.
        assert_eq!(response.store_preloads, 0);
        assert_eq!(response.store_appended, 0);
    }

    #[test]
    fn parse_errors_come_back_typed() {
        let session = Session::new(VerifyOptions::default());
        let err = session.verify(&Request::new("module {")).unwrap_err();
        assert!(matches!(err, VerifyError::Parse { .. }));
        assert_eq!(err.kind(), "parse");
    }

    #[test]
    fn the_store_is_scanned_once_per_session() {
        let dir = temp_dir("scan-once");
        let session = Session::new(VerifyOptions::default().with_cache_dir(&dir));
        let first = session.verify(&Request::new(COUNTER)).unwrap();
        assert_eq!(first.store_preloads, 1);
        let second = session.verify(&Request::new(COUNTER)).unwrap();
        assert_eq!(second.store_preloads, 1, "no second scan of the log");
        assert_eq!(second.store_appended, 0, "nothing new to persist");
        assert!(second.store_entries >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incremental_requests_replay_the_previous_report() {
        let session = Session::new(VerifyOptions::default());
        let cold = session.verify(&Request::new(COUNTER)).unwrap();
        let warm = session
            .verify(&Request::new(COUNTER).with_incremental(true))
            .unwrap();
        assert_eq!(cold.report.normalized(), warm.report.normalized());
        let nontrivial: usize = warm
            .report
            .methods
            .iter()
            .map(|m| m.proved_sequents - m.trivial_sequents)
            .sum();
        assert_eq!(
            warm.report.cache_hits(),
            nontrivial,
            "every non-trivial proved sequent replays from the previous report"
        );
    }

    #[test]
    fn request_overrides_take_effect() {
        // Cache off, or previously proved sequents answer from the global
        // cache even under an expired deadline.
        let uncached = ipl_provers::ProverConfig {
            use_cache: false,
            ..ipl_provers::ProverConfig::default()
        };
        let session = Session::new(VerifyOptions::default().with_config(uncached));
        let response = session
            .verify(
                &Request::new(COUNTER)
                    .with_jobs(1)
                    .with_deadline(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(response.report.jobs, 1);
        assert!(!response.report.fully_proved());
        assert!(response.report.skipped_sequents() > 0);
    }

    #[test]
    fn compaction_keeps_warm_answers_identical() {
        let dir = temp_dir("compact");
        let session = Session::new(VerifyOptions::default().with_cache_dir(&dir));
        let before = session.verify(&Request::new(COUNTER)).unwrap();
        let stats = session
            .compact_store()
            .unwrap()
            .expect("session has a store");
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.entries_after, before.store_entries);
        let after = session.verify(&Request::new(COUNTER)).unwrap();
        assert_eq!(
            before.report.normalized(),
            after.report.normalized(),
            "compaction must not change any answer"
        );
        assert_eq!(after.store_preloads, 1, "no rescan after compaction");
        assert_eq!(after.store_appended, 0);
        assert_eq!(after.store_entries, before.store_entries);
        // A store-less session reports None instead of erroring.
        let bare = Session::new(VerifyOptions::default());
        assert!(bare.compact_store().unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reports_are_remembered_by_path_key() {
        let session = Session::new(VerifyOptions::default());
        session
            .verify(&Request::new(COUNTER).with_path("src/counter.ipl"))
            .unwrap();
        assert!(session.recall("src/counter.ipl").is_some());
        assert!(session.recall("Counter").is_none());
    }
}
