//! The extended guarded command language (Figure 2), the integrated proof
//! language constructs (Figure 3) and the simple guarded command language
//! (Figure 4).

use ipl_logic::{Form, Labeled, Sort};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A named fact reference list — the `from ~h` clause of `assert`/`note`.
pub type FromClause = Option<Vec<String>>;

/// The integrated proof language constructs (Figure 3 of the paper).
///
/// Each variant carries exactly the information required by its translation
/// into simple guarded commands (Figure 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Proof {
    /// Sequential composition `p1 ; p2`.
    Seq(Vec<Proof>),
    /// `assert l:F from ~h` — prove `F` (using only the named facts if a
    /// `from` clause is present) without adding it to the assumption base.
    Assert {
        /// Label of the obligation.
        label: String,
        /// The formula to prove.
        form: Form,
        /// Optional assumption-base restriction.
        from: FromClause,
    },
    /// `note l:F from ~h` — prove `F` and add it to the assumption base.
    Note {
        /// Name under which the fact becomes available.
        label: String,
        /// The formula to prove and assume.
        form: Form,
        /// Optional assumption-base restriction.
        from: FromClause,
    },
    /// `localize in (p ; note l:F)` — prove `F` inside a local assumption
    /// base extended by the intermediate lemmas of `p`, then add only `F`
    /// back to the original assumption base.
    Localize {
        /// The nested proof commands.
        body: Box<Proof>,
        /// Name of the exported fact.
        label: String,
        /// The exported fact.
        form: Form,
    },
    /// `mp l:(F --> G)` — modus ponens: prove `F` and `F --> G`, conclude `G`.
    Mp {
        /// Name of the concluded fact `G`.
        label: String,
        /// The hypothesis `F`.
        hyp: Form,
        /// The conclusion `G`.
        concl: Form,
    },
    /// `assuming lF:F in (p ; note lG:G)` — implication introduction.
    Assuming {
        /// Name of the local hypothesis.
        hyp_label: String,
        /// The hypothesis `F`.
        hyp: Form,
        /// The nested proof of `G` under `F`.
        body: Box<Proof>,
        /// Name of the exported fact `F --> G`.
        concl_label: String,
        /// The conclusion `G`.
        concl: Form,
    },
    /// `cases ~F for l:G` — case analysis: the cases must cover, each case
    /// must imply `G`.
    Cases {
        /// The case formulas `F1 ... Fn`.
        cases: Vec<Form>,
        /// Name of the concluded goal.
        label: String,
        /// The goal `G`.
        goal: Form,
    },
    /// `showedCase i of l : F1 | ... | Fn` — disjunction introduction.
    ShowedCase {
        /// 1-based index of the disjunct that is proved.
        index: usize,
        /// Name of the concluded disjunction.
        label: String,
        /// The disjuncts.
        disjuncts: Vec<Form>,
    },
    /// `byContradiction l:F in p` — prove `F` by assuming `~F` and deriving
    /// `false` in a local assumption base.
    ByContradiction {
        /// Name of the concluded fact.
        label: String,
        /// The fact `F`.
        form: Form,
        /// The nested refutation.
        body: Box<Proof>,
    },
    /// `contradiction l:F` — derive `false` from `F` and `~F`.
    Contradiction {
        /// Diagnostic label.
        label: String,
        /// The contradictory formula.
        form: Form,
    },
    /// `instantiate l:forall ~x.F with ~t` — universal elimination.
    Instantiate {
        /// Name of the instantiated fact.
        label: String,
        /// The universally quantified formula (must be a `Forall`).
        forall: Form,
        /// The instantiation terms, one per bound variable.
        terms: Vec<Form>,
    },
    /// `witness ~t for l:exists ~x.F` — existential introduction.
    Witness {
        /// The witness terms, one per bound variable.
        terms: Vec<Form>,
        /// Name of the concluded existential fact.
        label: String,
        /// The existentially quantified formula (must be an `Exists`).
        exists: Form,
    },
    /// `pickWitness ~x for lF:F in (p ; note lG:G)` — existential elimination.
    PickWitness {
        /// The witness variable names and sorts (the `~x`).
        vars: Vec<(String, Sort)>,
        /// Name of the local hypothesis `F`.
        hyp_label: String,
        /// The constraint `F` (with `~x` free).
        hyp: Form,
        /// The nested proof of `G`.
        body: Box<Proof>,
        /// Name of the exported goal `G`.
        concl_label: String,
        /// The goal `G` (must not contain `~x` free).
        concl: Form,
    },
    /// `pickAny ~x in (p ; note l:G)` — universal introduction.
    PickAny {
        /// The arbitrary variable names and sorts.
        vars: Vec<(String, Sort)>,
        /// The nested proof of `G`.
        body: Box<Proof>,
        /// Name of the exported fact `forall ~x. G`.
        label: String,
        /// The goal `G` (with `~x` free).
        goal: Form,
    },
    /// `induct l:F over n in p` — mathematical induction over `n >= 0`.
    Induct {
        /// Name of the concluded fact `forall n. 0 <= n --> F`.
        label: String,
        /// The induction formula `F` (with `n` free).
        form: Form,
        /// The induction variable.
        var: String,
        /// The nested proof of base case and inductive step.
        body: Box<Proof>,
    },
}

impl Proof {
    /// Builds a `note` without a `from` clause.
    pub fn note(label: impl Into<String>, form: Form) -> Proof {
        Proof::Note {
            label: label.into(),
            form,
            from: None,
        }
    }

    /// Builds a `note` with a `from` clause.
    pub fn note_from(label: impl Into<String>, form: Form, from: Vec<&str>) -> Proof {
        Proof::Note {
            label: label.into(),
            form,
            from: Some(from.into_iter().map(str::to_string).collect()),
        }
    }

    /// Builds an `assert` without a `from` clause.
    pub fn assert(label: impl Into<String>, form: Form) -> Proof {
        Proof::Assert {
            label: label.into(),
            form,
            from: None,
        }
    }

    /// Sequential composition, flattening nested sequences.
    pub fn seq(parts: impl IntoIterator<Item = Proof>) -> Proof {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Proof::Seq(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        if out.len() == 1 {
            out.pop().expect("len checked")
        } else {
            Proof::Seq(out)
        }
    }

    /// Visits this construct and all nested proof constructs.
    pub fn for_each(&self, f: &mut impl FnMut(&Proof)) {
        f(self);
        match self {
            Proof::Seq(parts) => parts.iter().for_each(|p| p.for_each(f)),
            Proof::Localize { body, .. }
            | Proof::Assuming { body, .. }
            | Proof::ByContradiction { body, .. }
            | Proof::PickWitness { body, .. }
            | Proof::PickAny { body, .. }
            | Proof::Induct { body, .. } => body.for_each(f),
            _ => {}
        }
    }
}

/// The extended guarded command language (Figure 2), with the proof language
/// constructs embedded as one alternative (the `p` production of Figure 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Ext {
    /// An embedded proof command.
    Proof(Proof),
    /// `skip`.
    Skip,
    /// Assignment `x := F`.
    Assign(String, Form),
    /// Non-deterministic choice `c1 [] c2`.
    Choice(Box<Ext>, Box<Ext>),
    /// Sequential composition.
    Seq(Vec<Ext>),
    /// Conditional `if (F) c1 else c2`.
    If(Form, Box<Ext>, Box<Ext>),
    /// `loop inv(I) c1 while(F) c2` — `c1` runs before the test on every
    /// iteration, `c2` runs when the test succeeds (Figure 2).
    Loop {
        /// The loop invariant with its label (usually `"LoopInv"`).
        invariant: Labeled,
        /// Commands executed before the loop test.
        before: Box<Ext>,
        /// The loop condition.
        cond: Form,
        /// Commands executed when the condition holds.
        body: Box<Ext>,
    },
    /// `assume l:F`.
    Assume(Labeled),
    /// `assert l:F from ~h` at the command level (used for postconditions,
    /// invariant re-establishment and call preconditions).
    Assert {
        /// The labelled obligation.
        fact: Labeled,
        /// Optional assumption-base restriction.
        from: FromClause,
    },
    /// `havoc ~x suchThat F` (the constraint is optional: plain `havoc ~x`
    /// passes `None`).
    Havoc(Vec<String>, Option<Form>),
    /// The `fix ~x suchThat F in (c ; note l:G)` construct of Appendix B.
    Fix {
        /// The fixed variables and their sorts.
        vars: Vec<(String, Sort)>,
        /// The constraint `F`.
        such_that: Form,
        /// The enclosed (possibly state-changing) command.
        body: Box<Ext>,
        /// Name of the exported fact.
        label: String,
        /// The goal `G`.
        goal: Form,
    },
}

impl Ext {
    /// Sequential composition, flattening nested sequences and dropping skips.
    pub fn seq(parts: impl IntoIterator<Item = Ext>) -> Ext {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Ext::Seq(inner) => out.extend(inner),
                Ext::Skip => {}
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Ext::Skip,
            1 => out.pop().expect("len checked"),
            _ => Ext::Seq(out),
        }
    }

    /// `assume label: form`.
    pub fn assume(label: impl Into<String>, form: Form) -> Ext {
        Ext::Assume(Labeled::new(label, form))
    }

    /// `assert label: form` (no `from` clause).
    pub fn assert(label: impl Into<String>, form: Form) -> Ext {
        Ext::Assert {
            fact: Labeled::new(label, form),
            from: None,
        }
    }

    /// The set of program variables this command may modify (`mod(c)` in the
    /// paper), used by the loop and `fix` translations.
    pub fn modified_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_modified(&mut out);
        out
    }

    fn collect_modified(&self, out: &mut BTreeSet<String>) {
        match self {
            Ext::Assign(x, _) => {
                out.insert(x.clone());
            }
            Ext::Havoc(xs, _) => out.extend(xs.iter().cloned()),
            Ext::Choice(a, b) => {
                a.collect_modified(out);
                b.collect_modified(out);
            }
            Ext::Seq(parts) => parts.iter().for_each(|p| p.collect_modified(out)),
            Ext::If(_, a, b) => {
                a.collect_modified(out);
                b.collect_modified(out);
            }
            Ext::Loop { before, body, .. } => {
                before.collect_modified(out);
                body.collect_modified(out);
            }
            Ext::Fix { body, .. } => body.collect_modified(out),
            Ext::Proof(_) | Ext::Skip | Ext::Assume(_) | Ext::Assert { .. } => {}
        }
    }

    /// Removes every integrated proof language construct, replacing it by
    /// `skip` (and dropping `fix` wrappers while keeping their bodies).  This
    /// is the "without proof language constructs" configuration of Table 2.
    pub fn strip_proofs(&self) -> Ext {
        match self {
            Ext::Proof(_) => Ext::Skip,
            Ext::Skip | Ext::Assign(..) | Ext::Assume(_) | Ext::Assert { .. } | Ext::Havoc(..) => {
                self.clone()
            }
            Ext::Choice(a, b) => {
                Ext::Choice(Box::new(a.strip_proofs()), Box::new(b.strip_proofs()))
            }
            Ext::Seq(parts) => Ext::seq(parts.iter().map(|p| p.strip_proofs())),
            Ext::If(c, a, b) => Ext::If(
                c.clone(),
                Box::new(a.strip_proofs()),
                Box::new(b.strip_proofs()),
            ),
            Ext::Loop {
                invariant,
                before,
                cond,
                body,
            } => Ext::Loop {
                invariant: invariant.clone(),
                before: Box::new(before.strip_proofs()),
                cond: cond.clone(),
                body: Box::new(body.strip_proofs()),
            },
            Ext::Fix { body, .. } => body.strip_proofs(),
        }
    }

    /// Counts the integrated proof language constructs appearing in this
    /// command (Table 1 columns).
    pub fn count_constructs(&self) -> ConstructCounts {
        let mut counts = ConstructCounts::default();
        self.count_into(&mut counts);
        counts
    }

    fn count_into(&self, counts: &mut ConstructCounts) {
        match self {
            Ext::Proof(p) => counts.count_proof(p),
            Ext::Choice(a, b) => {
                a.count_into(counts);
                b.count_into(counts);
            }
            Ext::Seq(parts) => parts.iter().for_each(|p| p.count_into(counts)),
            Ext::If(_, a, b) => {
                a.count_into(counts);
                b.count_into(counts);
            }
            Ext::Loop { before, body, .. } => {
                counts.loop_invariants += 1;
                before.count_into(counts);
                body.count_into(counts);
            }
            Ext::Fix { body, .. } => {
                counts.fix += 1;
                body.count_into(counts);
            }
            _ => {}
        }
    }
}

/// Counts of specification and proof constructs, mirroring the columns of
/// Table 1 in the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstructCounts {
    /// `note` statements (total).
    pub note: usize,
    /// `note` statements that carry a `from` clause.
    pub note_with_from: usize,
    /// `localize` statements.
    pub localize: usize,
    /// `assuming` statements.
    pub assuming: usize,
    /// `mp` statements.
    pub mp: usize,
    /// `pickAny` statements.
    pub pick_any: usize,
    /// `instantiate` statements.
    pub instantiate: usize,
    /// `witness` statements.
    pub witness: usize,
    /// `pickWitness` statements.
    pub pick_witness: usize,
    /// `cases` statements.
    pub cases: usize,
    /// `induct` statements.
    pub induct: usize,
    /// `showedCase` statements.
    pub showed_case: usize,
    /// `byContradiction` statements.
    pub by_contradiction: usize,
    /// `contradiction` statements.
    pub contradiction: usize,
    /// `assert` proof statements.
    pub assert: usize,
    /// `fix` statements (Appendix B extension).
    pub fix: usize,
    /// Loop invariants (one per loop).
    pub loop_invariants: usize,
}

impl ConstructCounts {
    /// Total number of proof statements (excluding loop invariants).
    pub fn total_proof_statements(&self) -> usize {
        self.note
            + self.localize
            + self.assuming
            + self.mp
            + self.pick_any
            + self.instantiate
            + self.witness
            + self.pick_witness
            + self.cases
            + self.induct
            + self.showed_case
            + self.by_contradiction
            + self.contradiction
            + self.assert
            + self.fix
    }

    /// Adds the counts of another value into this one.
    pub fn add(&mut self, other: &ConstructCounts) {
        self.note += other.note;
        self.note_with_from += other.note_with_from;
        self.localize += other.localize;
        self.assuming += other.assuming;
        self.mp += other.mp;
        self.pick_any += other.pick_any;
        self.instantiate += other.instantiate;
        self.witness += other.witness;
        self.pick_witness += other.pick_witness;
        self.cases += other.cases;
        self.induct += other.induct;
        self.showed_case += other.showed_case;
        self.by_contradiction += other.by_contradiction;
        self.contradiction += other.contradiction;
        self.assert += other.assert;
        self.fix += other.fix;
        self.loop_invariants += other.loop_invariants;
    }

    fn count_proof(&mut self, proof: &Proof) {
        proof.for_each(&mut |p| match p {
            Proof::Seq(_) => {}
            Proof::Assert { .. } => self.assert += 1,
            Proof::Note { from, .. } => {
                self.note += 1;
                if from.is_some() {
                    self.note_with_from += 1;
                }
            }
            Proof::Localize { .. } => self.localize += 1,
            Proof::Mp { .. } => self.mp += 1,
            Proof::Assuming { .. } => self.assuming += 1,
            Proof::Cases { .. } => self.cases += 1,
            Proof::ShowedCase { .. } => self.showed_case += 1,
            Proof::ByContradiction { .. } => self.by_contradiction += 1,
            Proof::Contradiction { .. } => self.contradiction += 1,
            Proof::Instantiate { .. } => self.instantiate += 1,
            Proof::Witness { .. } => self.witness += 1,
            Proof::PickWitness { .. } => self.pick_witness += 1,
            Proof::PickAny { .. } => self.pick_any += 1,
            Proof::Induct { .. } => self.induct += 1,
        });
    }
}

/// The simple guarded command language (Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Simple {
    /// `assume l:F`.
    Assume(Labeled),
    /// `assert l:F from ~h`.
    Assert {
        /// The labelled obligation.
        fact: Labeled,
        /// Optional assumption-base restriction.
        from: FromClause,
    },
    /// `havoc ~x`.
    Havoc(Vec<String>),
    /// `skip`.
    Skip,
    /// Non-deterministic choice.
    Choice(Box<Simple>, Box<Simple>),
    /// Sequential composition.
    Seq(Vec<Simple>),
}

impl Simple {
    /// Sequential composition, flattening nested sequences and dropping skips.
    pub fn seq(parts: impl IntoIterator<Item = Simple>) -> Simple {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Simple::Seq(inner) => out.extend(inner),
                Simple::Skip => {}
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Simple::Skip,
            1 => out.pop().expect("len checked"),
            _ => Simple::Seq(out),
        }
    }

    /// `assume label: form`.
    pub fn assume(label: impl Into<String>, form: Form) -> Simple {
        Simple::Assume(Labeled::new(label, form))
    }

    /// `assert label: form` without a `from` clause.
    pub fn assert(label: impl Into<String>, form: Form) -> Simple {
        Simple::Assert {
            fact: Labeled::new(label, form),
            from: None,
        }
    }

    /// `assert label: form from h`.
    pub fn assert_from(label: impl Into<String>, form: Form, from: Vec<String>) -> Simple {
        Simple::Assert {
            fact: Labeled::new(label, form),
            from: Some(from),
        }
    }

    /// Number of `assert` commands contained in this command (a rough measure
    /// of proof-obligation count before splitting).
    pub fn assert_count(&self) -> usize {
        match self {
            Simple::Assert { .. } => 1,
            Simple::Choice(a, b) => a.assert_count() + b.assert_count(),
            Simple::Seq(parts) => parts.iter().map(Simple::assert_count).sum(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;

    fn f(s: &str) -> Form {
        parse_form(s).unwrap()
    }

    #[test]
    fn modified_vars_of_structured_commands() {
        let cmd = Ext::seq(vec![
            Ext::Assign("x".into(), f("x + 1")),
            Ext::If(
                f("x < 10"),
                Box::new(Ext::Assign("y".into(), f("0"))),
                Box::new(Ext::Havoc(vec!["z".into()], None)),
            ),
        ]);
        let mods = cmd.modified_vars();
        assert_eq!(
            mods.into_iter().collect::<Vec<_>>(),
            vec!["x".to_string(), "y".to_string(), "z".to_string()]
        );
    }

    #[test]
    fn proof_commands_do_not_modify_program_state() {
        let cmd = Ext::Proof(Proof::note("L", f("x = 1")));
        assert!(cmd.modified_vars().is_empty());
    }

    #[test]
    fn strip_proofs_removes_only_proof_constructs() {
        let cmd = Ext::seq(vec![
            Ext::Assign("x".into(), f("1")),
            Ext::Proof(Proof::note("L", f("x = 1"))),
            Ext::assert("Post", f("x = 1")),
        ]);
        let stripped = cmd.strip_proofs();
        match &stripped {
            Ext::Seq(parts) => {
                assert_eq!(parts.len(), 2, "note dropped, assignment and assert kept");
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn construct_counts_cover_all_statement_kinds() {
        let proof = Proof::seq(vec![
            Proof::note_from("A", f("x = 1"), vec!["P"]),
            Proof::note("B", f("x = 1")),
            Proof::Witness {
                terms: vec![f("0")],
                label: "W".into(),
                exists: f("exists i:int. i = x"),
            },
            Proof::PickAny {
                vars: vec![("y".into(), Sort::Int)],
                body: Box::new(Proof::note("C", f("y = y"))),
                label: "All".into(),
                goal: f("y = y"),
            },
        ]);
        let counts = Ext::Proof(proof).count_constructs();
        assert_eq!(counts.note, 3, "nested note inside pickAny also counts");
        assert_eq!(counts.note_with_from, 1);
        assert_eq!(counts.witness, 1);
        assert_eq!(counts.pick_any, 1);
        assert_eq!(counts.total_proof_statements(), 5);
    }

    #[test]
    fn loop_counts_its_invariant() {
        let cmd = Ext::Loop {
            invariant: Labeled::new("LoopInv", f("0 <= i")),
            before: Box::new(Ext::Skip),
            cond: f("i < n"),
            body: Box::new(Ext::Assign("i".into(), f("i + 1"))),
        };
        assert_eq!(cmd.count_constructs().loop_invariants, 1);
    }

    #[test]
    fn simple_seq_flattens() {
        let s = Simple::seq(vec![
            Simple::Skip,
            Simple::seq(vec![
                Simple::assume("a", f("p")),
                Simple::assert("b", f("q")),
            ]),
        ]);
        match s {
            Simple::Seq(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn assert_count() {
        let s = Simple::seq(vec![
            Simple::assert("a", f("p")),
            Simple::Choice(
                Box::new(Simple::assert("b", f("q"))),
                Box::new(Simple::Skip),
            ),
        ]);
        assert_eq!(s.assert_count(), 2);
    }

    #[test]
    fn counts_add() {
        let mut a = ConstructCounts {
            note: 2,
            ..ConstructCounts::default()
        };
        let b = ConstructCounts {
            note: 3,
            induct: 1,
            ..ConstructCounts::default()
        };
        a.add(&b);
        assert_eq!(a.note, 5);
        assert_eq!(a.induct, 1);
    }
}
