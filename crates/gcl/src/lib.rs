//! # `ipl-gcl` — guarded commands and the integrated proof language
//!
//! This crate implements the intermediate languages and translations at the
//! heart of *"An Integrated Proof Language for Imperative Programs"*
//! (PLDI 2009):
//!
//! * [`cmd`] — the **extended guarded command language** (Figure 2), the
//!   **integrated proof language constructs** (Figure 3) and the **simple
//!   guarded command language** (Figure 4), along with modified-variable
//!   analysis, proof-construct stripping (used for the Table 2 experiment)
//!   and construct counting (used for the Table 1 experiment).
//! * [`translate`] — the translation of code into simple guarded commands
//!   (Figure 6), of each proof construct into simple guarded commands
//!   (Figure 8), and of the `fix` construct (Figure 12, Appendix B).
//! * [`wlp`] — weakest liberal preconditions over simple guarded commands
//!   (Figure 5), producing a labelled verification-condition tree.
//! * [`split`] — the splitting rules (Figure 7) that convert a verification
//!   condition into a list of labelled sequents, preserving the labels used
//!   for assumption-base control (`from` clauses), plus the syntactic
//!   discharging of trivially valid sequents.
//! * [`soundness`] — executable versions of the Section 5 / Appendix A
//!   soundness obligations: for every proof construct `p`, the formula
//!   `wlp(⟦p⟧, H) → H` over an uninterpreted postcondition `H`.
//!
//! The surface language (`ipl-lang`) lowers annotated programs into
//! [`cmd::Ext`] commands; the driver (`ipl-core`) then uses this crate to
//! obtain sequents which it dispatches to the provers (`ipl-provers`).

pub mod cmd;
pub mod soundness;
pub mod split;
pub mod translate;
pub mod wlp;

pub use cmd::{ConstructCounts, Ext, Proof, Simple};
pub use split::{split_all, Sequent};
pub use translate::{translate_ext, translate_proof, TranslateCtx};
pub use wlp::{wlp, Vc};
