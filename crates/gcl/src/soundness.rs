//! Executable soundness obligations for the proof language (Section 5 and
//! Appendix A of the paper).
//!
//! The paper proves each proof construct `p` *stronger than `skip`*:
//! `wlp(⟦p⟧, H) → H` for every postcondition `H`.  This module builds that
//! obligation symbolically, over an uninterpreted postcondition variable `H`
//! and uninterpreted atoms for the formulas appearing in the construct.  The
//! integration tests discharge each obligation with the in-tree provers.
//!
//! One obligation is special: `induct` is justified by mathematical induction
//! over the integers, which is valid in the standard model but not derivable
//! in pure first-order logic.  Its catalog entry is therefore marked with
//! [`SoundnessCase::requires_induction`], and callers check the structural
//! properties of the translation instead of discharging the formula with a
//! first-order prover (exactly the argument made in Figure 11 of the paper).

use crate::cmd::Proof;
use crate::translate::{translate_proof, TranslateCtx};
use crate::wlp::{wlp, Vc};
use ipl_logic::parser::parse_form;
use ipl_logic::{Form, Sort};

/// One soundness obligation: a proof construct together with the formula
/// `wlp(⟦p⟧, H) → H`.
#[derive(Debug, Clone)]
pub struct SoundnessCase {
    /// Name of the construct (e.g. `"assuming"`).
    pub name: &'static str,
    /// A representative instance of the construct.
    pub construct: Proof,
    /// The obligation `wlp(⟦p⟧, H) → H`.
    pub obligation: Form,
    /// Whether the obligation needs induction over the naturals (only the
    /// `induct` construct).
    pub requires_induction: bool,
}

/// The postcondition variable used in the obligations.
pub const POST_VAR: &str = "H_post";

/// Builds the obligation `wlp(⟦p⟧, H) → H` for a single construct.
pub fn soundness_obligation(proof: &Proof) -> Form {
    let mut ctx = TranslateCtx::new();
    let simple = translate_proof(proof, &mut ctx);
    let post = Vc::Goal {
        form: Form::var(POST_VAR),
        label: POST_VAR.to_string(),
        from: None,
    };
    let wlp_form = wlp(&simple, post).to_form();
    Form::implies(wlp_form, Form::var(POST_VAR))
}

fn f(s: &str) -> Form {
    parse_form(s).expect("soundness catalog formulas are well-formed")
}

/// A catalog containing one representative instance of every proof construct,
/// mirroring Figures 10 and 11 of the paper.
pub fn catalog() -> Vec<SoundnessCase> {
    let mut cases: Vec<(&'static str, Proof, bool)> = Vec::new();

    cases.push((
        "assert",
        Proof::Assert {
            label: "A".into(),
            form: f("p0"),
            from: None,
        },
        false,
    ));
    cases.push(("note", Proof::note("N", f("p0")), false));
    cases.push((
        "localize",
        Proof::Localize {
            body: Box::new(Proof::note("Lemma", f("q0"))),
            label: "L".into(),
            form: f("p0"),
        },
        false,
    ));
    cases.push((
        "mp",
        Proof::Mp {
            label: "M".into(),
            hyp: f("p0"),
            concl: f("q0"),
        },
        false,
    ));
    cases.push((
        "assuming",
        Proof::Assuming {
            hyp_label: "Hyp".into(),
            hyp: f("p0"),
            body: Box::new(Proof::Seq(vec![])),
            concl_label: "Concl".into(),
            concl: f("q0"),
        },
        false,
    ));
    cases.push((
        "cases",
        Proof::Cases {
            cases: vec![f("p0"), f("q0")],
            label: "C".into(),
            goal: f("r0"),
        },
        false,
    ));
    cases.push((
        "showedCase",
        Proof::ShowedCase {
            index: 1,
            label: "S".into(),
            disjuncts: vec![f("p0"), f("q0")],
        },
        false,
    ));
    cases.push((
        "byContradiction",
        Proof::ByContradiction {
            label: "B".into(),
            form: f("p0"),
            body: Box::new(Proof::Seq(vec![])),
        },
        false,
    ));
    cases.push((
        "contradiction",
        Proof::Contradiction {
            label: "K".into(),
            form: f("p0"),
        },
        false,
    ));
    cases.push((
        "instantiate",
        Proof::Instantiate {
            label: "I".into(),
            forall: f("forall x:obj. member(x)"),
            terms: vec![f("t0")],
        },
        false,
    ));
    cases.push((
        "witness",
        Proof::Witness {
            terms: vec![f("t0")],
            label: "W".into(),
            exists: f("exists x:obj. member(x)"),
        },
        false,
    ));
    cases.push((
        "pickWitness",
        Proof::PickWitness {
            vars: vec![("w".into(), Sort::Obj)],
            hyp_label: "Hyp".into(),
            hyp: f("member(w)"),
            body: Box::new(Proof::Seq(vec![])),
            concl_label: "Concl".into(),
            concl: f("q0"),
        },
        false,
    ));
    cases.push((
        "pickAny",
        Proof::PickAny {
            vars: vec![("a".into(), Sort::Obj)],
            body: Box::new(Proof::Seq(vec![])),
            label: "All".into(),
            goal: f("member(a)"),
        },
        false,
    ));
    cases.push((
        "induct",
        Proof::Induct {
            label: "Ind".into(),
            form: f("holds(n)"),
            var: "n".into(),
            body: Box::new(Proof::Seq(vec![])),
        },
        true,
    ));
    cases.push((
        "seq",
        Proof::seq(vec![Proof::note("N1", f("p0")), Proof::note("N2", f("q0"))]),
        false,
    ));

    cases
        .into_iter()
        .map(|(name, construct, requires_induction)| {
            let obligation = soundness_obligation(&construct);
            SoundnessCase {
                name,
                construct,
                obligation,
                requires_induction,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::subst::free_vars;

    #[test]
    fn catalog_covers_every_construct() {
        let names: Vec<&str> = catalog().iter().map(|c| c.name).collect();
        for expected in [
            "assert",
            "note",
            "localize",
            "mp",
            "assuming",
            "cases",
            "showedCase",
            "byContradiction",
            "contradiction",
            "instantiate",
            "witness",
            "pickWitness",
            "pickAny",
            "induct",
            "seq",
        ] {
            assert!(
                names.contains(&expected),
                "missing soundness case {expected}"
            );
        }
    }

    #[test]
    fn obligations_mention_the_postcondition() {
        for case in catalog() {
            let fv = free_vars(&case.obligation);
            assert!(
                fv.contains(POST_VAR),
                "{}: obligation must constrain the postcondition: {}",
                case.name,
                case.obligation
            );
        }
    }

    #[test]
    fn only_induct_requires_induction() {
        for case in catalog() {
            assert_eq!(case.requires_induction, case.name == "induct");
        }
    }

    #[test]
    fn assuming_obligation_matches_the_paper() {
        // wlp(⟦assuming F in (ε ; note G)⟧, H) = ((F --> G) --> H) /\ (F --> G)
        // (with an empty nested proof) and the obligation is that this implies H.
        let case = catalog()
            .into_iter()
            .find(|c| c.name == "assuming")
            .unwrap();
        let text = case.obligation.to_string();
        assert!(
            text.contains("p0 --> q0"),
            "translated implication present: {text}"
        );
        assert!(
            text.ends_with("--> H_post"),
            "obligation concludes H: {text}"
        );
    }

    #[test]
    fn note_obligation_is_f_and_f_implies_h() {
        let case = catalog().into_iter().find(|c| c.name == "note").unwrap();
        // wlp(assert F; assume F, H) = F /\ (F --> H); obligation: ... --> H
        let text = case.obligation.to_string();
        assert!(
            text.contains("p0 & (p0 --> H_post)") || text.contains("p0 & (p0 --> H_post)"),
            "unexpected obligation {text}"
        );
    }
}
