//! The splitting rules of Figure 7: converting a verification condition into
//! a list of labelled sequents (an "implication list"), preserving the
//! formula labels used for assumption selection, and eliminating
//! syntactically valid implications.

use crate::cmd::FromClause;
use crate::wlp::Vc;
use ipl_logic::subst::rename_free;
use ipl_logic::{Form, Labeled};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A sequent `assumptions |- goal`, produced by splitting a verification
/// condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sequent {
    /// Unique name of the sequent (derived from the goal label).
    pub name: String,
    /// Label of the originating `assert`.
    pub goal_label: String,
    /// The labelled assumptions available on this path.
    pub assumptions: Vec<Labeled>,
    /// The goal formula.
    pub goal: Form,
    /// The assumption-base restriction of the originating `assert`, if any.
    pub from: FromClause,
}

impl Sequent {
    /// The assumptions the provers should use: all of them, unless the
    /// originating assert carries a `from` clause, in which case only the
    /// named facts are kept (the paper's assumption-base control).
    ///
    /// Hypotheses peeled off the goal itself during splitting (an implication
    /// antecedent becoming `{label}_hyp_N`) are always kept: they are part of
    /// the obligation, not of the assumption base the `from` clause narrows,
    /// and their generated labels are not nameable from the source anyway.
    pub fn selected_assumptions(&self) -> Vec<&Labeled> {
        match &self.from {
            None => self.assumptions.iter().collect(),
            Some(names) => {
                let hyp_prefix = format!("{}_hyp_", self.goal_label);
                self.assumptions
                    .iter()
                    .filter(|a| {
                        a.label.starts_with(&hyp_prefix) || names.iter().any(|n| n == &a.label)
                    })
                    .collect()
            }
        }
    }

    /// Returns `true` if the sequent is syntactically valid: the goal is
    /// `true`, the goal occurs among the assumptions, or the assumptions
    /// contain `false` (the eliminations performed during splitting in the
    /// paper).
    pub fn is_trivially_valid(&self) -> bool {
        if self.goal.is_true() {
            return true;
        }
        self.assumptions
            .iter()
            .any(|a| a.form.is_false() || a.form == self.goal)
    }

    /// A short human-readable rendering used in reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for a in &self.assumptions {
            out.push_str(&format!("  {}: {}\n", a.label, a.form));
        }
        out.push_str(&format!("  |- [{}] {}\n", self.goal_label, self.goal));
        out
    }
}

/// Splitting state: a counter for unique sequent names and fresh variables.
struct Splitter {
    sequents: Vec<Sequent>,
    counter: usize,
}

impl Splitter {
    fn fresh_suffix(&mut self) -> usize {
        self.counter += 1;
        self.counter
    }
}

/// Splits a verification condition into sequents following Figure 7:
///
/// ```text
/// A -> G1 /\ G2        ~>  A -> G1,  A -> G2
/// A -> (B -> G)        ~>  (A /\ B) -> G
/// A -> forall x. G     ~>  A -> G[x := x_fresh]
/// ```
///
/// Havocked program variables are renamed to fresh incarnations so that
/// assumptions recorded before the havoc keep referring to the old value.
/// The returned list contains every sequent, including trivially valid ones;
/// callers typically filter with [`Sequent::is_trivially_valid`].
pub fn split_all(vc: &Vc) -> Vec<Sequent> {
    let mut splitter = Splitter {
        sequents: Vec::new(),
        counter: 0,
    };
    walk(vc, &HashMap::new(), &Vec::new(), &mut splitter);
    splitter.sequents
}

fn walk(
    vc: &Vc,
    renaming: &HashMap<String, String>,
    assumptions: &[Labeled],
    splitter: &mut Splitter,
) {
    match vc {
        Vc::True => {}
        Vc::And(parts) => {
            for part in parts {
                walk(part, renaming, assumptions, splitter);
            }
        }
        Vc::Implies { hyp, rest } => {
            let mut assumptions = assumptions.to_vec();
            assumptions.push(Labeled::new(
                hyp.label.clone(),
                rename_free(&hyp.form, renaming),
            ));
            walk(rest, renaming, &assumptions, splitter);
        }
        Vc::ForallVars { vars, rest } => {
            let mut renaming = renaming.clone();
            for var in vars {
                let suffix = splitter.fresh_suffix();
                renaming.insert(var.clone(), format!("{var}#{suffix}"));
            }
            walk(rest, &renaming, assumptions, splitter);
        }
        Vc::Goal { form, label, from } => {
            let goal = rename_free(form, renaming);
            split_goal(goal, label, from, assumptions.to_vec(), splitter);
        }
    }
}

/// Applies the Figure 7 rules to the goal itself: conjunctions split,
/// implications move their antecedent into the assumptions, universal
/// quantifiers are instantiated with fresh variables.
fn split_goal(
    goal: Form,
    label: &str,
    from: &FromClause,
    mut assumptions: Vec<Labeled>,
    splitter: &mut Splitter,
) {
    match goal {
        Form::Bool(true) => {}
        Form::And(parts) => {
            for part in parts {
                split_goal(part, label, from, assumptions.clone(), splitter);
            }
        }
        Form::Implies(antecedent, consequent) => {
            for (i, hyp) in Form::take(antecedent)
                .into_conjuncts()
                .into_iter()
                .enumerate()
            {
                assumptions.push(Labeled::new(format!("{label}_hyp_{}", i + 1), hyp));
            }
            split_goal(Form::take(consequent), label, from, assumptions, splitter);
        }
        Form::Forall(bindings, body) => {
            let mut renaming = HashMap::new();
            for (name, _) in &bindings {
                let suffix = splitter.fresh_suffix();
                renaming.insert(name.clone(), format!("{name}${suffix}"));
            }
            let body = rename_free(&body, &renaming);
            split_goal(body, label, from, assumptions, splitter);
        }
        other => {
            let suffix = splitter.fresh_suffix();
            splitter.sequents.push(Sequent {
                name: format!("{label}#{suffix}"),
                goal_label: label.to_string(),
                assumptions,
                goal: other,
                from: from.clone(),
            });
        }
    }
}

/// Splits and keeps only the sequents that are not syntactically valid.
pub fn split_nontrivial(vc: &Vc) -> Vec<Sequent> {
    split_all(vc)
        .into_iter()
        .filter(|s| !s.is_trivially_valid())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::Simple;
    use crate::wlp::vc_of;
    use ipl_logic::parser::parse_form;

    fn f(s: &str) -> Form {
        parse_form(s).unwrap()
    }

    #[test]
    fn conjunction_goals_split() {
        let cmd = Simple::seq(vec![
            Simple::assume("Pre", f("p")),
            Simple::assert("Post", f("a & b & c")),
        ]);
        let sequents = split_all(&vc_of(&cmd));
        assert_eq!(sequents.len(), 3);
        assert!(sequents.iter().all(|s| s.assumptions.len() == 1));
        assert!(sequents.iter().all(|s| s.goal_label == "Post"));
    }

    #[test]
    fn implication_goals_move_hypotheses() {
        let cmd = Simple::assert("Post", f("p & q --> r"));
        let sequents = split_all(&vc_of(&cmd));
        assert_eq!(sequents.len(), 1);
        assert_eq!(sequents[0].assumptions.len(), 2);
        assert_eq!(sequents[0].goal, f("r"));
    }

    #[test]
    fn universal_goals_get_fresh_variables() {
        let cmd = Simple::assert("Post", f("forall x:int. x < y --> x < y + 1"));
        let sequents = split_all(&vc_of(&cmd));
        assert_eq!(sequents.len(), 1);
        let s = &sequents[0];
        assert!(
            s.goal.to_string().contains('$'),
            "goal uses a fresh instance: {}",
            s.goal
        );
        assert_eq!(s.assumptions.len(), 1);
    }

    #[test]
    fn havoc_renames_later_occurrences_only() {
        let cmd = Simple::seq(vec![
            Simple::assume("Before", f("x = 1")),
            Simple::Havoc(vec!["x".into()]),
            Simple::assume("After", f("x = 2")),
            Simple::assert("Post", f("x = 2")),
        ]);
        let sequents = split_all(&vc_of(&cmd));
        assert_eq!(sequents.len(), 1);
        let s = &sequents[0];
        let before = s.assumptions.iter().find(|a| a.label == "Before").unwrap();
        let after = s.assumptions.iter().find(|a| a.label == "After").unwrap();
        assert_eq!(
            before.form,
            f("x = 1"),
            "pre-havoc assumption keeps the old incarnation"
        );
        assert!(
            after.form.to_string().contains('#'),
            "post-havoc assumption uses the new incarnation"
        );
        assert_eq!(
            after.form.to_string().replace(" = 2", ""),
            s.goal.to_string().replace(" = 2", "")
        );
    }

    #[test]
    fn from_clause_selects_assumptions() {
        let cmd = Simple::seq(vec![
            Simple::assume("Relevant", f("p")),
            Simple::assume("Irrelevant", f("q")),
            Simple::assert_from("Goal", f("p"), vec!["Relevant".to_string()]),
        ]);
        let sequents = split_all(&vc_of(&cmd));
        assert_eq!(sequents.len(), 1);
        let s = &sequents[0];
        assert_eq!(s.assumptions.len(), 2);
        let selected = s.selected_assumptions();
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].label, "Relevant");
    }

    #[test]
    fn from_clause_keeps_goal_hypotheses() {
        // The hypothesis of the goal's implication lands in the assumptions
        // under a generated `_hyp_` label; a `from` clause (which can only
        // name source-level facts) must not drop it.
        let cmd = Simple::seq(vec![
            Simple::assume("Relevant", f("forall x:int. p(x) --> q(x)")),
            Simple::assume("Irrelevant", f("r")),
            Simple::assert_from(
                "Goal",
                f("forall y:int. p(y) --> q(y)"),
                vec!["Relevant".to_string()],
            ),
        ]);
        let sequents = split_all(&vc_of(&cmd));
        assert_eq!(sequents.len(), 1);
        let selected = sequents[0].selected_assumptions();
        assert_eq!(selected.len(), 2, "Relevant plus the goal hypothesis");
        assert!(selected.iter().any(|a| a.label == "Goal_hyp_1"));
        assert!(selected.iter().all(|a| a.label != "Irrelevant"));
    }

    #[test]
    fn trivially_valid_sequents_detected() {
        let cmd = Simple::seq(vec![
            Simple::assume("H", f("p")),
            Simple::assert("G", f("p")),
        ]);
        let all = split_all(&vc_of(&cmd));
        assert_eq!(all.len(), 1);
        assert!(all[0].is_trivially_valid());
        assert!(split_nontrivial(&vc_of(&cmd)).is_empty());

        let cmd = Simple::seq(vec![
            Simple::assume("H", Form::FALSE),
            Simple::assert("G", f("q")),
        ]);
        assert!(split_nontrivial(&vc_of(&cmd)).is_empty());
    }

    #[test]
    fn local_assumption_base_keeps_branch_obligations_separate() {
        // (skip [] (assume L; assert G1; assume false)); assert G2
        let cmd = Simple::seq(vec![
            Simple::Choice(
                Box::new(Simple::Skip),
                Box::new(Simple::seq(vec![
                    Simple::assume("Local", f("l")),
                    Simple::assert("G1", f("g1")),
                    Simple::assume("end", Form::FALSE),
                ])),
            ),
            Simple::assert("G2", f("g2")),
        ]);
        let sequents = split_nontrivial(&vc_of(&cmd));
        // G1 is proved with the local assumption; G2 without it.  The branch
        // copy of G2 is trivially valid because its assumptions contain false.
        assert_eq!(sequents.len(), 2);
        let g1 = sequents.iter().find(|s| s.goal_label == "G1").unwrap();
        let g2 = sequents.iter().find(|s| s.goal_label == "G2").unwrap();
        assert!(g1.assumptions.iter().any(|a| a.label == "Local"));
        assert!(!g2.assumptions.iter().any(|a| a.label == "Local"));
    }

    #[test]
    fn sequent_rendering_mentions_labels() {
        let cmd = Simple::seq(vec![
            Simple::assume("Pre", f("p")),
            Simple::assert("Post", f("q")),
        ]);
        let sequents = split_all(&vc_of(&cmd));
        let text = sequents[0].render();
        assert!(text.contains("Pre: p"));
        assert!(text.contains("[Post] q"));
    }
}
