//! Translation of extended guarded commands and proof constructs into simple
//! guarded commands — Figures 6, 8 and 12 of the paper.

use crate::cmd::{Ext, Proof, Simple};
use ipl_logic::subst::{free_vars, substitute, substitute_one, FreshNames};
use ipl_logic::{Form, Sort};
use std::collections::HashMap;

/// Shared state of a translation run: a fresh-name generator used for the
/// temporaries introduced by the assignment and `fix` translations.
#[derive(Debug, Default)]
pub struct TranslateCtx {
    /// Fresh name generator; reserve program variable names here before
    /// translating to guarantee freshness.
    pub fresh: FreshNames,
}

impl TranslateCtx {
    /// Creates a new context.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Translates an extended guarded command into a simple guarded command,
/// following Figure 6 (code constructs), Figure 8 (proof constructs) and
/// Figure 12 (`fix`).
pub fn translate_ext(cmd: &Ext, ctx: &mut TranslateCtx) -> Simple {
    match cmd {
        Ext::Proof(p) => translate_proof(p, ctx),
        Ext::Skip => Simple::Skip,
        Ext::Assume(fact) => Simple::Assume(fact.clone()),
        Ext::Assert { fact, from } => Simple::Assert {
            fact: fact.clone(),
            from: from.clone(),
        },

        // [[x := F]] = havoc v ; assume v = F ; havoc x ; assume x = v
        Ext::Assign(x, value) => {
            let v = ctx.fresh.fresh(&format!("{x}_tmp"));
            Simple::seq(vec![
                Simple::Havoc(vec![v.clone()]),
                Simple::assume(
                    format!("assign_{x}"),
                    Form::eq(Form::var(v.clone()), value.clone()),
                ),
                Simple::Havoc(vec![x.clone()]),
                Simple::assume(
                    format!("assign_{x}"),
                    Form::eq(Form::var(x.clone()), Form::var(v)),
                ),
            ])
        }

        Ext::Choice(a, b) => Simple::Choice(
            Box::new(translate_ext(a, ctx)),
            Box::new(translate_ext(b, ctx)),
        ),
        Ext::Seq(parts) => Simple::seq(parts.iter().map(|p| translate_ext(p, ctx))),

        // [[if (F) c1 else c2]] = (assume F ; [[c1]]) [] (assume ~F ; [[c2]])
        Ext::If(cond, then_cmd, else_cmd) => Simple::Choice(
            Box::new(Simple::seq(vec![
                Simple::assume("IfCond", cond.clone()),
                translate_ext(then_cmd, ctx),
            ])),
            Box::new(Simple::seq(vec![
                Simple::assume("IfNegCond", Form::not(cond.clone())),
                translate_ext(else_cmd, ctx),
            ])),
        ),

        // [[loop inv(I) c1 while(F) c2]] =
        //   assert I ; havoc mod(c1;c2) ; assume I ; [[c1]] ;
        //   (assume ~F  []  (assume F ; [[c2]] ; assert I ; assume false))
        Ext::Loop {
            invariant,
            before,
            cond,
            body,
        } => {
            let mut mods: Vec<String> = before.modified_vars().into_iter().collect();
            for v in body.modified_vars() {
                if !mods.contains(&v) {
                    mods.push(v);
                }
            }
            let exit = Simple::assume("LoopExit", Form::not(cond.clone()));
            let iterate = Simple::seq(vec![
                Simple::assume("LoopCondition", cond.clone()),
                translate_ext(body, ctx),
                Simple::assert(
                    format!("{}_preserved", invariant.label),
                    invariant.form.clone(),
                ),
                Simple::assume("unreachable", Form::FALSE),
            ]);
            Simple::seq(vec![
                Simple::assert(
                    format!("{}_initial", invariant.label),
                    invariant.form.clone(),
                ),
                if mods.is_empty() {
                    Simple::Skip
                } else {
                    Simple::Havoc(mods)
                },
                Simple::assume(invariant.label.clone(), invariant.form.clone()),
                translate_ext(before, ctx),
                Simple::Choice(Box::new(exit), Box::new(iterate)),
            ])
        }

        // [[havoc x suchThat F]] = assert exists x. F ; havoc x ; assume F
        Ext::Havoc(vars, constraint) => match constraint {
            None => Simple::Havoc(vars.clone()),
            Some(constraint) => {
                let bindings = vars.iter().map(|v| (v.clone(), Sort::Unknown)).collect();
                Simple::seq(vec![
                    Simple::assert("havoc_feasible", Form::exists(bindings, constraint.clone())),
                    Simple::Havoc(vars.clone()),
                    Simple::assume("havoc_constraint", constraint.clone()),
                ])
            }
        },

        // Figure 12:
        // [[fix x suchThat F in (c ; note l:G)]] =
        //   z0 := z ; assert exists x. F' ; havoc x ; assume F' ; [[c]] ;
        //   assert G ; assume forall x. (F' --> G)
        // where z = mod(c), z0 fresh, F' = F[z := z0].
        Ext::Fix {
            vars,
            such_that,
            body,
            label,
            goal,
        } => {
            let mods: Vec<String> = body.modified_vars().into_iter().collect();
            let mut save = Vec::new();
            let mut rename: HashMap<String, Form> = HashMap::new();
            for z in &mods {
                let z0 = ctx.fresh.fresh(&format!("{z}_saved"));
                save.push(Simple::assume(
                    format!("save_{z}"),
                    Form::eq(Form::var(z0.clone()), Form::var(z.clone())),
                ));
                rename.insert(z.clone(), Form::var(z0));
            }
            let constraint_pre = substitute(such_that, &rename);
            let exported = Form::forall(
                vars.clone(),
                Form::implies(constraint_pre.clone(), goal.clone()),
            );
            Simple::seq(
                save.into_iter()
                    .chain(vec![
                        Simple::assert(
                            format!("{label}_feasible"),
                            Form::exists(vars.clone(), constraint_pre.clone()),
                        ),
                        Simple::Havoc(vars.iter().map(|(v, _)| v.clone()).collect()),
                        Simple::assume(format!("{label}_fixed"), constraint_pre),
                        translate_ext(body, ctx),
                        Simple::assert(label.clone(), goal.clone()),
                        Simple::assume(label.clone(), exported),
                    ])
                    .collect::<Vec<_>>(),
            )
        }
    }
}

/// Translates a proof construct into simple guarded commands (Figure 8).
// Public API kept symmetric with `translate_ext`: no current proof construct
// draws fresh names, but the context is part of the translation signature.
#[allow(clippy::only_used_in_recursion)]
pub fn translate_proof(proof: &Proof, ctx: &mut TranslateCtx) -> Simple {
    match proof {
        Proof::Seq(parts) => Simple::seq(parts.iter().map(|p| translate_proof(p, ctx))),

        // [[assert l:F from h]] = assert l:F from h
        Proof::Assert { label, form, from } => Simple::Assert {
            fact: ipl_logic::Labeled::new(label.clone(), form.clone()),
            from: from.clone(),
        },

        // [[note l:F from h]] = assert l:F from h ; assume l:F
        Proof::Note { label, form, from } => Simple::seq(vec![
            Simple::Assert {
                fact: ipl_logic::Labeled::new(label.clone(), form.clone()),
                from: from.clone(),
            },
            Simple::assume(label.clone(), form.clone()),
        ]),

        // [[localize in (p ; note l:F)]] =
        //   (skip [] ([[p]] ; assert F ; assume false)) ; assume l:F
        Proof::Localize { body, label, form } => Simple::seq(vec![
            local_branch(Simple::seq(vec![
                translate_proof(body, ctx),
                Simple::assert(label.clone(), form.clone()),
            ])),
            Simple::assume(label.clone(), form.clone()),
        ]),

        // [[mp l:(F --> G)]] = assert F ; assert (F --> G) ; assume l:G
        Proof::Mp { label, hyp, concl } => Simple::seq(vec![
            Simple::assert(format!("{label}_hyp"), hyp.clone()),
            Simple::assert(
                format!("{label}_implication"),
                Form::implies(hyp.clone(), concl.clone()),
            ),
            Simple::assume(label.clone(), concl.clone()),
        ]),

        // [[assuming lF:F in (p ; note lG:G)]] =
        //   (skip [] (assume lF:F ; [[p]] ; assert G ; assume false)) ;
        //   assume lG:(F --> G)
        Proof::Assuming {
            hyp_label,
            hyp,
            body,
            concl_label,
            concl,
        } => Simple::seq(vec![
            local_branch(Simple::seq(vec![
                Simple::assume(hyp_label.clone(), hyp.clone()),
                translate_proof(body, ctx),
                Simple::assert(concl_label.clone(), concl.clone()),
            ])),
            Simple::assume(
                concl_label.clone(),
                Form::implies(hyp.clone(), concl.clone()),
            ),
        ]),

        // [[cases F1..Fn for l:G]] =
        //   assert F1 | ... | Fn ; assert (F1 --> G) ; ... ; assert (Fn --> G) ;
        //   assume l:G
        Proof::Cases { cases, label, goal } => {
            let mut cmds = vec![Simple::assert(
                format!("{label}_coverage"),
                Form::or(cases.clone()),
            )];
            for (i, case) in cases.iter().enumerate() {
                cmds.push(Simple::assert(
                    format!("{label}_case_{}", i + 1),
                    Form::implies(case.clone(), goal.clone()),
                ));
            }
            cmds.push(Simple::assume(label.clone(), goal.clone()));
            Simple::seq(cmds)
        }

        // [[showedCase i of l:F1 | .. | Fn]] = assert Fi ; assume l:F1 | .. | Fn
        Proof::ShowedCase {
            index,
            label,
            disjuncts,
        } => {
            let shown = disjuncts
                .get(index.saturating_sub(1))
                .cloned()
                .unwrap_or(Form::FALSE);
            Simple::seq(vec![
                Simple::assert(format!("{label}_case_{index}"), shown),
                Simple::assume(label.clone(), Form::or(disjuncts.clone())),
            ])
        }

        // [[byContradiction l:F in p]] =
        //   (skip [] (assume ~F ; [[p]] ; assert false ; assume false)) ;
        //   assume l:F
        Proof::ByContradiction { label, form, body } => Simple::seq(vec![
            local_branch(Simple::seq(vec![
                Simple::assume(format!("{label}_negated"), Form::not(form.clone())),
                translate_proof(body, ctx),
                Simple::assert(format!("{label}_absurd"), Form::FALSE),
            ])),
            Simple::assume(label.clone(), form.clone()),
        ]),

        // [[contradiction l:F]] = assert F ; assert ~F ; assume false
        Proof::Contradiction { label, form } => Simple::seq(vec![
            Simple::assert(format!("{label}_pos"), form.clone()),
            Simple::assert(format!("{label}_neg"), Form::not(form.clone())),
            Simple::assume(label.clone(), Form::FALSE),
        ]),

        // [[instantiate l:forall x.F with t]] = assert forall x.F ; assume l:F[x := t]
        Proof::Instantiate {
            label,
            forall,
            terms,
        } => {
            let instantiated = instantiate_quantifier(forall, terms, true);
            Simple::seq(vec![
                Simple::assert(format!("{label}_universal"), forall.clone()),
                Simple::assume(label.clone(), instantiated),
            ])
        }

        // [[witness t for l:exists x.F]] = assert F[x := t] ; assume l:exists x.F
        Proof::Witness {
            terms,
            label,
            exists,
        } => {
            let instantiated = instantiate_quantifier(exists, terms, false);
            Simple::seq(vec![
                Simple::assert(format!("{label}_witness"), instantiated),
                Simple::assume(label.clone(), exists.clone()),
            ])
        }

        // [[pickWitness x for lF:F in (p ; note lG:G)]] =
        //   (skip [] (assert exists x.F ; havoc x ; assume lF:F ; [[p]] ;
        //             assert G ; assume false)) ;
        //   assume lG:G                      (x must not be free in G)
        Proof::PickWitness {
            vars,
            hyp_label,
            hyp,
            body,
            concl_label,
            concl,
        } => {
            let goal_fv = free_vars(concl);
            let sound = vars.iter().all(|(v, _)| !goal_fv.contains(v));
            let exported = if sound { concl.clone() } else { Form::TRUE };
            Simple::seq(vec![
                local_branch(Simple::seq(vec![
                    Simple::assert(
                        format!("{hyp_label}_exists"),
                        Form::exists(vars.clone(), hyp.clone()),
                    ),
                    Simple::Havoc(vars.iter().map(|(v, _)| v.clone()).collect()),
                    Simple::assume(hyp_label.clone(), hyp.clone()),
                    translate_proof(body, ctx),
                    Simple::assert(concl_label.clone(), concl.clone()),
                ])),
                Simple::assume(concl_label.clone(), exported),
            ])
        }

        // [[pickAny x in (p ; note l:G)]] =
        //   (skip [] (havoc x ; [[p]] ; assert G ; assume false)) ;
        //   assume l:forall x.G
        Proof::PickAny {
            vars,
            body,
            label,
            goal,
        } => Simple::seq(vec![
            local_branch(Simple::seq(vec![
                Simple::Havoc(vars.iter().map(|(v, _)| v.clone()).collect()),
                translate_proof(body, ctx),
                Simple::assert(label.clone(), goal.clone()),
            ])),
            Simple::assume(label.clone(), Form::forall(vars.clone(), goal.clone())),
        ]),

        // [[induct l:F over n in p]] =
        //   (skip [] (havoc n ; assume 0 <= n ; [[p]] ;
        //             assert F[n := 0] ; assert (F --> F[n := n+1]) ; assume false)) ;
        //   assume l:forall n. (0 <= n --> F)
        Proof::Induct {
            label,
            form,
            var,
            body,
        } => {
            let base = substitute_one(form, var, &Form::int(0));
            let step = Form::implies(
                form.clone(),
                substitute_one(form, var, &Form::add(Form::var(var.clone()), Form::int(1))),
            );
            let exported = Form::forall(
                vec![(var.clone(), Sort::Int)],
                Form::implies(Form::le(Form::int(0), Form::var(var.clone())), form.clone()),
            );
            Simple::seq(vec![
                local_branch(Simple::seq(vec![
                    Simple::Havoc(vec![var.clone()]),
                    Simple::assume(
                        format!("{label}_nonneg"),
                        Form::le(Form::int(0), Form::var(var.clone())),
                    ),
                    translate_proof(body, ctx),
                    Simple::assert(format!("{label}_base"), base),
                    Simple::assert(format!("{label}_step"), step),
                ])),
                Simple::assume(label.clone(), exported),
            ])
        }
    }
}

/// The local assumption base pattern of Section 4.1:
/// `(skip [] (body ; assume false))`.
///
/// The second branch generates the proof obligations of `body` inside a local
/// assumption base, and `assume false` prevents any of those local facts from
/// escaping to the program point after the construct.
fn local_branch(body: Simple) -> Simple {
    Simple::Choice(
        Box::new(Simple::Skip),
        Box::new(Simple::seq(vec![
            body,
            Simple::assume("local_base_end", Form::FALSE),
        ])),
    )
}

/// Instantiates the leading quantifier of `quantified` with the given terms
/// (pairing binders and terms positionally).  If `expect_forall` is true the
/// formula should be a `forall`, otherwise an `exists`; any non-quantified
/// formula is returned unchanged (the generated obligations then ensure the
/// developer's claim is still checked soundly).
fn instantiate_quantifier(quantified: &Form, terms: &[Form], expect_forall: bool) -> Form {
    let (bindings, body) = match (quantified, expect_forall) {
        (Form::Forall(bs, body), true) | (Form::Exists(bs, body), false) => {
            (bs.clone(), body.clone())
        }
        _ => return quantified.clone(),
    };
    let mut map = HashMap::new();
    let mut remaining = Vec::new();
    for (i, (name, sort)) in bindings.iter().enumerate() {
        match terms.get(i) {
            Some(term) => {
                map.insert(name.clone(), term.clone());
            }
            None => remaining.push((name.clone(), sort.clone())),
        }
    }
    let instantiated = substitute(&body, &map);
    if remaining.is_empty() {
        instantiated
    } else if expect_forall {
        Form::forall(remaining, instantiated)
    } else {
        Form::exists(remaining, instantiated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;
    use ipl_logic::Labeled;

    fn f(s: &str) -> Form {
        parse_form(s).unwrap()
    }

    fn translate(cmd: &Ext) -> Simple {
        let mut ctx = TranslateCtx::new();
        translate_ext(cmd, &mut ctx)
    }

    /// Collects the labels of all assume commands in order.
    fn assume_labels(cmd: &Simple, out: &mut Vec<String>) {
        match cmd {
            Simple::Assume(l) => out.push(l.label.clone()),
            Simple::Choice(a, b) => {
                assume_labels(a, out);
                assume_labels(b, out);
            }
            Simple::Seq(parts) => parts.iter().for_each(|p| assume_labels(p, out)),
            _ => {}
        }
    }

    #[test]
    fn assignment_translates_to_havoc_assume_pairs() {
        let s = translate(&Ext::Assign("x".into(), f("x + 1")));
        match &s {
            Simple::Seq(parts) => {
                assert_eq!(parts.len(), 4);
                assert!(matches!(parts[0], Simple::Havoc(_)));
                assert!(matches!(parts[2], Simple::Havoc(_)));
            }
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    #[test]
    fn note_translates_to_assert_then_assume() {
        let mut ctx = TranslateCtx::new();
        let s = translate_proof(&Proof::note_from("L", f("x = 1"), vec!["P", "Q"]), &mut ctx);
        match &s {
            Simple::Seq(parts) => {
                assert_eq!(parts.len(), 2);
                match &parts[0] {
                    Simple::Assert { fact, from } => {
                        assert_eq!(fact.label, "L");
                        assert_eq!(from.as_ref().unwrap().len(), 2);
                    }
                    other => panic!("expected assert, got {other:?}"),
                }
                assert!(matches!(&parts[1], Simple::Assume(l) if l.label == "L"));
            }
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    #[test]
    fn loop_translation_matches_figure_6() {
        let cmd = Ext::Loop {
            invariant: Labeled::new("LoopInv", f("0 <= i")),
            before: Box::new(Ext::Skip),
            cond: f("i < n"),
            body: Box::new(Ext::Assign("i".into(), f("i + 1"))),
        };
        let s = translate(&cmd);
        // The loop invariant must be asserted initially and after the body,
        // and assumed (with its own label) after the havoc of modified vars.
        assert_eq!(s.assert_count(), 2);
        let mut labels = Vec::new();
        assume_labels(&s, &mut labels);
        assert!(labels.contains(&"LoopInv".to_string()));
        assert!(labels.contains(&"LoopCondition".to_string()));
        assert!(labels.contains(&"LoopExit".to_string()));
    }

    #[test]
    fn witness_instantiates_the_existential_body() {
        let mut ctx = TranslateCtx::new();
        let proof = Proof::Witness {
            terms: vec![f("index")],
            label: "W".into(),
            exists: f("exists i:int. (i, o) in content"),
        };
        let s = translate_proof(&proof, &mut ctx);
        match &s {
            Simple::Seq(parts) => match &parts[0] {
                Simple::Assert { fact, .. } => {
                    assert_eq!(fact.form.to_string(), "(index, o) in content");
                }
                other => panic!("expected assert, got {other:?}"),
            },
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    #[test]
    fn instantiate_substitutes_terms() {
        let mut ctx = TranslateCtx::new();
        let proof = Proof::Instantiate {
            label: "I".into(),
            forall: f("forall j:int, e:obj. (j, e) in content --> 0 <= j"),
            terms: vec![f("k")],
        };
        let s = translate_proof(&proof, &mut ctx);
        let mut labels = Vec::new();
        assume_labels(&s, &mut labels);
        assert_eq!(labels, vec!["I".to_string()]);
        // The partially instantiated fact keeps the remaining binder.
        match &s {
            Simple::Seq(parts) => match &parts[1] {
                Simple::Assume(l) => {
                    assert!(l.form.to_string().starts_with("forall e:obj."));
                    assert!(l.form.to_string().contains("(k, e)"));
                }
                other => panic!("expected assume, got {other:?}"),
            },
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    #[test]
    fn pick_witness_refuses_to_export_goal_mentioning_witness() {
        let mut ctx = TranslateCtx::new();
        let proof = Proof::PickWitness {
            vars: vec![("w".into(), Sort::Obj)],
            hyp_label: "H".into(),
            hyp: f("w in nodes"),
            body: Box::new(Proof::Seq(vec![])),
            concl_label: "G".into(),
            concl: f("w ~= null"),
        };
        let s = translate_proof(&proof, &mut ctx);
        // The exported assumption must be weakened to true because the goal
        // mentions the witness variable (the paper's side condition).
        match &s {
            Simple::Seq(parts) => match parts.last().unwrap() {
                Simple::Assume(l) => assert_eq!(l.form, Form::TRUE),
                other => panic!("expected assume, got {other:?}"),
            },
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    #[test]
    fn pick_any_exports_universal() {
        let mut ctx = TranslateCtx::new();
        let proof = Proof::PickAny {
            vars: vec![("x".into(), Sort::Obj)],
            body: Box::new(Proof::Seq(vec![])),
            label: "All".into(),
            goal: f("x in nodes --> x ~= null"),
        };
        let s = translate_proof(&proof, &mut ctx);
        match &s {
            Simple::Seq(parts) => match parts.last().unwrap() {
                Simple::Assume(l) => assert!(matches!(l.form, Form::Forall(..))),
                other => panic!("expected assume, got {other:?}"),
            },
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    #[test]
    fn induct_generates_base_and_step_obligations() {
        let mut ctx = TranslateCtx::new();
        let proof = Proof::Induct {
            label: "Ind".into(),
            form: f("p(n)"),
            var: "n".into(),
            body: Box::new(Proof::Seq(vec![])),
        };
        let s = translate_proof(&proof, &mut ctx);
        assert_eq!(s.assert_count(), 2, "base case and inductive step");
        match &s {
            Simple::Seq(parts) => match parts.last().unwrap() {
                Simple::Assume(l) => {
                    let txt = l.form.to_string();
                    assert!(txt.contains("forall n:int."));
                    assert!(txt.contains("0 <= n"));
                }
                other => panic!("expected assume, got {other:?}"),
            },
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    #[test]
    fn fix_saves_modified_variables() {
        let cmd = Ext::Fix {
            vars: vec![("x".into(), Sort::Obj)],
            such_that: f("x in nodes & size = old_size"),
            body: Box::new(Ext::Assign("size".into(), f("size + 1"))),
            label: "FixG".into(),
            goal: f("x in nodes"),
        };
        let s = translate(&cmd);
        // The constraint refers to `size`, which is modified by the body, so
        // the translation must refer to the saved copy in the constraint.
        let text = format!("{s:?}");
        assert!(
            text.contains("size_saved"),
            "saved pre-state variable expected: {text}"
        );
        assert_eq!(s.assert_count(), 2, "feasibility of constraint + the goal");
    }

    #[test]
    fn cases_asserts_coverage_and_each_case() {
        let mut ctx = TranslateCtx::new();
        let proof = Proof::Cases {
            cases: vec![f("x < 0"), f("x = 0"), f("x > 0")],
            label: "C".into(),
            goal: f("q(x)"),
        };
        let s = translate_proof(&proof, &mut ctx);
        assert_eq!(s.assert_count(), 4);
    }

    #[test]
    fn strip_then_translate_produces_no_proof_obligations_from_notes() {
        let cmd = Ext::seq(vec![
            Ext::Proof(Proof::note("L", f("x = 1"))),
            Ext::assert("Post", f("x = 1")),
        ]);
        let with = translate(&cmd);
        let without = translate(&cmd.strip_proofs());
        assert_eq!(with.assert_count(), 2);
        assert_eq!(without.assert_count(), 1);
    }
}
