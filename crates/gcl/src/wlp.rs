//! Weakest liberal preconditions over simple guarded commands (Figure 5).
//!
//! Instead of building one monolithic formula, [`wlp`] produces a labelled
//! verification-condition tree ([`Vc`]) that keeps assumption labels and
//! `from` clauses attached to the places they came from.  The splitting rules
//! of Figure 7 then walk this tree (see [`crate::split`]).  [`Vc::to_form`]
//! recovers the monolithic formula of Figure 5, which is used by the
//! soundness obligations of Section 5.

use crate::cmd::{FromClause, Simple};
use ipl_logic::{Form, Labeled, Sort};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A labelled verification condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Vc {
    /// The trivially true verification condition.
    True,
    /// A proof obligation `form`, to be established under the assumptions
    /// collected on the path to this node.
    Goal {
        /// The obligation.
        form: Form,
        /// The label of the originating `assert`.
        label: String,
        /// The `from` clause of the originating `assert`, if any.
        from: FromClause,
    },
    /// `hyp --> rest` — produced by `assume`.
    Implies {
        /// The labelled hypothesis.
        hyp: Labeled,
        /// The rest of the verification condition (`Arc`-shared: `wlp` of a
        /// choice duplicates its postcondition, and with hundreds of nested
        /// branches per method a boxed spine made that duplication the
        /// dominant clone hotspot of the front-end).
        rest: Arc<Vc>,
    },
    /// `forall vars. rest` — produced by `havoc`.
    ForallVars {
        /// The havocked variables.
        vars: Vec<String>,
        /// The rest of the verification condition (see [`Vc::Implies::rest`]
        /// for why this is shared).
        rest: Arc<Vc>,
    },
    /// Conjunction of verification conditions.
    And(Vec<Vc>),
}

impl Vc {
    /// Conjunction that drops `True` nodes and flattens nested conjunctions.
    pub fn and(parts: impl IntoIterator<Item = Vc>) -> Vc {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Vc::True => {}
                Vc::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Vc::True,
            1 => out.pop().expect("len checked"),
            _ => Vc::And(out),
        }
    }

    /// Converts the tree into a single formula, exactly as Figure 5 would
    /// build it.  Havocked variables become universal quantifiers with
    /// unspecified sorts.
    pub fn to_form(&self) -> Form {
        match self {
            Vc::True => Form::TRUE,
            Vc::Goal { form, .. } => form.clone(),
            Vc::Implies { hyp, rest } => Form::implies(hyp.form.clone(), rest.to_form()),
            Vc::ForallVars { vars, rest } => Form::forall(
                vars.iter().map(|v| (v.clone(), Sort::Unknown)).collect(),
                rest.to_form(),
            ),
            Vc::And(parts) => Form::and(parts.iter().map(Vc::to_form).collect::<Vec<_>>()),
        }
    }

    /// Number of [`Vc::Goal`] leaves.
    pub fn goal_count(&self) -> usize {
        match self {
            Vc::True => 0,
            Vc::Goal { .. } => 1,
            Vc::Implies { rest, .. } | Vc::ForallVars { rest, .. } => rest.goal_count(),
            Vc::And(parts) => parts.iter().map(Vc::goal_count).sum(),
        }
    }
}

/// Computes `wlp(cmd, post)` following Figure 5:
///
/// ```text
/// wlp(assume l:F, G)        = F[l] --> G
/// wlp(assert l:F from h, G) = F[l;h] /\ G
/// wlp(havoc x, G)           = forall x. G
/// wlp(skip, G)              = G
/// wlp(c1 [] c2, G)          = wlp(c1, G) /\ wlp(c2, G)
/// wlp(c1 ; c2, G)           = wlp(c1, wlp(c2, G))
/// ```
pub fn wlp(cmd: &Simple, post: Vc) -> Vc {
    match cmd {
        Simple::Assume(hyp) => {
            if post == Vc::True {
                // F --> true is true; keep the tree small.
                Vc::True
            } else {
                Vc::Implies {
                    hyp: hyp.clone(),
                    rest: Arc::new(post),
                }
            }
        }
        Simple::Assert { fact, from } => Vc::and(vec![
            Vc::Goal {
                form: fact.form.clone(),
                label: fact.label.clone(),
                from: from.clone(),
            },
            post,
        ]),
        Simple::Havoc(vars) => {
            if post == Vc::True {
                Vc::True
            } else {
                Vc::ForallVars {
                    vars: vars.clone(),
                    rest: Arc::new(post),
                }
            }
        }
        Simple::Skip => post,
        Simple::Choice(a, b) => Vc::and(vec![wlp(a, post.clone()), wlp(b, post)]),
        Simple::Seq(parts) => {
            let mut acc = post;
            for part in parts.iter().rev() {
                acc = wlp(part, acc);
            }
            acc
        }
    }
}

/// Convenience wrapper: the verification condition of a command with
/// postcondition `true` (all obligations come from the `assert`s inside).
pub fn vc_of(cmd: &Simple) -> Vc {
    wlp(cmd, Vc::True)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;

    fn f(s: &str) -> Form {
        parse_form(s).unwrap()
    }

    #[test]
    fn wlp_of_assume_assert_sequence() {
        let cmd = Simple::seq(vec![
            Simple::assume("Pre", f("0 <= x")),
            Simple::assert("Post", f("0 <= x + 1")),
        ]);
        let vc = vc_of(&cmd);
        assert_eq!(vc.goal_count(), 1);
        let form = vc.to_form();
        assert_eq!(form.to_string(), "0 <= x --> 0 <= x + 1");
    }

    #[test]
    fn wlp_of_choice_conjoins_branches() {
        let cmd = Simple::Choice(
            Box::new(Simple::assert("A", f("p"))),
            Box::new(Simple::assert("B", f("q"))),
        );
        let vc = vc_of(&cmd);
        assert_eq!(vc.goal_count(), 2);
        assert_eq!(vc.to_form().to_string(), "p & q");
    }

    #[test]
    fn wlp_of_havoc_quantifies() {
        let cmd = Simple::seq(vec![
            Simple::Havoc(vec!["x".into()]),
            Simple::assert("G", f("x = x")),
        ]);
        let vc = vc_of(&cmd);
        assert!(matches!(vc, Vc::ForallVars { .. }));
    }

    #[test]
    fn assume_false_discharges_later_goals() {
        // The local assumption base pattern: the assume false at the end of a
        // branch means nothing after the branch contributes obligations
        // through it — but obligations *inside* the branch are kept.
        let cmd = Simple::seq(vec![
            Simple::Choice(
                Box::new(Simple::Skip),
                Box::new(Simple::seq(vec![
                    Simple::assert("Lemma", f("p")),
                    Simple::assume("end", Form::FALSE),
                ])),
            ),
            Simple::assert("Post", f("q")),
        ]);
        let vc = vc_of(&cmd);
        // The skip branch contributes the `q` obligation, the proof branch
        // contributes `p` plus a vacuous copy of `q` guarded by `false`.
        assert_eq!(vc.goal_count(), 3);
        let form = vc.to_form();
        // The branch contributes `p /\ (false --> q)`; the skip branch `q`.
        assert!(form.to_string().contains("p"));
        assert!(form.to_string().contains("q"));
    }

    #[test]
    fn wlp_of_sequence_threads_assumptions_left_to_right() {
        // assume A ; assert G1 ; assume B ; assert G2 — G1 must see only A,
        // G2 must see both A and B.
        let cmd = Simple::seq(vec![
            Simple::assume("A", f("0 <= a")),
            Simple::assert("G1", f("p")),
            Simple::assume("B", f("0 <= b")),
            Simple::assert("G2", f("q")),
        ]);
        let sequents = crate::split::split_all(&vc_of(&cmd));
        assert_eq!(sequents.len(), 2);
        let labels = |goal: &str| -> Vec<String> {
            sequents
                .iter()
                .find(|s| s.goal_label == goal)
                .unwrap_or_else(|| panic!("no sequent for {goal}"))
                .assumptions
                .iter()
                .map(|a| a.label.clone())
                .collect()
        };
        assert_eq!(labels("G1"), vec!["A"]);
        assert_eq!(labels("G2"), vec!["A", "B"]);
    }

    #[test]
    fn translated_assignment_threads_the_value_to_the_postcondition() {
        // x := y ; assert Post: x = y.  The translation goes through two
        // havoc/assume pairs, so the split sequent must prove the renamed
        // incarnation of x equal to y from the two `assign_x` equations.
        use crate::cmd::Ext;
        use crate::translate::{translate_ext, TranslateCtx};

        let cmd = Ext::seq(vec![
            Ext::Assign("x".into(), f("y")),
            Ext::assert("Post", f("x = y")),
        ]);
        let mut ctx = TranslateCtx::new();
        let sequents = crate::split::split_all(&vc_of(&translate_ext(&cmd, &mut ctx)));
        assert_eq!(sequents.len(), 1);
        let sequent = &sequents[0];
        assert_eq!(sequent.goal_label, "Post");
        assert!(sequent.assumptions.iter().all(|a| a.label == "assign_x"));
        assert_eq!(sequent.assumptions.len(), 2);
        let Form::Eq(lhs, rhs) = &sequent.goal else {
            panic!("expected equality goal, got {:?}", sequent.goal);
        };
        let Form::Var(lhs) = lhs.as_ref() else {
            panic!("expected variable lhs, got {lhs:?}");
        };
        assert!(
            lhs.starts_with('x') && lhs != "x",
            "x must be a fresh incarnation: {lhs}"
        );
        assert_eq!(
            rhs.as_ref(),
            &f("y"),
            "the assigned value must reach the goal"
        );
    }

    #[test]
    fn translated_conditional_guards_each_branch() {
        // if (p) assert T: q else assert E: r — each branch's obligation
        // must be guarded by the condition with the right polarity.
        use crate::cmd::Ext;
        use crate::translate::{translate_ext, TranslateCtx};

        let cmd = Ext::If(
            f("p"),
            Box::new(Ext::assert("T", f("q"))),
            Box::new(Ext::assert("E", f("r"))),
        );
        let mut ctx = TranslateCtx::new();
        let sequents = crate::split::split_all(&vc_of(&translate_ext(&cmd, &mut ctx)));
        assert_eq!(sequents.len(), 2);
        let branch = |goal: &str| {
            sequents
                .iter()
                .find(|s| s.goal_label == goal)
                .unwrap_or_else(|| panic!("no sequent for {goal}"))
        };
        let then_branch = branch("T");
        assert!(then_branch
            .assumptions
            .iter()
            .any(|a| a.label == "IfCond" && a.form == f("p")));
        let else_branch = branch("E");
        assert!(else_branch
            .assumptions
            .iter()
            .any(|a| a.label == "IfNegCond" && a.form == Form::not(f("p"))));
    }

    #[test]
    fn trivial_postcondition_prunes_assumes_and_havocs() {
        let cmd = Simple::seq(vec![
            Simple::Havoc(vec!["x".into()]),
            Simple::assume("h", f("x = 1")),
        ]);
        assert_eq!(vc_of(&cmd), Vc::True);
    }
}
