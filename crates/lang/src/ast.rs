//! Abstract syntax of the surface language.
//!
//! Program expressions are represented directly as logic formulas
//! ([`ipl_logic::Form`]): the expression sub-language of the imperative code
//! is a strict subset of the specification logic, which is what makes the
//! integration of code and proofs seamless (the same terms appear in
//! assignments, conditions, contracts and proof commands).

use ipl_logic::{Form, Sort};
use serde::{Deserialize, Serialize};

/// Program-level types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Type {
    /// Mathematical integers (Java `int` without overflow, as in Jahob).
    Int,
    /// Booleans.
    Bool,
    /// Object references.
    Obj,
    /// Arrays of object references.
    ObjArray,
    /// Arrays of integers.
    IntArray,
}

impl Type {
    /// The logic sort of values of this type.
    pub fn sort(self) -> Sort {
        match self {
            Type::Int => Sort::Int,
            Type::Bool => Sort::Bool,
            Type::Obj | Type::ObjArray | Type::IntArray => Sort::Obj,
        }
    }
}

/// A module: the unit of verification (the counterpart of a Java class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Concrete state variables.
    pub state_vars: Vec<(String, Type)>,
    /// Heap fields of node objects (function-valued).
    pub fields: Vec<(String, Type)>,
    /// Specification variables with their sorts.
    pub specvars: Vec<(String, Sort)>,
    /// Abstraction functions: `vardef name = "definition"`.
    pub vardefs: Vec<(String, Form)>,
    /// Named class invariants.
    pub invariants: Vec<(String, Form)>,
    /// Methods.
    pub methods: Vec<Method>,
}

impl Module {
    /// Looks up a method by name.
    pub fn method(&self, name: &str) -> Option<&Method> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// The definition of a specification variable, if it has one.
    pub fn vardef(&self, name: &str) -> Option<&Form> {
        self.vardefs.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    /// Number of executable statements across all methods (the "Java
    /// Statements" column of Table 1).
    pub fn statement_count(&self) -> usize {
        self.methods.iter().map(|m| count_stmts(&m.body)).sum()
    }
}

fn count_stmts(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::If(_, then_branch, else_branch) => {
                1 + count_stmts(then_branch) + count_stmts(else_branch)
            }
            Stmt::While { body, .. } => 1 + count_stmts(body),
            Stmt::Proof(_) | Stmt::Assert { .. } | Stmt::Assume { .. } | Stmt::Ghost(..) => 0,
            _ => 1,
        })
        .sum()
}

/// A method with its contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Method {
    /// Method name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, Type)>,
    /// Named return values.
    pub returns: Vec<(String, Type)>,
    /// Preconditions (conjoined).
    pub requires: Vec<Form>,
    /// Names of state variables (concrete or specification) the method may
    /// modify.
    pub modifies: Vec<String>,
    /// Postconditions (conjoined).
    pub ensures: Vec<Form>,
    /// The body.
    pub body: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Local variable declaration with optional initialiser.
    VarDecl(String, Type, Option<Form>),
    /// Assignment to a local or state variable.
    Assign(String, Form),
    /// Heap field assignment `obj.field := value`.
    FieldAssign {
        /// The field name.
        field: String,
        /// The object expression.
        object: Form,
        /// The assigned value.
        value: Form,
    },
    /// Array element assignment `array[index] := value`.
    ArrayAssign {
        /// The array expression.
        array: Form,
        /// The index expression.
        index: Form,
        /// The assigned value.
        value: Form,
    },
    /// Allocation `target := new();` — a fresh, non-null object whose fields
    /// are default-initialised, added to the `alloc` specification set.
    New(String),
    /// Ghost assignment to a specification variable.
    Ghost(String, Form),
    /// Procedure call `[target :=] call method(args);`.
    Call {
        /// Optional variable receiving the (first) return value.
        target: Option<String>,
        /// Callee name (within the same module).
        method: String,
        /// Argument expressions.
        args: Vec<Form>,
    },
    /// Conditional.
    If(Form, Vec<Stmt>, Vec<Stmt>),
    /// While loop with invariants.
    While {
        /// Loop condition.
        cond: Form,
        /// Loop invariants (conjoined, labelled `LoopInv`).
        invariants: Vec<Form>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `assert "F" [from ...];`
    Assert {
        /// Optional label.
        label: Option<String>,
        /// The asserted formula.
        form: Form,
        /// Optional assumption-base restriction.
        from: Option<Vec<String>>,
    },
    /// `assume "F";` (trusted).
    Assume {
        /// Optional label.
        label: Option<String>,
        /// The assumed formula.
        form: Form,
    },
    /// A proof-language statement.
    Proof(ProofStmt),
    /// `skip;`
    Skip,
}

/// The integrated proof language statements (surface form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProofStmt {
    /// `note L: "F" [from a, b];`
    Note {
        /// Fact name.
        label: String,
        /// The formula.
        form: Form,
        /// Optional `from` clause.
        from: Option<Vec<String>>,
    },
    /// `localize L: "F" { ... }`
    Localize {
        /// Exported fact name.
        label: String,
        /// The exported formula.
        form: Form,
        /// The nested proof.
        body: Vec<ProofStmt>,
    },
    /// `assuming H: "F" show L: "G" { ... }`
    Assuming {
        /// Hypothesis name.
        hyp_label: String,
        /// Hypothesis.
        hyp: Form,
        /// Conclusion name.
        label: String,
        /// Conclusion.
        goal: Form,
        /// The nested proof.
        body: Vec<ProofStmt>,
    },
    /// `mp L: "F --> G";`
    Mp {
        /// Conclusion name.
        label: String,
        /// The implication.
        implication: Form,
    },
    /// `cases "F1", "F2" for L: "G";`
    Cases {
        /// The cases.
        cases: Vec<Form>,
        /// Goal name.
        label: String,
        /// The goal.
        goal: Form,
    },
    /// `showedCase i of L: "F1 | F2";`
    ShowedCase {
        /// 1-based index of the proved disjunct.
        index: usize,
        /// Name of the disjunction.
        label: String,
        /// The disjunction.
        disjunction: Form,
    },
    /// `byContradiction L: "F" { ... }`
    ByContradiction {
        /// Fact name.
        label: String,
        /// The fact.
        form: Form,
        /// The nested refutation.
        body: Vec<ProofStmt>,
    },
    /// `contradiction L: "F";`
    Contradiction {
        /// Label.
        label: String,
        /// The contradictory formula.
        form: Form,
    },
    /// `instantiate L: "forall ..." with "t", "u";`
    Instantiate {
        /// Fact name.
        label: String,
        /// The universally quantified formula.
        forall: Form,
        /// Instantiation terms.
        terms: Vec<Form>,
    },
    /// `witness "t" for L: "exists ...";`
    Witness {
        /// Witness terms.
        terms: Vec<Form>,
        /// Fact name.
        label: String,
        /// The existential formula.
        exists: Form,
    },
    /// `pickWitness x: obj for H: "F" show L: "G" { ... }`
    PickWitness {
        /// Witness variables with sorts.
        vars: Vec<(String, Sort)>,
        /// Hypothesis name.
        hyp_label: String,
        /// The constraint.
        hyp: Form,
        /// Goal name.
        label: String,
        /// The goal.
        goal: Form,
        /// The nested proof.
        body: Vec<ProofStmt>,
    },
    /// `pickAny x: obj show L: "G" { ... }`
    PickAny {
        /// Arbitrary variables with sorts.
        vars: Vec<(String, Sort)>,
        /// Fact name.
        label: String,
        /// The goal.
        goal: Form,
        /// The nested proof.
        body: Vec<ProofStmt>,
    },
    /// `induct L: "F" over n { ... }`
    Induct {
        /// Fact name.
        label: String,
        /// The induction formula.
        form: Form,
        /// The induction variable.
        var: String,
        /// The nested proof.
        body: Vec<ProofStmt>,
    },
    /// `fix x: obj suchThat "F" show L: "G" { ...statements... }`
    Fix {
        /// Fixed variables with sorts.
        vars: Vec<(String, Sort)>,
        /// The constraint.
        such_that: Form,
        /// Fact name.
        label: String,
        /// The goal.
        goal: Form,
        /// The enclosed statements (may modify program state).
        body: Vec<Stmt>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;

    #[test]
    fn types_map_to_sorts() {
        assert_eq!(Type::Int.sort(), Sort::Int);
        assert_eq!(Type::Bool.sort(), Sort::Bool);
        assert_eq!(Type::Obj.sort(), Sort::Obj);
        assert_eq!(Type::ObjArray.sort(), Sort::Obj);
    }

    #[test]
    fn statement_count_ignores_specifications() {
        let module = Module {
            name: "M".into(),
            state_vars: vec![("x".into(), Type::Int)],
            fields: vec![],
            specvars: vec![],
            vardefs: vec![],
            invariants: vec![],
            methods: vec![Method {
                name: "m".into(),
                params: vec![],
                returns: vec![],
                requires: vec![],
                modifies: vec!["x".into()],
                ensures: vec![],
                body: vec![
                    Stmt::Assign("x".into(), parse_form("x + 1").unwrap()),
                    Stmt::Proof(ProofStmt::Note {
                        label: "L".into(),
                        form: parse_form("x = x").unwrap(),
                        from: None,
                    }),
                    Stmt::If(
                        parse_form("x < 10").unwrap(),
                        vec![Stmt::Assign("x".into(), parse_form("0").unwrap())],
                        vec![],
                    ),
                ],
            }],
        };
        assert_eq!(module.statement_count(), 3);
        assert!(module.method("m").is_some());
        assert!(module.method("absent").is_none());
    }
}
