//! # `ipl-lang` — the annotated imperative surface language
//!
//! The paper integrates its proof language into Java; this crate provides the
//! analogous imperative surface language for the reproduction.  A *module*
//! (the counterpart of a Java class, verified against its own fields, exactly
//! as Jahob verifies one instance's representation) declares:
//!
//! * concrete state variables (`var size: int;`, `var first: obj;`,
//!   `var elements: objarray;`),
//! * heap fields of node objects (`field next: obj;`), modelled as
//!   function-valued variables updated with function-update expressions,
//! * specification variables (`specvar content: set<int * obj>;`) with
//!   optional `vardef` abstraction functions,
//! * class invariants, and
//! * methods with `requires` / `modifies` / `ensures` contracts whose bodies
//!   mix ordinary statements with the **integrated proof language**
//!   statements (`note`, `localize`, `assuming`, `mp`, `cases`, `showedCase`,
//!   `byContradiction`, `contradiction`, `instantiate`, `witness`,
//!   `pickWitness`, `pickAny`, `induct`, `fix`).
//!
//! Specification formulas are written between quotes in the ASCII syntax of
//! [`ipl_logic::parser`], mirroring Jahob's string annotations.
//!
//! The crate provides the [`parser`] for this language, the [`ast`], and the
//! [`lower`] pass that produces extended guarded commands (`ipl_gcl::Ext`)
//! per method, together with the module's sort environment and the statistics
//! reported in Table 1 of the paper.
//!
//! ```
//! let source = r#"
//! module Counter {
//!   var value: int;
//!   invariant NonNeg: "0 <= value";
//!   method increment()
//!     modifies value
//!     ensures "value = old(value) + 1"
//!   {
//!     value := value + 1;
//!   }
//! }
//! "#;
//! let module = ipl_lang::parser::parse_module(source).unwrap();
//! assert_eq!(module.name, "Counter");
//! let lowered = ipl_lang::lower::lower_module(&module).unwrap();
//! assert_eq!(lowered.methods.len(), 1);
//! ```

pub mod ast;
pub mod lower;
pub mod parser;

pub use ast::{Method, Module, ProofStmt, Stmt, Type};
pub use lower::{lower_module, LoweredMethod, LoweredModule};
pub use parser::parse_module;
