//! Lowering of surface modules into extended guarded commands.
//!
//! Each method becomes one [`Ext`] command that assumes the precondition,
//! class invariants and `vardef` definitions, executes the lowered body, and
//! asserts the postcondition and invariants — exactly the verification
//! condition structure described in Section 3 of the paper.  The lowering
//! also:
//!
//! * models field assignment as function update and array assignment as
//!   update of the global array state,
//! * maintains `vardef` specification variables as ghost state (re-havocked
//!   and re-defined whenever a concrete dependency changes), keeping the
//!   `content_def`-style named facts available for `from` clauses,
//! * desugars calls into `assert pre ; havoc(modifies) ; assume post`,
//! * snapshots `old` state at method entry, and
//! * maps every integrated proof statement onto its `ipl-gcl` counterpart.

use crate::ast::{Method, Module, ProofStmt, Stmt, Type};
use ipl_gcl::cmd::{ConstructCounts, Ext, Proof};
use ipl_logic::normal::eliminate_old;
use ipl_logic::subst::{free_vars, substitute};
use ipl_logic::{Form, Labeled, Sort, SortEnv};
use std::collections::{BTreeSet, HashMap};

/// Lowering error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering error: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

/// A lowered method: the verification command plus statistics.
#[derive(Debug, Clone)]
pub struct LoweredMethod {
    /// Method name.
    pub name: String,
    /// The extended guarded command encoding the whole method obligation.
    pub command: Ext,
    /// Proof-construct counts (Table 1 columns).
    pub counts: ConstructCounts,
    /// Sort environment for this method (module environment plus locals).
    pub env: SortEnv,
}

/// A lowered module.
#[derive(Debug, Clone)]
pub struct LoweredModule {
    /// Module name.
    pub name: String,
    /// Module-level sort environment.
    pub env: SortEnv,
    /// Lowered methods.
    pub methods: Vec<LoweredMethod>,
    /// The surface module (kept for statistics).
    pub module: Module,
}

/// Lowers every method of a module.
pub fn lower_module(module: &Module) -> Result<LoweredModule, LowerError> {
    let env = module_env(module);
    let mut methods = Vec::new();
    for method in &module.methods {
        methods.push(lower_method(module, method, &env)?);
    }
    Ok(LoweredModule {
        name: module.name.clone(),
        env,
        methods,
        module: module.clone(),
    })
}

/// Builds the sort environment of a module.
pub fn module_env(module: &Module) -> SortEnv {
    let mut env = SortEnv::new();
    env.declare_var("arrayState", Sort::obj_array_state());
    env.declare_var("intArrayState", Sort::int_array_state());
    env.declare_var("alloc", Sort::obj_set());
    env.declare_fun(
        "reach",
        vec![Sort::obj_field(), Sort::Obj, Sort::Obj],
        Sort::Bool,
    );
    env.declare_fun("arraylength", vec![Sort::Obj], Sort::Int);
    for (name, ty) in &module.state_vars {
        env.declare_var(name.clone(), ty.sort());
    }
    for (name, ty) in &module.fields {
        env.declare_var(name.clone(), Sort::Fn(vec![Sort::Obj], Box::new(ty.sort())));
    }
    for (name, sort) in &module.specvars {
        env.declare_var(name.clone(), sort.clone());
    }
    env
}

/// The state of one method lowering.
struct Lowerer<'a> {
    module: &'a Module,
    env: SortEnv,
    /// Names of `intarray`-typed variables (their reads/writes go through
    /// `intArrayState`).
    int_arrays: BTreeSet<String>,
    /// Renaming applied to `old(e)` occurrences: state var -> snapshot var.
    old_map: HashMap<String, String>,
    /// Fresh-name counter.
    counter: usize,
}

impl<'a> Lowerer<'a> {
    fn fresh(&mut self, stem: &str) -> String {
        self.counter += 1;
        format!("{stem}__{}", self.counter)
    }

    /// Applies `old` elimination and int-array rewriting to a specification
    /// formula or program expression.
    fn fix_form(&self, form: &Form) -> Form {
        let renamed = eliminate_old(form, &|v| {
            self.old_map
                .get(v)
                .cloned()
                .unwrap_or_else(|| v.to_string())
        });
        self.rewrite_arrays(&renamed)
    }

    /// Redirects reads of `intarray` variables through `intArrayState`.
    fn rewrite_arrays(&self, form: &Form) -> Form {
        let rewritten = form.map_children(|c| self.rewrite_arrays(c));
        if let Form::ArrayRead(state, arr, idx) = &rewritten {
            if matches!(state.as_ref(), Form::Var(s) if s == "arrayState") {
                if let Form::Var(name) = arr.as_ref() {
                    if self.int_arrays.contains(name) {
                        return Form::array_read(
                            Form::var("intArrayState"),
                            (**arr).clone(),
                            (**idx).clone(),
                        );
                    }
                }
            }
        }
        rewritten
    }

    /// The vardef-dependency maintenance commands to emit after `changed`
    /// concrete variables have been assigned or havocked.
    fn vardef_updates(&self, changed: &[String], skip: &BTreeSet<String>) -> Vec<Ext> {
        let mut out = Vec::new();
        for (specvar, definition) in &self.module.vardefs {
            if skip.contains(specvar) {
                continue;
            }
            let definition = self.rewrite_arrays(definition);
            let deps = free_vars(&definition);
            if changed.iter().any(|c| deps.contains(c)) {
                out.push(Ext::Havoc(vec![specvar.clone()], None));
                out.push(Ext::assume(
                    format!("{specvar}_def"),
                    Form::eq(Form::var(specvar.clone()), definition),
                ));
            }
        }
        out
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<Ext, LowerError> {
        let mut out = Vec::new();
        for stmt in stmts {
            out.push(self.lower_stmt(stmt)?);
        }
        Ok(Ext::seq(out))
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<Ext, LowerError> {
        match stmt {
            Stmt::Skip => Ok(Ext::Skip),
            Stmt::VarDecl(name, ty, init) => {
                self.env.declare_var(name.clone(), ty.sort());
                if *ty == Type::IntArray {
                    self.int_arrays.insert(name.clone());
                }
                match init {
                    Some(value) => Ok(self.assign(name, value)),
                    None => Ok(Ext::Skip),
                }
            }
            Stmt::Assign(name, value) => Ok(self.assign(name, value)),
            Stmt::FieldAssign {
                field,
                object,
                value,
            } => {
                let updated = Form::field_write(
                    Form::var(field.clone()),
                    self.fix_form(object),
                    self.fix_form(value),
                );
                Ok(Ext::seq(
                    std::iter::once(Ext::Assign(field.clone(), updated))
                        .chain(self.vardef_updates(std::slice::from_ref(field), &BTreeSet::new()))
                        .collect::<Vec<_>>(),
                ))
            }
            Stmt::ArrayAssign {
                array,
                index,
                value,
            } => {
                let state = match array {
                    Form::Var(name) if self.int_arrays.contains(name) => "intArrayState",
                    _ => "arrayState",
                };
                let updated = Form::array_write(
                    Form::var(state),
                    self.fix_form(array),
                    self.fix_form(index),
                    self.fix_form(value),
                );
                Ok(Ext::seq(
                    std::iter::once(Ext::Assign(state.to_string(), updated))
                        .chain(self.vardef_updates(&[state.to_string()], &BTreeSet::new()))
                        .collect::<Vec<_>>(),
                ))
            }
            Stmt::New(target) => {
                let mut freshness = vec![
                    Form::neq(Form::var(target.clone()), Form::Null),
                    Form::not(Form::elem(Form::var(target.clone()), Form::var("alloc"))),
                ];
                for (field, ty) in &self.module.fields {
                    let default = match ty {
                        Type::Int => Form::int(0),
                        Type::Bool => Form::FALSE,
                        _ => Form::Null,
                    };
                    freshness.push(Form::eq(
                        Form::field_read(Form::var(field.clone()), Form::var(target.clone())),
                        default,
                    ));
                }
                let alloc_update = Ext::Assign(
                    "alloc".to_string(),
                    Form::Union(
                        std::sync::Arc::new(Form::var("alloc")),
                        std::sync::Arc::new(Form::FiniteSet(vec![Form::var(target.clone())])),
                    ),
                );
                let mut cmds = vec![
                    Ext::Havoc(vec![target.clone()], None),
                    Ext::assume("new_object", Form::and(freshness)),
                    alloc_update,
                ];
                cmds.extend(self.vardef_updates(&["alloc".to_string()], &BTreeSet::new()));
                Ok(Ext::seq(cmds))
            }
            Stmt::Ghost(name, value) => Ok(Ext::Assign(name.clone(), self.fix_form(value))),
            Stmt::Call {
                target,
                method,
                args,
            } => self.lower_call(target.as_deref(), method, args),
            Stmt::If(cond, then_branch, else_branch) => Ok(Ext::If(
                self.fix_form(cond),
                Box::new(self.lower_stmts(then_branch)?),
                Box::new(self.lower_stmts(else_branch)?),
            )),
            Stmt::While {
                cond,
                invariants,
                body,
            } => {
                let invariant = Form::and(invariants.iter().map(|i| self.fix_form(i)));
                Ok(Ext::Loop {
                    invariant: Labeled::new("LoopInv", invariant),
                    before: Box::new(Ext::Skip),
                    cond: self.fix_form(cond),
                    body: Box::new(self.lower_stmts(body)?),
                })
            }
            Stmt::Assert { label, form, from } => Ok(Ext::Assert {
                fact: Labeled::new(
                    label.clone().unwrap_or_else(|| "Assert".to_string()),
                    self.fix_form(form),
                ),
                from: from.clone(),
            }),
            Stmt::Assume { label, form } => Ok(Ext::assume(
                label.clone().unwrap_or_else(|| "Assume".to_string()),
                self.fix_form(form),
            )),
            Stmt::Proof(ProofStmt::Fix {
                vars,
                such_that,
                label,
                goal,
                body,
            }) => {
                for (name, sort) in vars {
                    self.env.declare_var(name.clone(), sort.clone());
                }
                Ok(Ext::Fix {
                    vars: vars.clone(),
                    such_that: self.fix_form(such_that),
                    body: Box::new(self.lower_stmts(body)?),
                    label: label.clone(),
                    goal: self.fix_form(goal),
                })
            }
            Stmt::Proof(proof) => Ok(Ext::Proof(self.lower_proof(proof)?)),
        }
    }

    fn assign(&mut self, name: &str, value: &Form) -> Ext {
        let value = self.fix_form(value);
        let mut cmds = vec![Ext::Assign(name.to_string(), value)];
        cmds.extend(self.vardef_updates(&[name.to_string()], &BTreeSet::new()));
        Ext::seq(cmds)
    }

    fn lower_call(
        &mut self,
        target: Option<&str>,
        callee_name: &str,
        args: &[Form],
    ) -> Result<Ext, LowerError> {
        let callee = self.module.method(callee_name).ok_or_else(|| LowerError {
            message: format!("call to unknown method `{callee_name}`"),
        })?;
        if args.len() != callee.params.len() {
            return Err(LowerError {
                message: format!(
                    "call to `{callee_name}` passes {} arguments but it declares {}",
                    args.len(),
                    callee.params.len()
                ),
            });
        }
        // Parameter and return-value substitution.
        let mut subst_map: HashMap<String, Form> = HashMap::new();
        for ((param, _), arg) in callee.params.iter().zip(args) {
            subst_map.insert(param.clone(), self.fix_form(arg));
        }
        let mut result_vars = Vec::new();
        for (i, (ret, ty)) in callee.returns.iter().enumerate() {
            let var = if i == 0 {
                match target {
                    Some(t) => t.to_string(),
                    None => self.fresh(&format!("{callee_name}_{ret}")),
                }
            } else {
                self.fresh(&format!("{callee_name}_{ret}"))
            };
            self.env.declare_var(var.clone(), ty.sort());
            subst_map.insert(ret.clone(), Form::var(var.clone()));
            result_vars.push(var);
        }

        let mut cmds = Vec::new();
        // Precondition.
        let pre = Form::and(
            callee
                .requires
                .iter()
                .map(|r| substitute(&self.fix_form(r), &subst_map)),
        );
        if !pre.is_true() {
            cmds.push(Ext::Assert {
                fact: Labeled::new(format!("{callee_name}_pre"), pre),
                from: None,
            });
        }
        // Snapshot the modified state for `old` references in the callee's
        // postcondition.
        let mut call_old: HashMap<String, String> = HashMap::new();
        for modified in &callee.modifies {
            let snapshot = self.fresh(&format!("{modified}_before"));
            if let Some(sort) = self.env.var_sort(modified).cloned() {
                self.env.declare_var(snapshot.clone(), sort);
            }
            cmds.push(Ext::assume(
                format!("{modified}_snapshot"),
                Form::eq(Form::var(snapshot.clone()), Form::var(modified.clone())),
            ));
            call_old.insert(modified.clone(), snapshot);
        }
        // Havoc the modified variables and the result variables.
        let mut havocked: Vec<String> = callee.modifies.clone();
        havocked.extend(result_vars);
        cmds.push(Ext::Havoc(havocked, None));
        // Postcondition.
        let post = Form::and(callee.ensures.iter().map(|e| {
            let rewritten = self.rewrite_arrays(e);
            let old_eliminated = eliminate_old(&rewritten, &|v| {
                call_old.get(v).cloned().unwrap_or_else(|| v.to_string())
            });
            substitute(&old_eliminated, &subst_map)
        }));
        cmds.push(Ext::assume(format!("{callee_name}_post"), post));
        // Re-establish vardef definitions for specification variables whose
        // concrete dependencies were modified but which the callee does not
        // itself describe.
        let skip: BTreeSet<String> = callee.modifies.iter().cloned().collect();
        cmds.extend(self.vardef_updates(&callee.modifies, &skip));
        Ok(Ext::seq(cmds))
    }

    fn lower_proof(&mut self, proof: &ProofStmt) -> Result<Proof, LowerError> {
        Ok(match proof {
            ProofStmt::Note { label, form, from } => Proof::Note {
                label: label.clone(),
                form: self.fix_form(form),
                from: from.clone(),
            },
            ProofStmt::Localize { label, form, body } => Proof::Localize {
                body: Box::new(self.lower_proofs(body)?),
                label: label.clone(),
                form: self.fix_form(form),
            },
            ProofStmt::Assuming {
                hyp_label,
                hyp,
                label,
                goal,
                body,
            } => Proof::Assuming {
                hyp_label: hyp_label.clone(),
                hyp: self.fix_form(hyp),
                body: Box::new(self.lower_proofs(body)?),
                concl_label: label.clone(),
                concl: self.fix_form(goal),
            },
            ProofStmt::Mp { label, implication } => {
                let fixed = self.fix_form(implication);
                match fixed {
                    Form::Implies(hyp, concl) => Proof::Mp {
                        label: label.clone(),
                        hyp: Form::take(hyp),
                        concl: Form::take(concl),
                    },
                    other => {
                        return Err(LowerError {
                            message: format!("mp {label} expects an implication, got {other}"),
                        })
                    }
                }
            }
            ProofStmt::Cases { cases, label, goal } => Proof::Cases {
                cases: cases.iter().map(|c| self.fix_form(c)).collect(),
                label: label.clone(),
                goal: self.fix_form(goal),
            },
            ProofStmt::ShowedCase {
                index,
                label,
                disjunction,
            } => {
                let fixed = self.fix_form(disjunction);
                let disjuncts = match fixed {
                    Form::Or(parts) => parts,
                    other => vec![other],
                };
                Proof::ShowedCase {
                    index: *index,
                    label: label.clone(),
                    disjuncts,
                }
            }
            ProofStmt::ByContradiction { label, form, body } => Proof::ByContradiction {
                label: label.clone(),
                form: self.fix_form(form),
                body: Box::new(self.lower_proofs(body)?),
            },
            ProofStmt::Contradiction { label, form } => Proof::Contradiction {
                label: label.clone(),
                form: self.fix_form(form),
            },
            ProofStmt::Instantiate {
                label,
                forall,
                terms,
            } => Proof::Instantiate {
                label: label.clone(),
                forall: self.fix_form(forall),
                terms: terms.iter().map(|t| self.fix_form(t)).collect(),
            },
            ProofStmt::Witness {
                terms,
                label,
                exists,
            } => Proof::Witness {
                terms: terms.iter().map(|t| self.fix_form(t)).collect(),
                label: label.clone(),
                exists: self.fix_form(exists),
            },
            ProofStmt::PickWitness {
                vars,
                hyp_label,
                hyp,
                label,
                goal,
                body,
            } => {
                for (name, sort) in vars {
                    self.env.declare_var(name.clone(), sort.clone());
                }
                Proof::PickWitness {
                    vars: vars.clone(),
                    hyp_label: hyp_label.clone(),
                    hyp: self.fix_form(hyp),
                    body: Box::new(self.lower_proofs(body)?),
                    concl_label: label.clone(),
                    concl: self.fix_form(goal),
                }
            }
            ProofStmt::PickAny {
                vars,
                label,
                goal,
                body,
            } => {
                for (name, sort) in vars {
                    self.env.declare_var(name.clone(), sort.clone());
                }
                Proof::PickAny {
                    vars: vars.clone(),
                    body: Box::new(self.lower_proofs(body)?),
                    label: label.clone(),
                    goal: self.fix_form(goal),
                }
            }
            ProofStmt::Induct {
                label,
                form,
                var,
                body,
            } => {
                self.env.declare_var(var.clone(), Sort::Int);
                Proof::Induct {
                    label: label.clone(),
                    form: self.fix_form(form),
                    var: var.clone(),
                    body: Box::new(self.lower_proofs(body)?),
                }
            }
            ProofStmt::Fix { .. } => {
                return Err(LowerError {
                    message: "fix may not be nested inside a pure proof block".to_string(),
                })
            }
        })
    }

    fn lower_proofs(&mut self, proofs: &[ProofStmt]) -> Result<Proof, LowerError> {
        let mut out = Vec::new();
        for proof in proofs {
            out.push(self.lower_proof(proof)?);
        }
        Ok(Proof::seq(out))
    }
}

/// Collects the state variables referenced under `old(...)` in a formula.
fn old_vars(form: &Form, out: &mut BTreeSet<String>) {
    match form {
        Form::Old(inner) => out.extend(free_vars(inner)),
        other => other.for_each_child(|c| old_vars(c, out)),
    }
}

fn collect_old_vars_stmt(stmt: &Stmt, out: &mut BTreeSet<String>) {
    match stmt {
        Stmt::While {
            invariants, body, ..
        } => {
            invariants.iter().for_each(|i| old_vars(i, out));
            body.iter().for_each(|s| collect_old_vars_stmt(s, out));
        }
        Stmt::If(_, then_branch, else_branch) => {
            then_branch
                .iter()
                .for_each(|s| collect_old_vars_stmt(s, out));
            else_branch
                .iter()
                .for_each(|s| collect_old_vars_stmt(s, out));
        }
        Stmt::Assert { form, .. } | Stmt::Assume { form, .. } => old_vars(form, out),
        Stmt::Proof(proof) => collect_old_vars_proof(proof, out),
        _ => {}
    }
}

fn collect_old_vars_proof(proof: &ProofStmt, out: &mut BTreeSet<String>) {
    match proof {
        ProofStmt::Note { form, .. }
        | ProofStmt::Contradiction { form, .. }
        | ProofStmt::Induct { form, .. } => old_vars(form, out),
        ProofStmt::Localize { form, body, .. } => {
            old_vars(form, out);
            body.iter().for_each(|p| collect_old_vars_proof(p, out));
        }
        ProofStmt::Assuming {
            hyp, goal, body, ..
        } => {
            old_vars(hyp, out);
            old_vars(goal, out);
            body.iter().for_each(|p| collect_old_vars_proof(p, out));
        }
        ProofStmt::Mp { implication, .. } => old_vars(implication, out),
        ProofStmt::Cases { cases, goal, .. } => {
            cases.iter().for_each(|c| old_vars(c, out));
            old_vars(goal, out);
        }
        ProofStmt::ShowedCase { disjunction, .. } => old_vars(disjunction, out),
        ProofStmt::ByContradiction { form, body, .. } => {
            old_vars(form, out);
            body.iter().for_each(|p| collect_old_vars_proof(p, out));
        }
        ProofStmt::Instantiate { forall, terms, .. } => {
            old_vars(forall, out);
            terms.iter().for_each(|t| old_vars(t, out));
        }
        ProofStmt::Witness { exists, terms, .. } => {
            old_vars(exists, out);
            terms.iter().for_each(|t| old_vars(t, out));
        }
        ProofStmt::PickWitness {
            hyp, goal, body, ..
        } => {
            old_vars(hyp, out);
            old_vars(goal, out);
            body.iter().for_each(|p| collect_old_vars_proof(p, out));
        }
        ProofStmt::PickAny { goal, body, .. } => {
            old_vars(goal, out);
            body.iter().for_each(|p| collect_old_vars_proof(p, out));
        }
        ProofStmt::Fix {
            such_that,
            goal,
            body,
            ..
        } => {
            old_vars(such_that, out);
            old_vars(goal, out);
            body.iter().for_each(|s| collect_old_vars_stmt(s, out));
        }
    }
}

/// Collects every variable the method body can assign (directly, through a
/// heap or array write, an allocation, or a call's modifies clause).
fn collect_assigned_vars(stmts: &[Stmt], module: &Module, out: &mut BTreeSet<String>) {
    for stmt in stmts {
        match stmt {
            Stmt::VarDecl(name, _, _) | Stmt::Assign(name, _) | Stmt::Ghost(name, _) => {
                out.insert(name.clone());
            }
            Stmt::FieldAssign { field, .. } => {
                out.insert(field.clone());
            }
            Stmt::ArrayAssign { .. } => {
                // Which of the two array states changes depends on the array's
                // element type; include both (over-approximation is safe).
                out.insert("arrayState".to_string());
                out.insert("intArrayState".to_string());
            }
            Stmt::New(name) => {
                out.insert(name.clone());
                out.insert("alloc".to_string());
            }
            Stmt::Call { target, method, .. } => {
                out.extend(target.iter().cloned());
                if let Some(callee) = module.methods.iter().find(|m| &m.name == method) {
                    out.extend(callee.modifies.iter().cloned());
                }
            }
            Stmt::If(_, then_branch, else_branch) => {
                collect_assigned_vars(then_branch, module, out);
                collect_assigned_vars(else_branch, module, out);
            }
            Stmt::While { body, .. } => collect_assigned_vars(body, module, out),
            Stmt::Assert { .. } | Stmt::Assume { .. } | Stmt::Proof(_) | Stmt::Skip => {}
        }
    }
}

/// The variables whose value can differ between method entry and a later
/// program point: the modifies clause, everything assigned in the body, and
/// (transitively) every specification variable whose `vardef` depends on one
/// of those — the maintenance havocs re-assign them.
fn mutable_vars(method: &Method, module: &Module) -> BTreeSet<String> {
    let mut mutable: BTreeSet<String> = method.modifies.iter().cloned().collect();
    collect_assigned_vars(&method.body, module, &mut mutable);
    loop {
        let mut changed = false;
        for (specvar, definition) in &module.vardefs {
            if !mutable.contains(specvar)
                && free_vars(definition).iter().any(|v| mutable.contains(v))
            {
                mutable.insert(specvar.clone());
                changed = true;
            }
        }
        if !changed {
            return mutable;
        }
    }
}

/// Lowers one method into its verification command.
pub fn lower_method(
    module: &Module,
    method: &Method,
    module_env: &SortEnv,
) -> Result<LoweredMethod, LowerError> {
    let mut env = module_env.clone();
    for (name, ty) in method.params.iter().chain(method.returns.iter()) {
        env.declare_var(name.clone(), ty.sort());
    }

    // Which variables are referenced under old(...)?
    let mut olds = BTreeSet::new();
    method.ensures.iter().for_each(|e| old_vars(e, &mut olds));
    method
        .body
        .iter()
        .for_each(|s| collect_old_vars_stmt(s, &mut olds));

    // Snapshot only variables that can actually change: for an immutable
    // variable `old(v)` is just `v`, and renaming it anyway would force every
    // `from` clause to name the bridging `v_old = v` assumption explicitly.
    let mutable = mutable_vars(method, module);
    let mut old_map = HashMap::new();
    for var in olds.iter().filter(|v| mutable.contains(*v)) {
        let snapshot = format!("{var}_old");
        if let Some(sort) = env.var_sort(var).cloned() {
            env.declare_var(snapshot.clone(), sort);
        }
        old_map.insert(var.clone(), snapshot);
    }

    let int_arrays: BTreeSet<String> = module
        .state_vars
        .iter()
        .chain(method.params.iter())
        .chain(method.returns.iter())
        .filter(|(_, ty)| *ty == Type::IntArray)
        .map(|(name, _)| name.clone())
        .collect();

    let mut lowerer = Lowerer {
        module,
        env,
        int_arrays,
        old_map: old_map.clone(),
        counter: 0,
    };

    let mut prologue = Vec::new();
    let requires = Form::and(method.requires.iter().map(|r| lowerer.fix_form(r)));
    if !requires.is_true() {
        prologue.push(Ext::assume("Precondition", requires));
    }
    for (name, invariant) in &module.invariants {
        prologue.push(Ext::assume(name.clone(), lowerer.rewrite_arrays(invariant)));
    }
    for (specvar, definition) in &module.vardefs {
        prologue.push(Ext::assume(
            format!("{specvar}_def"),
            Form::eq(
                Form::var(specvar.clone()),
                lowerer.rewrite_arrays(definition),
            ),
        ));
    }
    for (var, snapshot) in &old_map {
        prologue.push(Ext::assume(
            format!("old_{var}"),
            Form::eq(Form::var(snapshot.clone()), Form::var(var.clone())),
        ));
    }

    let body = lowerer.lower_stmts(&method.body)?;

    let mut epilogue = Vec::new();
    let ensures = Form::and(method.ensures.iter().map(|e| lowerer.fix_form(e)));
    if !ensures.is_true() {
        epilogue.push(Ext::Assert {
            fact: Labeled::new("Postcondition", ensures),
            from: None,
        });
    }
    for (name, invariant) in &module.invariants {
        epilogue.push(Ext::Assert {
            fact: Labeled::new(name.clone(), lowerer.rewrite_arrays(invariant)),
            from: None,
        });
    }

    let command = Ext::seq(
        prologue
            .into_iter()
            .chain(std::iter::once(body))
            .chain(epilogue)
            .collect::<Vec<_>>(),
    );
    let counts = command.count_constructs();
    Ok(LoweredMethod {
        name: method.name.clone(),
        command,
        counts,
        env: lowerer.env,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    const SOURCE: &str = r#"
        module Stack {
          var size: int;
          var elements: objarray;
          specvar content: set<int * obj>;
          vardef content = "{(i, n) : int * obj | 0 <= i & i < size & n = elements[i]}";
          specvar csize: int;
          vardef csize = "size";
          invariant SizeNonNeg: "0 <= size";

          method push(o: obj)
            modifies content, csize, size, arrayState
            ensures "csize = old(csize) + 1 & (old(csize), o) in content"
          {
            elements[size] := o;
            size := size + 1;
            note Grew: "size = old(size) + 1" from assign_size, old_size;
          }

          method helper()
            modifies size
            ensures "size = old(size)"
          {
            skip;
          }

          method caller()
            modifies size
          {
            call helper();
          }
        }
    "#;

    #[test]
    fn lowers_module_and_builds_environment() {
        let module = parse_module(SOURCE).unwrap();
        let lowered = lower_module(&module).unwrap();
        assert_eq!(lowered.methods.len(), 3);
        assert_eq!(lowered.env.var_sort("size"), Some(&Sort::Int));
        assert_eq!(lowered.env.var_sort("content"), Some(&Sort::int_obj_set()));
        assert_eq!(
            lowered.env.var_sort("arrayState"),
            Some(&Sort::obj_array_state())
        );
    }

    #[test]
    fn push_updates_vardefs_after_each_assignment() {
        let module = parse_module(SOURCE).unwrap();
        let lowered = lower_module(&module).unwrap();
        let push = &lowered.methods[0];
        let text = format!("{:?}", push.command);
        assert!(
            text.contains("content_def"),
            "content definition re-established"
        );
        assert!(
            text.contains("csize_def"),
            "csize definition re-established"
        );
        assert!(
            text.contains("ArrayWrite"),
            "array assignment modelled as state update"
        );
        assert_eq!(push.counts.note, 1);
        assert_eq!(push.counts.note_with_from, 1);
    }

    #[test]
    fn old_references_are_snapshotted() {
        let module = parse_module(SOURCE).unwrap();
        let lowered = lower_module(&module).unwrap();
        let push = &lowered.methods[0];
        let text = format!("{:?}", push.command);
        assert!(
            text.contains("csize_old"),
            "old(csize) handled via snapshot: {text}"
        );
        assert!(!text.contains("Old("), "no unresolved old() remains");
    }

    #[test]
    fn calls_are_desugared_into_contract_reasoning() {
        let module = parse_module(SOURCE).unwrap();
        let lowered = lower_module(&module).unwrap();
        let caller = lowered.methods.iter().find(|m| m.name == "caller").unwrap();
        let text = format!("{:?}", caller.command);
        assert!(text.contains("helper_post"), "callee postcondition assumed");
        assert!(
            text.contains("size_before") || text.contains("size_snapshot"),
            "modified state snapshotted for old(): {text}"
        );
    }

    #[test]
    fn unknown_callee_is_an_error() {
        let source = r#"
            module M {
              var x: int;
              method m() { call missing(); }
            }
        "#;
        let module = parse_module(source).unwrap();
        let err = lower_module(&module).unwrap_err();
        assert!(err.message.contains("unknown method"));
    }

    #[test]
    fn strip_proofs_removes_notes_but_keeps_code() {
        let module = parse_module(SOURCE).unwrap();
        let lowered = lower_module(&module).unwrap();
        let push = &lowered.methods[0];
        let stripped = push.command.strip_proofs();
        assert_eq!(stripped.count_constructs().note, 0);
        assert!(format!("{stripped:?}").contains("ArrayWrite"));
    }
}
