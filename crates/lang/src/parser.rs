//! Parser for the annotated surface language.
//!
//! Specification formulas appear between double quotes and are parsed with
//! [`ipl_logic::parser::parse_form`]; everything else (declarations,
//! statements, program expressions) is parsed here.  Program expressions are
//! lowered directly to [`Form`] terms.

use crate::ast::{Method, Module, ProofStmt, Stmt, Type};
use ipl_logic::parser::parse_form;
use ipl_logic::{Form, Sort};
use std::fmt;

/// Parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Description of the problem.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
    /// Byte-offset range `[start, end)` into the source, when known.
    pub span: Option<(usize, usize)>,
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LangError {}

/// Parses a module from source text.
///
/// # Errors
///
/// Returns a [`LangError`] describing the first syntax error.
pub fn parse_module(source: &str) -> Result<Module, LangError> {
    let tokens = lex(source)?;
    let mut p = P { tokens, pos: 0 };
    let module = p.module()?;
    p.expect_eof()?;
    Ok(module)
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Punct(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct Sp {
    tok: Tok,
    line: usize,
    /// Byte offset of the token's first character.
    start: usize,
    /// Byte offset one past the token's last character.
    end: usize,
}

const PUNCTS: &[&str] = &[
    ":=", "==", "!=", "<=", ">=", "&&", "||", "(", ")", "{", "}", "[", "]", ",", ";", ":", ".",
    "<", ">", "=", "+", "-", "*", "!",
];

fn lex(source: &str) -> Result<Vec<Sp>, LangError> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if source[i..].starts_with("//") {
            while i < bytes.len() && bytes[i] as char != '\n' {
                i += 1;
            }
            continue;
        }
        if source[i..].starts_with("/*") {
            while i < bytes.len() && !source[i..].starts_with("*/") {
                if bytes[i] as char == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 2.min(bytes.len() - i);
            continue;
        }
        if c == '"' {
            let open = i;
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] as char != '"' {
                if bytes[j] as char == '\n' {
                    line += 1;
                }
                j += 1;
            }
            if j >= bytes.len() {
                return Err(LangError {
                    message: "unterminated string".into(),
                    line,
                    span: Some((open, bytes.len())),
                });
            }
            out.push(Sp {
                tok: Tok::Str(source[start..j].to_string()),
                line,
                start: open,
                end: j + 1,
            });
            i = j + 1;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let value: i64 = source[start..i].parse().map_err(|_| LangError {
                message: format!("integer out of range: {}", &source[start..i]),
                line,
                span: Some((start, i)),
            })?;
            out.push(Sp {
                tok: Tok::Int(value),
                line,
                start,
                end: i,
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                } else {
                    break;
                }
            }
            out.push(Sp {
                tok: Tok::Ident(source[start..i].to_string()),
                line,
                start,
                end: i,
            });
            continue;
        }
        for p in PUNCTS {
            if source[i..].starts_with(p) {
                out.push(Sp {
                    tok: Tok::Punct(p),
                    line,
                    start: i,
                    end: i + p.len(),
                });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LangError {
            message: format!("unexpected character {c:?}"),
            line,
            span: Some((i, i + c.len_utf8())),
        });
    }
    out.push(Sp {
        tok: Tok::Eof,
        line,
        start: bytes.len(),
        end: bytes.len(),
    });
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct P {
    tokens: Vec<Sp>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn span(&self) -> (usize, usize) {
        let sp = &self.tokens[self.pos];
        (sp.start, sp.end)
    }

    fn err(&self, message: impl Into<String>) -> LangError {
        LangError {
            message: message.into(),
            line: self.line(),
            span: Some(self.span()),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), LangError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(name) if name == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), LangError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Tok::Ident(name) => Ok(name),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn formula(&mut self) -> Result<Form, LangError> {
        let line = self.line();
        let span = self.span();
        match self.bump() {
            Tok::Str(text) => parse_form(&text).map_err(|e| LangError {
                message: format!("in formula {text:?}: {e}"),
                line,
                span: Some(span),
            }),
            other => Err(self.err(format!("expected a quoted formula, found {other:?}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), LangError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(name) if name == kw)
    }

    // -----------------------------------------------------------------------
    // Declarations
    // -----------------------------------------------------------------------

    fn module(&mut self) -> Result<Module, LangError> {
        self.expect_kw("module")?;
        let name = self.ident()?;
        self.expect_punct("{")?;
        let mut module = Module {
            name,
            state_vars: Vec::new(),
            fields: Vec::new(),
            specvars: Vec::new(),
            vardefs: Vec::new(),
            invariants: Vec::new(),
            methods: Vec::new(),
        };
        loop {
            if self.eat_punct("}") {
                break;
            }
            if self.eat_kw("var") {
                let name = self.ident()?;
                self.expect_punct(":")?;
                let ty = self.ty()?;
                self.expect_punct(";")?;
                module.state_vars.push((name, ty));
            } else if self.eat_kw("field") {
                let name = self.ident()?;
                self.expect_punct(":")?;
                let ty = self.ty()?;
                self.expect_punct(";")?;
                module.fields.push((name, ty));
            } else if self.eat_kw("specvar") {
                let name = self.ident()?;
                self.expect_punct(":")?;
                let sort = self.sort()?;
                self.expect_punct(";")?;
                module.specvars.push((name, sort));
            } else if self.eat_kw("vardef") {
                let name = self.ident()?;
                self.expect_punct("=")?;
                let form = self.formula()?;
                self.expect_punct(";")?;
                module.vardefs.push((name, form));
            } else if self.eat_kw("invariant") {
                let name = self.ident()?;
                self.expect_punct(":")?;
                let form = self.formula()?;
                self.expect_punct(";")?;
                module.invariants.push((name, form));
            } else if self.peek_kw("method") {
                module.methods.push(self.method()?);
            } else {
                return Err(self.err(format!("unexpected token {:?} in module body", self.peek())));
            }
        }
        Ok(module)
    }

    fn ty(&mut self) -> Result<Type, LangError> {
        let line = self.line();
        let span = self.span();
        let name = self.ident()?;
        match name.as_str() {
            "int" => Ok(Type::Int),
            "bool" => Ok(Type::Bool),
            "obj" => Ok(Type::Obj),
            "objarray" => Ok(Type::ObjArray),
            "intarray" => Ok(Type::IntArray),
            other => Err(LangError {
                message: format!("unknown type `{other}`"),
                line,
                span: Some(span),
            }),
        }
    }

    fn sort(&mut self) -> Result<Sort, LangError> {
        let mut parts = vec![self.sort_atom()?];
        while self.eat_punct("*") {
            parts.push(self.sort_atom()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Sort::Tuple(parts)
        })
    }

    fn sort_atom(&mut self) -> Result<Sort, LangError> {
        if self.eat_punct("(") {
            let s = self.sort()?;
            self.expect_punct(")")?;
            return Ok(s);
        }
        let line = self.line();
        let span = self.span();
        let name = self.ident()?;
        match name.as_str() {
            "int" => Ok(Sort::Int),
            "bool" => Ok(Sort::Bool),
            "obj" => Ok(Sort::Obj),
            "set" => {
                self.expect_punct("<")?;
                let elem = self.sort()?;
                self.expect_punct(">")?;
                Ok(Sort::Set(Box::new(elem)))
            }
            other => Err(LangError {
                message: format!("unknown sort `{other}`"),
                line,
                span: Some(span),
            }),
        }
    }

    fn method(&mut self) -> Result<Method, LangError> {
        self.expect_kw("method")?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let pname = self.ident()?;
                self.expect_punct(":")?;
                let ty = self.ty()?;
                params.push((pname, ty));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let mut returns = Vec::new();
        if self.eat_kw("returns") {
            self.expect_punct("(")?;
            loop {
                let rname = self.ident()?;
                self.expect_punct(":")?;
                let ty = self.ty()?;
                returns.push((rname, ty));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let mut requires = Vec::new();
        let mut modifies = Vec::new();
        let mut ensures = Vec::new();
        loop {
            if self.eat_kw("requires") {
                requires.push(self.formula()?);
            } else if self.eat_kw("ensures") {
                ensures.push(self.formula()?);
            } else if self.eat_kw("modifies") {
                loop {
                    modifies.push(self.ident()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        let body = self.block()?;
        Ok(Method {
            name,
            params,
            returns,
            requires,
            modifies,
            ensures,
            body,
        })
    }

    // -----------------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        if self.eat_kw("skip") {
            self.expect_punct(";")?;
            return Ok(Stmt::Skip);
        }
        if self.eat_kw("var") {
            let name = self.ident()?;
            self.expect_punct(":")?;
            let ty = self.ty()?;
            let init = if self.eat_punct(":=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt::VarDecl(name, ty, init));
        }
        if self.eat_kw("ghost") {
            let name = self.ident()?;
            self.expect_punct(":=")?;
            let form = self.formula()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Ghost(name, form));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_branch = self.block()?;
            let else_branch = if self.eat_kw("else") {
                if self.peek_kw("if") {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then_branch, else_branch));
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let mut invariants = Vec::new();
            while self.eat_kw("invariant") {
                invariants.push(self.formula()?);
            }
            let body = self.block()?;
            return Ok(Stmt::While {
                cond,
                invariants,
                body,
            });
        }
        if self.eat_kw("assert") {
            let (label, form) = self.labeled_formula()?;
            let from = self.parse_from_clause()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Assert { label, form, from });
        }
        if self.eat_kw("assume") {
            let (label, form) = self.labeled_formula()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Assume { label, form });
        }
        if self.eat_kw("call") {
            let method = self.ident()?;
            let args = self.call_args()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Call {
                target: None,
                method,
                args,
            });
        }
        if let Some(proof) = self.proof_stmt()? {
            return Ok(Stmt::Proof(proof));
        }
        // Assignment forms.
        let lhs = self.postfix_expr()?;
        self.expect_punct(":=")?;
        if self.eat_kw("new") {
            self.expect_punct("(")?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return match lhs {
                Form::Var(name) => Ok(Stmt::New(name)),
                other => Err(self.err(format!("cannot allocate into {other}"))),
            };
        }
        if self.eat_kw("call") {
            let method = self.ident()?;
            let args = self.call_args()?;
            self.expect_punct(";")?;
            return match lhs {
                Form::Var(name) => Ok(Stmt::Call {
                    target: Some(name),
                    method,
                    args,
                }),
                other => Err(self.err(format!("cannot assign call result to {other}"))),
            };
        }
        let rhs = self.expr()?;
        self.expect_punct(";")?;
        match lhs {
            Form::Var(name) => Ok(Stmt::Assign(name, rhs)),
            Form::FieldRead(field, object) => match Form::take(field) {
                Form::Var(field) => Ok(Stmt::FieldAssign {
                    field,
                    object: Form::take(object),
                    value: rhs,
                }),
                other => Err(self.err(format!("invalid field in assignment: {other}"))),
            },
            Form::ArrayRead(_, array, index) => Ok(Stmt::ArrayAssign {
                array: Form::take(array),
                index: Form::take(index),
                value: rhs,
            }),
            other => Err(self.err(format!("invalid assignment target {other}"))),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Form>, LangError> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            loop {
                args.push(self.expr()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(args)
    }

    /// `Label: "F"` or just `"F"`.
    fn labeled_formula(&mut self) -> Result<(Option<String>, Form), LangError> {
        if let Tok::Ident(_) = self.peek() {
            let label = self.ident()?;
            self.expect_punct(":")?;
            let form = self.formula()?;
            Ok((Some(label), form))
        } else {
            Ok((None, self.formula()?))
        }
    }

    fn parse_from_clause(&mut self) -> Result<Option<Vec<String>>, LangError> {
        if !self.eat_kw("from") {
            return Ok(None);
        }
        let mut names = vec![self.ident()?];
        while self.eat_punct(",") {
            names.push(self.ident()?);
        }
        Ok(Some(names))
    }

    // -----------------------------------------------------------------------
    // Proof statements
    // -----------------------------------------------------------------------

    fn proof_stmt(&mut self) -> Result<Option<ProofStmt>, LangError> {
        let keyword = match self.peek() {
            Tok::Ident(name) => name.clone(),
            _ => return Ok(None),
        };
        let proof = match keyword.as_str() {
            "note" => {
                self.bump();
                let label = self.ident()?;
                self.expect_punct(":")?;
                let form = self.formula()?;
                let from = self.parse_from_clause()?;
                self.expect_punct(";")?;
                ProofStmt::Note { label, form, from }
            }
            "localize" => {
                self.bump();
                let label = self.ident()?;
                self.expect_punct(":")?;
                let form = self.formula()?;
                let body = self.proof_block()?;
                ProofStmt::Localize { label, form, body }
            }
            "assuming" => {
                self.bump();
                let hyp_label = self.ident()?;
                self.expect_punct(":")?;
                let hyp = self.formula()?;
                self.expect_kw("show")?;
                let label = self.ident()?;
                self.expect_punct(":")?;
                let goal = self.formula()?;
                let body = self.proof_block()?;
                ProofStmt::Assuming {
                    hyp_label,
                    hyp,
                    label,
                    goal,
                    body,
                }
            }
            "mp" => {
                self.bump();
                let label = self.ident()?;
                self.expect_punct(":")?;
                let implication = self.formula()?;
                self.expect_punct(";")?;
                ProofStmt::Mp { label, implication }
            }
            "cases" => {
                self.bump();
                let mut cases = vec![self.formula()?];
                while self.eat_punct(",") {
                    cases.push(self.formula()?);
                }
                self.expect_kw("for")?;
                let label = self.ident()?;
                self.expect_punct(":")?;
                let goal = self.formula()?;
                self.expect_punct(";")?;
                ProofStmt::Cases { cases, label, goal }
            }
            "showedCase" => {
                self.bump();
                let index = match self.bump() {
                    Tok::Int(value) if value >= 1 => value as usize,
                    other => return Err(self.err(format!("expected case index, found {other:?}"))),
                };
                self.expect_kw("of")?;
                let label = self.ident()?;
                self.expect_punct(":")?;
                let disjunction = self.formula()?;
                self.expect_punct(";")?;
                ProofStmt::ShowedCase {
                    index,
                    label,
                    disjunction,
                }
            }
            "byContradiction" => {
                self.bump();
                let label = self.ident()?;
                self.expect_punct(":")?;
                let form = self.formula()?;
                let body = self.proof_block()?;
                ProofStmt::ByContradiction { label, form, body }
            }
            "contradiction" => {
                self.bump();
                let label = self.ident()?;
                self.expect_punct(":")?;
                let form = self.formula()?;
                self.expect_punct(";")?;
                ProofStmt::Contradiction { label, form }
            }
            "instantiate" => {
                self.bump();
                let label = self.ident()?;
                self.expect_punct(":")?;
                let forall = self.formula()?;
                self.expect_kw("with")?;
                let mut terms = vec![self.formula()?];
                while self.eat_punct(",") {
                    terms.push(self.formula()?);
                }
                self.expect_punct(";")?;
                ProofStmt::Instantiate {
                    label,
                    forall,
                    terms,
                }
            }
            "witness" => {
                self.bump();
                let mut terms = vec![self.formula()?];
                while self.eat_punct(",") {
                    terms.push(self.formula()?);
                }
                self.expect_kw("for")?;
                let label = self.ident()?;
                self.expect_punct(":")?;
                let exists = self.formula()?;
                self.expect_punct(";")?;
                ProofStmt::Witness {
                    terms,
                    label,
                    exists,
                }
            }
            "pickWitness" => {
                self.bump();
                let vars = self.binder_list()?;
                self.expect_kw("for")?;
                let hyp_label = self.ident()?;
                self.expect_punct(":")?;
                let hyp = self.formula()?;
                self.expect_kw("show")?;
                let label = self.ident()?;
                self.expect_punct(":")?;
                let goal = self.formula()?;
                let body = self.proof_block()?;
                ProofStmt::PickWitness {
                    vars,
                    hyp_label,
                    hyp,
                    label,
                    goal,
                    body,
                }
            }
            "pickAny" => {
                self.bump();
                let vars = self.binder_list()?;
                self.expect_kw("show")?;
                let label = self.ident()?;
                self.expect_punct(":")?;
                let goal = self.formula()?;
                let body = self.proof_block()?;
                ProofStmt::PickAny {
                    vars,
                    label,
                    goal,
                    body,
                }
            }
            "induct" => {
                self.bump();
                let label = self.ident()?;
                self.expect_punct(":")?;
                let form = self.formula()?;
                self.expect_kw("over")?;
                let var = self.ident()?;
                let body = self.proof_block()?;
                ProofStmt::Induct {
                    label,
                    form,
                    var,
                    body,
                }
            }
            "fix" => {
                self.bump();
                let vars = self.binder_list()?;
                self.expect_kw("suchThat")?;
                let such_that = self.formula()?;
                self.expect_kw("show")?;
                let label = self.ident()?;
                self.expect_punct(":")?;
                let goal = self.formula()?;
                let body = self.block()?;
                ProofStmt::Fix {
                    vars,
                    such_that,
                    label,
                    goal,
                    body,
                }
            }
            _ => return Ok(None),
        };
        Ok(Some(proof))
    }

    fn binder_list(&mut self) -> Result<Vec<(String, Sort)>, LangError> {
        let mut out = Vec::new();
        loop {
            let name = self.ident()?;
            self.expect_punct(":")?;
            let sort = self.sort()?;
            out.push((name, sort));
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(out)
    }

    fn proof_block(&mut self) -> Result<Vec<ProofStmt>, LangError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            match self.proof_stmt()? {
                Some(p) => out.push(p),
                None => {
                    return Err(self.err(format!(
                        "expected a proof statement, found {:?}",
                        self.peek()
                    )))
                }
            }
        }
        Ok(out)
    }

    // -----------------------------------------------------------------------
    // Program expressions (lowered directly to logic terms)
    // -----------------------------------------------------------------------

    fn expr(&mut self) -> Result<Form, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Form, LangError> {
        let mut parts = vec![self.and_expr()?];
        while self.eat_punct("||") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            Form::or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Form, LangError> {
        let mut parts = vec![self.not_expr()?];
        while self.eat_punct("&&") {
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            Form::and(parts)
        })
    }

    fn not_expr(&mut self) -> Result<Form, LangError> {
        if self.eat_punct("!") {
            return Ok(Form::not(self.not_expr()?));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Form, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Punct("==") => "==",
            Tok::Punct("!=") => "!=",
            Tok::Punct("<=") => "<=",
            Tok::Punct(">=") => ">=",
            Tok::Punct("<") => "<",
            Tok::Punct(">") => ">",
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(match op {
            "==" => Form::eq(lhs, rhs),
            "!=" => Form::neq(lhs, rhs),
            "<" => Form::lt(lhs, rhs),
            "<=" => Form::le(lhs, rhs),
            ">" => Form::lt(rhs, lhs),
            ">=" => Form::le(rhs, lhs),
            _ => unreachable!("operator list above"),
        })
    }

    fn add_expr(&mut self) -> Result<Form, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_punct("+") {
                lhs = Form::add(lhs, self.mul_expr()?);
            } else if self.eat_punct("-") {
                lhs = Form::sub(lhs, self.mul_expr()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Form, LangError> {
        let mut lhs = self.unary_expr()?;
        while self.eat_punct("*") {
            lhs = Form::mul(lhs, self.unary_expr()?);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Form, LangError> {
        if self.eat_punct("-") {
            let inner = self.unary_expr()?;
            return Ok(match inner {
                Form::Int(value) => Form::Int(-value),
                other => Form::Neg(std::sync::Arc::new(other)),
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Form, LangError> {
        let mut base = self.primary_expr()?;
        loop {
            if self.eat_punct(".") {
                let field = self.ident()?;
                base = Form::field_read(Form::var(field), base);
            } else if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                base = Form::array_read(Form::var("arrayState"), base, idx);
            } else {
                return Ok(base);
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Form, LangError> {
        match self.bump() {
            Tok::Int(value) => Ok(Form::Int(value)),
            Tok::Ident(name) => match name.as_str() {
                "true" => Ok(Form::TRUE),
                "false" => Ok(Form::FALSE),
                "null" => Ok(Form::Null),
                _ => Ok(Form::Var(name)),
            },
            Tok::Punct("(") => {
                let inner = self.expr()?;
                self.expect_punct(")")?;
                Ok(inner)
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
        // A tiny module exercising most declaration forms.
        module Counter {
          var value: int;
          var items: objarray;
          field next: obj;
          specvar content: set<obj>;
          vardef content = "{x : obj | reach(next, first, x) & x ~= null}";
          specvar csize: int;
          invariant NonNeg: "0 <= value";

          method increment(amount: int) returns (result: int)
            requires "0 <= amount"
            modifies value
            ensures "value = old(value) + amount & result = value"
          {
            value := value + amount;
            note Bumped: "old(value) <= value" from NonNeg, Precondition;
            result := value;
          }

          method reset()
            modifies value
            ensures "value = 0"
          {
            if (value > 0) {
              value := 0;
            } else {
              skip;
            }
          }
        }
    "#;

    #[test]
    fn parses_module_declarations() {
        let module = parse_module(COUNTER).unwrap();
        assert_eq!(module.name, "Counter");
        assert_eq!(module.state_vars.len(), 2);
        assert_eq!(module.fields, vec![("next".to_string(), Type::Obj)]);
        assert_eq!(module.specvars.len(), 2);
        assert_eq!(module.vardefs.len(), 1);
        assert_eq!(module.invariants.len(), 1);
        assert_eq!(module.methods.len(), 2);
        let increment = module.method("increment").unwrap();
        assert_eq!(increment.params, vec![("amount".to_string(), Type::Int)]);
        assert_eq!(increment.returns, vec![("result".to_string(), Type::Int)]);
        assert_eq!(increment.modifies, vec!["value".to_string()]);
        assert_eq!(increment.requires.len(), 1);
        assert_eq!(increment.ensures.len(), 1);
    }

    #[test]
    fn parses_statements_and_note() {
        let module = parse_module(COUNTER).unwrap();
        let increment = module.method("increment").unwrap();
        assert_eq!(increment.body.len(), 3);
        assert!(matches!(increment.body[0], Stmt::Assign(..)));
        match &increment.body[1] {
            Stmt::Proof(ProofStmt::Note { label, from, .. }) => {
                assert_eq!(label, "Bumped");
                assert_eq!(from.as_ref().unwrap().len(), 2);
            }
            other => panic!("expected a note, got {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let module = parse_module(COUNTER).unwrap();
        let reset = module.method("reset").unwrap();
        match &reset.body[0] {
            Stmt::If(cond, then_branch, else_branch) => {
                assert_eq!(cond.to_string(), "0 < value");
                assert_eq!(then_branch.len(), 1);
                assert_eq!(else_branch.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_loops_calls_and_heap_statements() {
        let source = r#"
            module List {
              var first: obj;
              var size: int;
              field next: obj;

              method insert(o: obj)
                modifies first, size
              {
                var node: obj;
                node := new();
                node.next := first;
                first := node;
                size := size + 1;
              }

              method sum(values: intarray, count: int) returns (total: int)
                requires "0 <= count"
              {
                var i: int := 0;
                total := 0;
                while (i < count)
                  invariant "0 <= i & i <= count"
                {
                  total := total + values[i];
                  i := i + 1;
                }
                call insert(null);
              }
            }
        "#;
        let module = parse_module(source).unwrap();
        let insert = module.method("insert").unwrap();
        assert!(matches!(insert.body[1], Stmt::New(_)));
        assert!(matches!(insert.body[2], Stmt::FieldAssign { .. }));
        let sum = module.method("sum").unwrap();
        match &sum.body[2] {
            Stmt::While {
                invariants, body, ..
            } => {
                assert_eq!(invariants.len(), 1);
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected while, got {other:?}"),
        }
        assert!(matches!(sum.body[3], Stmt::Call { target: None, .. }));
    }

    #[test]
    fn parses_all_proof_statements() {
        let source = r#"
            module Proofs {
              var x: int;
              method demo()
              {
                note A: "x = x";
                assert "x = x" from A;
                localize B: "x = x" { note Inner: "x = x"; }
                assuming H: "0 <= x" show C: "0 <= x + 1" { note Step: "0 <= x + 1"; }
                mp D: "0 <= x --> 0 <= x";
                cases "x < 0", "0 <= x" for E: "x = x";
                showedCase 1 of F: "x = x | x < 0";
                byContradiction G: "x = x" { contradiction Inner2: "x = x"; }
                instantiate I: "forall n:int. n = n" with "x";
                witness "x" for J: "exists n:int. n = n";
                pickWitness w: int for K: "w = x" show L: "x = x" { note N2: "x = x"; }
                pickAny a: obj show M: "a = a" { note N3: "a = a"; }
                induct P: "0 <= n" over n { note N4: "0 <= 0"; }
                fix b: obj suchThat "b = b" show Q: "b = b" {
                  x := x + 1;
                  note N5: "b = b";
                }
              }
            }
        "#;
        let module = parse_module(source).unwrap();
        let demo = module.method("demo").unwrap();
        let proof_count = demo
            .body
            .iter()
            .filter(|s| matches!(s, Stmt::Proof(_) | Stmt::Assert { .. }))
            .count();
        assert_eq!(proof_count, 14);
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let err = parse_module("module M {\n  var x: unknown;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown type"));

        let err = parse_module("module M {\n  invariant I: \"x &\";\n}").unwrap_err();
        assert!(err.message.contains("in formula"));
    }

    #[test]
    fn reports_errors_with_byte_spans() {
        let source = "module M {\n  var x: unknown;\n}";
        let err = parse_module(source).unwrap_err();
        let (start, end) = err.span.unwrap();
        assert_eq!(&source[start..end], "unknown");

        let source = "module M {\n  invariant I: \"x &\";\n}";
        let err = parse_module(source).unwrap_err();
        let (start, end) = err.span.unwrap();
        assert_eq!(&source[start..end], "\"x &\"");

        let source = "module M { var x: int; @ }";
        let err = parse_module(source).unwrap_err();
        let (start, end) = err.span.unwrap();
        assert_eq!(&source[start..end], "@");

        // Display output is unchanged by the span addition.
        assert_eq!(
            parse_module("module M {\n  var x: unknown;\n}")
                .unwrap_err()
                .to_string(),
            "line 2: unknown type `unknown`"
        );
    }
}
