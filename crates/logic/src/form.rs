//! The formula / term AST of the specification logic.
//!
//! A single recursive type [`Form`] represents both terms (integer, object,
//! set and tuple valued expressions) and formulas (boolean valued
//! expressions), mirroring the higher-order-logic style of Jahob
//! specifications.  Smart constructors perform lightweight simplification so
//! that the verification-condition generator produces compact formulas.
//!
//! Recursive positions are [`Arc`]-shared: cloning a formula copies pointers,
//! never subtrees, which makes `Form` cheap to clone, `Send + Sync` for the
//! parallel verification driver, and amenable to hash-consing (see
//! [`crate::intern`]).  Structural equality gets a pointer-identity fast path
//! for free: the standard library compares `Arc<T: Eq>` by allocation first.
//! N-ary children (`And`, `Or`, argument lists) stay in a `Vec` because the
//! smart constructors consume and flatten them; their elements still share
//! everything below the first level.

use crate::sort::Sort;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A bound variable together with its sort.
pub type Binding = (String, Sort);

/// Formulas and terms of the specification logic.
///
/// Boolean-sorted values are formulas; other values are terms.  The
/// distinction is enforced (after parsing) by sort inference in
/// [`crate::sorts`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Form {
    // ----- atoms -----
    /// A variable (program variable, specification variable, bound variable,
    /// or skolem constant).
    Var(String),
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// The `null` object reference.
    Null,
    /// The empty set.
    EmptySet,

    // ----- propositional structure -----
    /// Negation.
    Not(Arc<Form>),
    /// N-ary conjunction (flattened).
    And(Vec<Form>),
    /// N-ary disjunction (flattened).
    Or(Vec<Form>),
    /// Implication `lhs --> rhs`.
    Implies(Arc<Form>, Arc<Form>),
    /// Bi-implication `lhs <-> rhs`.
    Iff(Arc<Form>, Arc<Form>),
    /// If-then-else on terms or formulas.
    Ite(Arc<Form>, Arc<Form>, Arc<Form>),

    // ----- equality and arithmetic -----
    /// Equality at any sort.
    Eq(Arc<Form>, Arc<Form>),
    /// Strict less-than on integers.
    Lt(Arc<Form>, Arc<Form>),
    /// Less-or-equal on integers.
    Le(Arc<Form>, Arc<Form>),
    /// Integer addition.
    Add(Arc<Form>, Arc<Form>),
    /// Integer subtraction.
    Sub(Arc<Form>, Arc<Form>),
    /// Integer multiplication.
    Mul(Arc<Form>, Arc<Form>),
    /// Integer negation.
    Neg(Arc<Form>),

    // ----- quantifiers -----
    /// Universal quantification.
    Forall(Vec<Binding>, Arc<Form>),
    /// Existential quantification.
    Exists(Vec<Binding>, Arc<Form>),

    // ----- applications, fields and arrays -----
    /// Application of a named (uninterpreted or interpreted) function or
    /// predicate symbol, e.g. `reach(next, root, x)`.
    App(String, Vec<Form>),
    /// Application of a function-valued term (typically a field variable) to
    /// an argument: `x.next` is `FieldRead(Var "next", Var "x")`.
    FieldRead(Arc<Form>, Arc<Form>),
    /// Function update `f[at := val]`, the image of a field after assignment.
    FieldWrite(Arc<Form>, Arc<Form>, Arc<Form>),
    /// Read from the global array state: `arr[i]` is
    /// `ArrayRead(Var "arrayState", arr, i)`.
    ArrayRead(Arc<Form>, Arc<Form>, Arc<Form>),
    /// Array-state update: `arrayState[(arr, i) := v]`.
    ArrayWrite(Arc<Form>, Arc<Form>, Arc<Form>, Arc<Form>),

    // ----- sets and tuples -----
    /// Element membership `elem in set`.
    Elem(Arc<Form>, Arc<Form>),
    /// Finite set literal `{a, b, c}`.
    FiniteSet(Vec<Form>),
    /// Set union.
    Union(Arc<Form>, Arc<Form>),
    /// Set intersection.
    Inter(Arc<Form>, Arc<Form>),
    /// Set difference.
    Diff(Arc<Form>, Arc<Form>),
    /// Subset-or-equal.
    Subseteq(Arc<Form>, Arc<Form>),
    /// Set comprehension `{(x, y) | P}`.
    Compr(Vec<Binding>, Arc<Form>),
    /// Set cardinality `card(S)`.
    Card(Arc<Form>),
    /// Tuple construction `(a, b)`.
    Tuple(Vec<Form>),

    /// Reference to the pre-state value of an expression (`old e`).  This is
    /// a surface-level construct eliminated during lowering.
    Old(Arc<Form>),
}

impl Form {
    /// The formula `true`.
    pub const TRUE: Form = Form::Bool(true);
    /// The formula `false`.
    pub const FALSE: Form = Form::Bool(false);

    /// Builds a variable reference.
    pub fn var(name: impl Into<String>) -> Form {
        Form::Var(name.into())
    }

    /// Builds an integer literal.
    pub fn int(value: i64) -> Form {
        Form::Int(value)
    }

    /// Unwraps a shared sub-formula, cloning (shallowly) only when the
    /// allocation is still shared.
    pub fn take(ptr: Arc<Form>) -> Form {
        Arc::try_unwrap(ptr).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Wraps a formula for use in a recursive position.
    pub fn ptr(form: Form) -> Arc<Form> {
        Arc::new(form)
    }

    /// Smart negation: collapses double negation and boolean literals.
    // Associated smart constructor named after the connective, not an operator
    // on self; implementing the std::ops trait would change every call site.
    #[allow(clippy::should_implement_trait)]
    pub fn not(form: Form) -> Form {
        match form {
            Form::Bool(b) => Form::Bool(!b),
            Form::Not(inner) => Form::take(inner),
            other => Form::Not(Arc::new(other)),
        }
    }

    /// Smart n-ary conjunction: flattens nested conjunctions, drops `true`,
    /// and collapses to `false` when any conjunct is `false`.
    pub fn and(forms: impl IntoIterator<Item = Form>) -> Form {
        let mut out = Vec::new();
        for f in forms {
            match f {
                Form::Bool(true) => {}
                Form::Bool(false) => return Form::FALSE,
                Form::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Form::TRUE,
            1 => out.pop().expect("len checked"),
            _ => Form::And(out),
        }
    }

    /// Smart n-ary disjunction (dual of [`Form::and`]).
    pub fn or(forms: impl IntoIterator<Item = Form>) -> Form {
        let mut out = Vec::new();
        for f in forms {
            match f {
                Form::Bool(false) => {}
                Form::Bool(true) => return Form::TRUE,
                Form::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Form::FALSE,
            1 => out.pop().expect("len checked"),
            _ => Form::Or(out),
        }
    }

    /// Smart implication: simplifies when either side is a boolean literal.
    pub fn implies(lhs: Form, rhs: Form) -> Form {
        match (&lhs, &rhs) {
            (Form::Bool(true), _) => rhs,
            (Form::Bool(false), _) => Form::TRUE,
            (_, Form::Bool(true)) => Form::TRUE,
            (_, Form::Bool(false)) => Form::not(lhs),
            _ => Form::Implies(Arc::new(lhs), Arc::new(rhs)),
        }
    }

    /// Smart bi-implication.
    pub fn iff(lhs: Form, rhs: Form) -> Form {
        match (&lhs, &rhs) {
            (Form::Bool(true), _) => rhs,
            (_, Form::Bool(true)) => lhs,
            (Form::Bool(false), _) => Form::not(rhs),
            (_, Form::Bool(false)) => Form::not(lhs),
            _ if lhs == rhs => Form::TRUE,
            _ => Form::Iff(Arc::new(lhs), Arc::new(rhs)),
        }
    }

    /// Equality; collapses syntactically identical sides to `true`.
    pub fn eq(lhs: Form, rhs: Form) -> Form {
        if lhs == rhs {
            Form::TRUE
        } else {
            Form::Eq(Arc::new(lhs), Arc::new(rhs))
        }
    }

    /// Disequality.
    pub fn neq(lhs: Form, rhs: Form) -> Form {
        Form::not(Form::eq(lhs, rhs))
    }

    /// Strict less-than.
    pub fn lt(lhs: Form, rhs: Form) -> Form {
        match (&lhs, &rhs) {
            (Form::Int(a), Form::Int(b)) => Form::Bool(a < b),
            _ => Form::Lt(Arc::new(lhs), Arc::new(rhs)),
        }
    }

    /// Less-or-equal.
    pub fn le(lhs: Form, rhs: Form) -> Form {
        match (&lhs, &rhs) {
            (Form::Int(a), Form::Int(b)) => Form::Bool(a <= b),
            _ => Form::Le(Arc::new(lhs), Arc::new(rhs)),
        }
    }

    /// Integer addition with constant folding.
    // Associated smart constructor named after the connective, not an operator
    // on self; implementing the std::ops trait would change every call site.
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: Form, rhs: Form) -> Form {
        match (&lhs, &rhs) {
            (Form::Int(a), Form::Int(b)) => Form::Int(a + b),
            (Form::Int(0), _) => rhs,
            (_, Form::Int(0)) => lhs,
            _ => Form::Add(Arc::new(lhs), Arc::new(rhs)),
        }
    }

    /// Integer subtraction with constant folding.
    // Associated smart constructor named after the connective, not an operator
    // on self; implementing the std::ops trait would change every call site.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: Form, rhs: Form) -> Form {
        match (&lhs, &rhs) {
            (Form::Int(a), Form::Int(b)) => Form::Int(a - b),
            (_, Form::Int(0)) => lhs,
            _ => Form::Sub(Arc::new(lhs), Arc::new(rhs)),
        }
    }

    /// Integer multiplication with constant folding.
    // Associated smart constructor named after the connective, not an operator
    // on self; implementing the std::ops trait would change every call site.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: Form, rhs: Form) -> Form {
        match (&lhs, &rhs) {
            (Form::Int(a), Form::Int(b)) => Form::Int(a * b),
            (Form::Int(1), _) => rhs,
            (_, Form::Int(1)) => lhs,
            (Form::Int(0), _) | (_, Form::Int(0)) => Form::Int(0),
            _ => Form::Mul(Arc::new(lhs), Arc::new(rhs)),
        }
    }

    /// Universal quantification; drops empty binder lists.
    pub fn forall(bindings: Vec<Binding>, body: Form) -> Form {
        if bindings.is_empty() || matches!(body, Form::Bool(_)) {
            body
        } else {
            Form::Forall(bindings, Arc::new(body))
        }
    }

    /// Existential quantification; drops empty binder lists.
    pub fn exists(bindings: Vec<Binding>, body: Form) -> Form {
        if bindings.is_empty() || matches!(body, Form::Bool(_)) {
            body
        } else {
            Form::Exists(bindings, Arc::new(body))
        }
    }

    /// Membership `elem in set`; simplifies membership in the empty set.
    pub fn elem(elem: Form, set: Form) -> Form {
        match set {
            Form::EmptySet => Form::FALSE,
            _ => Form::Elem(Arc::new(elem), Arc::new(set)),
        }
    }

    /// Field read `obj.field` where `field` is a function-valued term.
    pub fn field_read(field: Form, obj: Form) -> Form {
        Form::FieldRead(Arc::new(field), Arc::new(obj))
    }

    /// Field update `field[obj := value]`.
    pub fn field_write(field: Form, obj: Form, value: Form) -> Form {
        Form::FieldWrite(Arc::new(field), Arc::new(obj), Arc::new(value))
    }

    /// Array read `arr[idx]` through the given array state.
    pub fn array_read(state: Form, arr: Form, idx: Form) -> Form {
        Form::ArrayRead(Arc::new(state), Arc::new(arr), Arc::new(idx))
    }

    /// Array update `state[(arr, idx) := value]`.
    pub fn array_write(state: Form, arr: Form, idx: Form, value: Form) -> Form {
        Form::ArrayWrite(
            Arc::new(state),
            Arc::new(arr),
            Arc::new(idx),
            Arc::new(value),
        )
    }

    /// Named application `name(args...)`.
    pub fn app(name: impl Into<String>, args: Vec<Form>) -> Form {
        Form::App(name.into(), args)
    }

    /// `old e` — pre-state reference (eliminated during lowering).
    pub fn old(inner: Form) -> Form {
        Form::Old(Arc::new(inner))
    }

    /// Returns `true` if this formula is the literal `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Form::Bool(true))
    }

    /// Returns `true` if this formula is the literal `false`.
    pub fn is_false(&self) -> bool {
        matches!(self, Form::Bool(false))
    }

    /// Returns `true` if this node is an atom (no boolean structure below it).
    pub fn is_atom(&self) -> bool {
        !matches!(
            self,
            Form::Not(_)
                | Form::And(_)
                | Form::Or(_)
                | Form::Implies(..)
                | Form::Iff(..)
                | Form::Forall(..)
                | Form::Exists(..)
        )
    }

    /// Returns the list of conjuncts of this formula (a non-conjunction is a
    /// single conjunct).
    pub fn conjuncts(&self) -> Vec<&Form> {
        match self {
            Form::And(fs) => fs.iter().collect(),
            other => vec![other],
        }
    }

    /// Consumes the formula and returns its conjuncts.
    pub fn into_conjuncts(self) -> Vec<Form> {
        match self {
            Form::And(fs) => fs,
            other => vec![other],
        }
    }

    /// Returns the number of AST nodes; used for budget heuristics and tests.
    pub fn size(&self) -> usize {
        let mut n = 1usize;
        self.for_each_child(|c| n += c.size());
        n
    }

    /// Visits every direct child of this node.
    pub fn for_each_child<'a>(&'a self, mut f: impl FnMut(&'a Form)) {
        match self {
            Form::Var(_) | Form::Int(_) | Form::Bool(_) | Form::Null | Form::EmptySet => {}
            Form::Not(a) | Form::Neg(a) | Form::Card(a) | Form::Old(a) => f(a),
            Form::And(xs) | Form::Or(xs) | Form::FiniteSet(xs) | Form::Tuple(xs) => {
                xs.iter().for_each(f)
            }
            Form::App(_, xs) => xs.iter().for_each(f),
            Form::Implies(a, b)
            | Form::Iff(a, b)
            | Form::Eq(a, b)
            | Form::Lt(a, b)
            | Form::Le(a, b)
            | Form::Add(a, b)
            | Form::Sub(a, b)
            | Form::Mul(a, b)
            | Form::FieldRead(a, b)
            | Form::Elem(a, b)
            | Form::Union(a, b)
            | Form::Inter(a, b)
            | Form::Diff(a, b)
            | Form::Subseteq(a, b) => {
                f(a);
                f(b);
            }
            Form::Ite(a, b, c) | Form::FieldWrite(a, b, c) | Form::ArrayRead(a, b, c) => {
                f(a);
                f(b);
                f(c);
            }
            Form::ArrayWrite(a, b, c, d) => {
                f(a);
                f(b);
                f(c);
                f(d);
            }
            Form::Forall(_, b) | Form::Exists(_, b) | Form::Compr(_, b) => f(b),
        }
    }

    /// Rebuilds this node applying `f` to every direct child.
    pub fn map_children(&self, mut f: impl FnMut(&Form) -> Form) -> Form {
        match self {
            Form::Var(_) | Form::Int(_) | Form::Bool(_) | Form::Null | Form::EmptySet => {
                self.clone()
            }
            Form::Not(a) => Form::Not(Arc::new(f(a))),
            Form::Neg(a) => Form::Neg(Arc::new(f(a))),
            Form::Card(a) => Form::Card(Arc::new(f(a))),
            Form::Old(a) => Form::Old(Arc::new(f(a))),
            Form::And(xs) => Form::And(xs.iter().map(&mut f).collect()),
            Form::Or(xs) => Form::Or(xs.iter().map(&mut f).collect()),
            Form::FiniteSet(xs) => Form::FiniteSet(xs.iter().map(&mut f).collect()),
            Form::Tuple(xs) => Form::Tuple(xs.iter().map(&mut f).collect()),
            Form::App(name, xs) => Form::App(name.clone(), xs.iter().map(&mut f).collect()),
            Form::Implies(a, b) => Form::Implies(Arc::new(f(a)), Arc::new(f(b))),
            Form::Iff(a, b) => Form::Iff(Arc::new(f(a)), Arc::new(f(b))),
            Form::Eq(a, b) => Form::Eq(Arc::new(f(a)), Arc::new(f(b))),
            Form::Lt(a, b) => Form::Lt(Arc::new(f(a)), Arc::new(f(b))),
            Form::Le(a, b) => Form::Le(Arc::new(f(a)), Arc::new(f(b))),
            Form::Add(a, b) => Form::Add(Arc::new(f(a)), Arc::new(f(b))),
            Form::Sub(a, b) => Form::Sub(Arc::new(f(a)), Arc::new(f(b))),
            Form::Mul(a, b) => Form::Mul(Arc::new(f(a)), Arc::new(f(b))),
            Form::FieldRead(a, b) => Form::FieldRead(Arc::new(f(a)), Arc::new(f(b))),
            Form::Elem(a, b) => Form::Elem(Arc::new(f(a)), Arc::new(f(b))),
            Form::Union(a, b) => Form::Union(Arc::new(f(a)), Arc::new(f(b))),
            Form::Inter(a, b) => Form::Inter(Arc::new(f(a)), Arc::new(f(b))),
            Form::Diff(a, b) => Form::Diff(Arc::new(f(a)), Arc::new(f(b))),
            Form::Subseteq(a, b) => Form::Subseteq(Arc::new(f(a)), Arc::new(f(b))),
            Form::Ite(a, b, c) => Form::Ite(Arc::new(f(a)), Arc::new(f(b)), Arc::new(f(c))),
            Form::FieldWrite(a, b, c) => {
                Form::FieldWrite(Arc::new(f(a)), Arc::new(f(b)), Arc::new(f(c)))
            }
            Form::ArrayRead(a, b, c) => {
                Form::ArrayRead(Arc::new(f(a)), Arc::new(f(b)), Arc::new(f(c)))
            }
            Form::ArrayWrite(a, b, c, d) => Form::ArrayWrite(
                Arc::new(f(a)),
                Arc::new(f(b)),
                Arc::new(f(c)),
                Arc::new(f(d)),
            ),
            Form::Forall(bs, b) => Form::Forall(bs.clone(), Arc::new(f(b))),
            Form::Exists(bs, b) => Form::Exists(bs.clone(), Arc::new(f(b))),
            Form::Compr(bs, b) => Form::Compr(bs.clone(), Arc::new(f(b))),
        }
    }
}

impl Default for Form {
    fn default() -> Self {
        Form::TRUE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_flattens_and_simplifies() {
        let f = Form::and(vec![
            Form::TRUE,
            Form::and(vec![Form::var("a"), Form::var("b")]),
            Form::var("c"),
        ]);
        assert_eq!(
            f,
            Form::And(vec![Form::var("a"), Form::var("b"), Form::var("c")])
        );
        assert_eq!(Form::and(vec![Form::var("a"), Form::FALSE]), Form::FALSE);
        assert_eq!(Form::and(Vec::new()), Form::TRUE);
        assert_eq!(Form::and(vec![Form::var("x")]), Form::var("x"));
    }

    #[test]
    fn or_flattens_and_simplifies() {
        assert_eq!(Form::or(vec![Form::var("a"), Form::TRUE]), Form::TRUE);
        assert_eq!(Form::or(Vec::new()), Form::FALSE);
        let f = Form::or(vec![Form::or(vec![Form::var("a")]), Form::var("b")]);
        assert_eq!(f, Form::Or(vec![Form::var("a"), Form::var("b")]));
    }

    #[test]
    fn implication_simplification() {
        assert_eq!(Form::implies(Form::TRUE, Form::var("g")), Form::var("g"));
        assert_eq!(Form::implies(Form::FALSE, Form::var("g")), Form::TRUE);
        assert_eq!(Form::implies(Form::var("a"), Form::TRUE), Form::TRUE);
        assert_eq!(
            Form::implies(Form::var("a"), Form::FALSE),
            Form::Not(Arc::new(Form::var("a")))
        );
    }

    #[test]
    fn double_negation_collapses() {
        assert_eq!(Form::not(Form::not(Form::var("p"))), Form::var("p"));
        assert_eq!(Form::not(Form::TRUE), Form::FALSE);
    }

    #[test]
    fn arithmetic_constant_folding() {
        assert_eq!(Form::add(Form::int(2), Form::int(3)), Form::int(5));
        assert_eq!(Form::add(Form::var("x"), Form::int(0)), Form::var("x"));
        assert_eq!(Form::mul(Form::int(0), Form::var("x")), Form::int(0));
        assert_eq!(Form::sub(Form::int(7), Form::int(7)), Form::int(0));
        assert_eq!(Form::lt(Form::int(1), Form::int(2)), Form::TRUE);
        assert_eq!(Form::le(Form::int(3), Form::int(2)), Form::FALSE);
    }

    #[test]
    fn eq_collapses_identical_sides() {
        assert_eq!(Form::eq(Form::var("x"), Form::var("x")), Form::TRUE);
        assert!(matches!(
            Form::eq(Form::var("x"), Form::var("y")),
            Form::Eq(..)
        ));
    }

    #[test]
    fn quantifier_smart_constructors() {
        assert_eq!(Form::forall(vec![], Form::var("p")), Form::var("p"));
        assert_eq!(
            Form::forall(vec![("x".into(), Sort::Int)], Form::TRUE),
            Form::TRUE
        );
        assert!(matches!(
            Form::exists(vec![("x".into(), Sort::Obj)], Form::var("p")),
            Form::Exists(..)
        ));
    }

    #[test]
    fn membership_in_empty_set_is_false() {
        assert_eq!(Form::elem(Form::var("x"), Form::EmptySet), Form::FALSE);
    }

    #[test]
    fn size_counts_nodes() {
        let f = Form::and(vec![Form::var("a"), Form::eq(Form::var("x"), Form::int(1))]);
        // And + Var + Eq + Var + Int = 5
        assert_eq!(f.size(), 5);
    }

    #[test]
    fn conjunct_access() {
        let f = Form::and(vec![Form::var("a"), Form::var("b")]);
        assert_eq!(f.conjuncts().len(), 2);
        assert_eq!(Form::var("a").conjuncts().len(), 1);
        assert_eq!(f.into_conjuncts().len(), 2);
    }

    #[test]
    fn map_children_identity() {
        let f = Form::implies(
            Form::elem(Form::var("x"), Form::var("content")),
            Form::lt(Form::var("i"), Form::var("size")),
        );
        assert_eq!(f.map_children(|c| c.clone()), f);
    }
}
