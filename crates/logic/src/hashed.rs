//! Formulas with cached structural hash, size and free-variable set.
//!
//! The provers' term indexes and instance-deduplication sets repeatedly hash
//! and compare the same formulas; recomputing a structural hash (a full tree
//! walk) on every probe dominates those hot paths.  [`Hashed`] wraps a
//! [`Form`] together with its hash and node count computed once at
//! construction: hashing is then a single `u64` write and equality checks
//! compare the cached hashes before falling back to structural comparison.
//! The free-variable set is computed lazily on first use (many wrappers
//! never need it) and shared across clones.

use crate::Form;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// A formula with precomputed structural hash and size, and a lazily cached
/// free-variable set.
#[derive(Debug, Clone)]
pub struct Hashed {
    form: Form,
    hash: u64,
    size: usize,
    free_vars: Arc<OnceLock<BTreeSet<String>>>,
}

impl Hashed {
    /// Wraps a formula, computing its hash and size once.
    pub fn new(form: Form) -> Self {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        form.hash(&mut hasher);
        let hash = hasher.finish();
        let size = form.size();
        Hashed {
            form,
            hash,
            size,
            free_vars: Arc::new(OnceLock::new()),
        }
    }

    /// The wrapped formula.
    pub fn form(&self) -> &Form {
        &self.form
    }

    /// The cached structural hash.
    pub fn hash_value(&self) -> u64 {
        self.hash
    }

    /// The cached node count.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cached free-variable set, computed on first use and shared across
    /// clones of this wrapper.
    pub fn free_vars(&self) -> &BTreeSet<String> {
        self.free_vars
            .get_or_init(|| crate::subst::free_vars(&self.form))
    }

    /// Unwraps the formula.
    pub fn into_form(self) -> Form {
        self.form
    }
}

impl From<Form> for Hashed {
    fn from(form: Form) -> Self {
        Hashed::new(form)
    }
}

impl PartialEq for Hashed {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.form == other.form
    }
}

impl Eq for Hashed {}

impl Hash for Hashed {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;
    use std::collections::HashSet;

    #[test]
    fn equal_forms_have_equal_wrappers() {
        let a = Hashed::new(parse_form("f(x) = y + 1").unwrap());
        let b = Hashed::new(parse_form("f(x) = y + 1").unwrap());
        assert_eq!(a, b);
        assert_eq!(a.hash_value(), b.hash_value());
    }

    #[test]
    fn size_is_cached_correctly() {
        let form = parse_form("f(x) = y").unwrap();
        let expected = form.size();
        assert_eq!(Hashed::new(form).size(), expected);
    }

    #[test]
    fn free_vars_are_cached_and_shared() {
        let h = Hashed::new(parse_form("forall i:int. i < size --> p(i, x)").unwrap());
        let clone = h.clone();
        let fv = h.free_vars();
        assert!(fv.contains("size") && fv.contains("x") && !fv.contains("i"));
        // The clone shares the same lazily-initialised cell.
        assert!(std::ptr::eq(clone.free_vars(), fv));
    }

    #[test]
    // The free-vars cache does not participate in Eq/Hash (see clippy.toml;
    // the crate-local path is not covered by that config entry).
    #[allow(clippy::mutable_key_type)]
    fn works_as_a_set_key() {
        let mut set = HashSet::new();
        assert!(set.insert(Hashed::new(parse_form("p(a)").unwrap())));
        assert!(!set.insert(Hashed::new(parse_form("p(a)").unwrap())));
        assert!(set.insert(Hashed::new(parse_form("p(b)").unwrap())));
        assert_eq!(set.len(), 2);
    }
}
