//! Formulas with cached structural hash and size.
//!
//! The provers' term indexes and instance-deduplication sets repeatedly hash
//! and compare the same formulas; recomputing a structural hash (a full tree
//! walk) on every probe dominates those hot paths.  [`Hashed`] wraps a
//! [`Form`] together with its hash and node count computed once at
//! construction: hashing is then a single `u64` write and equality checks
//! compare the cached hashes before falling back to structural comparison.

use crate::Form;
use std::hash::{Hash, Hasher};

/// A formula with precomputed structural hash and size.
#[derive(Debug, Clone)]
pub struct Hashed {
    form: Form,
    hash: u64,
    size: usize,
}

impl Hashed {
    /// Wraps a formula, computing its hash and size once.
    pub fn new(form: Form) -> Self {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        form.hash(&mut hasher);
        let hash = hasher.finish();
        let size = form.size();
        Hashed { form, hash, size }
    }

    /// The wrapped formula.
    pub fn form(&self) -> &Form {
        &self.form
    }

    /// The cached structural hash.
    pub fn hash_value(&self) -> u64 {
        self.hash
    }

    /// The cached node count.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Unwraps the formula.
    pub fn into_form(self) -> Form {
        self.form
    }
}

impl From<Form> for Hashed {
    fn from(form: Form) -> Self {
        Hashed::new(form)
    }
}

impl PartialEq for Hashed {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.form == other.form
    }
}

impl Eq for Hashed {}

impl Hash for Hashed {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;
    use std::collections::HashSet;

    #[test]
    fn equal_forms_have_equal_wrappers() {
        let a = Hashed::new(parse_form("f(x) = y + 1").unwrap());
        let b = Hashed::new(parse_form("f(x) = y + 1").unwrap());
        assert_eq!(a, b);
        assert_eq!(a.hash_value(), b.hash_value());
    }

    #[test]
    fn size_is_cached_correctly() {
        let form = parse_form("f(x) = y").unwrap();
        let expected = form.size();
        assert_eq!(Hashed::new(form).size(), expected);
    }

    #[test]
    fn works_as_a_set_key() {
        let mut set = HashSet::new();
        assert!(set.insert(Hashed::new(parse_form("p(a)").unwrap())));
        assert!(!set.insert(Hashed::new(parse_form("p(a)").unwrap())));
        assert!(set.insert(Hashed::new(parse_form("p(b)").unwrap())));
        assert_eq!(set.len(), 2);
    }
}
