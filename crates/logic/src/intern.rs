//! Hash-consing of formulas: a global, sharded intern table that maps every
//! structurally distinct sub-formula to one canonical [`Arc<Form>`]
//! allocation.
//!
//! [`share`] rebuilds a formula bottom-up, replacing every recursive position
//! by the canonical allocation for that subtree.  Afterwards, structurally
//! equal subtrees — within one sequent, across the sequents of a method, and
//! across methods and modules — are pointer-identical, so
//!
//! * equality checks hit the `Arc<T: Eq>` pointer fast path of the standard
//!   library,
//! * clones are pointer bumps (already true of any `Form`, but interned terms
//!   additionally *deduplicate* memory), and
//! * pointer-keyed memo tables (see [`crate::subst::substitute`]) get maximal
//!   hit rates.
//!
//! The table is sharded by hash so that the parallel verification driver's
//! workers intern concurrently without contending on one lock.  Entries are
//! held strongly and live until [`clear`] is called: the suite's working set
//! of distinct subterms is small (tens of thousands of nodes), and a stable
//! address space means pointers can be used as memo keys without
//! use-after-free aliasing hazards.  Long-running servers should call
//! [`clear`] between independent workloads.
//!
//! Hashing is structural but computed *per node* from the already-computed
//! hashes of the interned children, so one [`share`] call is linear in the
//! number of distinct nodes (the DAG size), not in the tree unfolding.

use crate::form::Form;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

const SHARD_COUNT: usize = 16;

/// The global intern table.
struct Interner {
    shards: Vec<Mutex<HashMap<u64, Vec<Arc<Form>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Counters describing the state of the intern table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternStats {
    /// Number of canonical allocations currently interned.
    pub entries: usize,
    /// Lookups that found an existing allocation.
    pub hits: u64,
    /// Lookups that created a new allocation.
    pub misses: u64,
}

fn interner() -> &'static Interner {
    static TABLE: OnceLock<Interner> = OnceLock::new();
    TABLE.get_or_init(|| Interner {
        shards: (0..SHARD_COUNT)
            .map(|_| Mutex::new(HashMap::new()))
            .collect(),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// Returns the canonical allocation for `node`, whose recursive positions
/// must already be canonical (so the structural comparison against bucket
/// candidates short-circuits on pointer identity one level down).
fn intern_node(node: Form, hash: u64) -> Arc<Form> {
    let table = interner();
    let shard = &table.shards[(hash as usize) % SHARD_COUNT];
    let mut bucket = shard.lock().expect("intern shard poisoned");
    let candidates = bucket.entry(hash).or_default();
    for candidate in candidates.iter() {
        if **candidate == node {
            table.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(candidate);
        }
    }
    table.misses.fetch_add(1, Ordering::Relaxed);
    let canonical = Arc::new(node);
    candidates.push(Arc::clone(&canonical));
    canonical
}

/// Statistics of the global intern table.
pub fn stats() -> InternStats {
    let table = interner();
    let entries = table
        .shards
        .iter()
        .map(|s| {
            s.lock()
                .expect("intern shard poisoned")
                .values()
                .map(Vec::len)
                .sum::<usize>()
        })
        .sum();
    InternStats {
        entries,
        hits: table.hits.load(Ordering::Relaxed),
        misses: table.misses.load(Ordering::Relaxed),
    }
}

/// Empties the intern table (outstanding `Arc`s stay valid; future [`share`]
/// calls start from an empty table).  Intended for tests and long-running
/// processes that switch workloads.
pub fn clear() {
    for shard in &interner().shards {
        shard.lock().expect("intern shard poisoned").clear();
    }
}

/// Returns a maximally-shared formula structurally equal to `form`: every
/// recursive position holds the canonical allocation of its subtree.
pub fn share(form: &Form) -> Form {
    let mut memo = HashMap::new();
    share_rec(form, &mut memo).0
}

/// Interns a formula and returns the canonical allocation of the whole tree
/// (useful when the caller stores the root behind an `Arc` as well).
pub fn share_arc(form: &Form) -> Arc<Form> {
    let mut memo = HashMap::new();
    let (shared, hash) = share_rec(form, &mut memo);
    intern_node(shared, hash)
}

type Memo = HashMap<usize, (Form, u64)>;

/// Hash of a *node* given its payload and the hashes of its children; the
/// recursion is unrolled through the per-call memo so each distinct node is
/// visited once.
fn share_rec(form: &Form, memo: &mut Memo) -> (Form, u64) {
    let key = form as *const Form as usize;
    if let Some((shared, hash)) = memo.get(&key) {
        return (shared.clone(), *hash);
    }

    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    std::mem::discriminant(form).hash(&mut hasher);

    // Rebuild each child canonically, feeding the child hashes into this
    // node's hash.  `child` interns through the global table; `inline` keeps
    // Vec elements inline (they are full `Form`s, not pointers) but still
    // rebuilds them with canonical recursive positions.
    type H = std::collections::hash_map::DefaultHasher;
    fn child(c: &Form, hasher: &mut H, memo: &mut Memo) -> Arc<Form> {
        let (shared, h) = share_rec(c, memo);
        h.hash(hasher);
        intern_node(shared, h)
    }
    fn inline(c: &Form, hasher: &mut H, memo: &mut Memo) -> Form {
        let (shared, h) = share_rec(c, memo);
        h.hash(hasher);
        shared
    }

    let rebuilt = match form {
        Form::Var(name) => {
            name.hash(&mut hasher);
            form.clone()
        }
        Form::Int(value) => {
            value.hash(&mut hasher);
            form.clone()
        }
        Form::Bool(value) => {
            value.hash(&mut hasher);
            form.clone()
        }
        Form::Null | Form::EmptySet => form.clone(),
        Form::Not(a) => Form::Not(child(a, &mut hasher, memo)),
        Form::Neg(a) => Form::Neg(child(a, &mut hasher, memo)),
        Form::Card(a) => Form::Card(child(a, &mut hasher, memo)),
        Form::Old(a) => Form::Old(child(a, &mut hasher, memo)),
        Form::And(xs) => Form::And(xs.iter().map(|x| inline(x, &mut hasher, memo)).collect()),
        Form::Or(xs) => Form::Or(xs.iter().map(|x| inline(x, &mut hasher, memo)).collect()),
        Form::FiniteSet(xs) => {
            Form::FiniteSet(xs.iter().map(|x| inline(x, &mut hasher, memo)).collect())
        }
        Form::Tuple(xs) => Form::Tuple(xs.iter().map(|x| inline(x, &mut hasher, memo)).collect()),
        Form::App(name, xs) => {
            name.hash(&mut hasher);
            Form::App(
                name.clone(),
                xs.iter().map(|x| inline(x, &mut hasher, memo)).collect(),
            )
        }
        Form::Implies(a, b) => {
            Form::Implies(child(a, &mut hasher, memo), child(b, &mut hasher, memo))
        }
        Form::Iff(a, b) => Form::Iff(child(a, &mut hasher, memo), child(b, &mut hasher, memo)),
        Form::Eq(a, b) => Form::Eq(child(a, &mut hasher, memo), child(b, &mut hasher, memo)),
        Form::Lt(a, b) => Form::Lt(child(a, &mut hasher, memo), child(b, &mut hasher, memo)),
        Form::Le(a, b) => Form::Le(child(a, &mut hasher, memo), child(b, &mut hasher, memo)),
        Form::Add(a, b) => Form::Add(child(a, &mut hasher, memo), child(b, &mut hasher, memo)),
        Form::Sub(a, b) => Form::Sub(child(a, &mut hasher, memo), child(b, &mut hasher, memo)),
        Form::Mul(a, b) => Form::Mul(child(a, &mut hasher, memo), child(b, &mut hasher, memo)),
        Form::FieldRead(a, b) => {
            Form::FieldRead(child(a, &mut hasher, memo), child(b, &mut hasher, memo))
        }
        Form::Elem(a, b) => Form::Elem(child(a, &mut hasher, memo), child(b, &mut hasher, memo)),
        Form::Union(a, b) => Form::Union(child(a, &mut hasher, memo), child(b, &mut hasher, memo)),
        Form::Inter(a, b) => Form::Inter(child(a, &mut hasher, memo), child(b, &mut hasher, memo)),
        Form::Diff(a, b) => Form::Diff(child(a, &mut hasher, memo), child(b, &mut hasher, memo)),
        Form::Subseteq(a, b) => {
            Form::Subseteq(child(a, &mut hasher, memo), child(b, &mut hasher, memo))
        }
        Form::Ite(a, b, c) => Form::Ite(
            child(a, &mut hasher, memo),
            child(b, &mut hasher, memo),
            child(c, &mut hasher, memo),
        ),
        Form::FieldWrite(a, b, c) => Form::FieldWrite(
            child(a, &mut hasher, memo),
            child(b, &mut hasher, memo),
            child(c, &mut hasher, memo),
        ),
        Form::ArrayRead(a, b, c) => Form::ArrayRead(
            child(a, &mut hasher, memo),
            child(b, &mut hasher, memo),
            child(c, &mut hasher, memo),
        ),
        Form::ArrayWrite(a, b, c, d) => Form::ArrayWrite(
            child(a, &mut hasher, memo),
            child(b, &mut hasher, memo),
            child(c, &mut hasher, memo),
            child(d, &mut hasher, memo),
        ),
        Form::Forall(bs, body) => {
            bs.hash(&mut hasher);
            Form::Forall(bs.clone(), child(body, &mut hasher, memo))
        }
        Form::Exists(bs, body) => {
            bs.hash(&mut hasher);
            Form::Exists(bs.clone(), child(body, &mut hasher, memo))
        }
        Form::Compr(bs, body) => {
            bs.hash(&mut hasher);
            Form::Compr(bs.clone(), child(body, &mut hasher, memo))
        }
    };
    let hash = hasher.finish();
    memo.insert(key, (rebuilt.clone(), hash));
    (rebuilt, hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    #[test]
    fn share_preserves_structural_equality() {
        let f = parse_form("forall i:int. 0 <= i & i < size --> elements[i] ~= null").unwrap();
        let shared = share(&f);
        assert_eq!(shared, f);
    }

    #[test]
    fn equal_subtrees_become_pointer_identical() {
        let f = parse_form("f(x + 1) = g(x + 1)").unwrap();
        let shared = share(&f);
        let Form::Eq(lhs, rhs) = &shared else {
            panic!("expected equality, got {shared:?}");
        };
        let (Form::App(_, largs), Form::App(_, rargs)) = (lhs.as_ref(), rhs.as_ref()) else {
            panic!("expected applications");
        };
        let (Form::Add(la, lb), Form::Add(ra, rb)) = (&largs[0], &rargs[0]) else {
            panic!("expected additions");
        };
        assert!(Arc::ptr_eq(la, ra), "shared `x` argument");
        assert!(Arc::ptr_eq(lb, rb), "shared `1` argument");
    }

    #[test]
    fn sharing_is_global_across_calls() {
        let a = share(&parse_form("p(n) --> q(n)").unwrap());
        let b = share(&parse_form("p(n) --> q(n)").unwrap());
        let (Form::Implies(ax, _), Form::Implies(bx, _)) = (&a, &b) else {
            panic!("expected implications");
        };
        assert!(Arc::ptr_eq(ax, bx), "canonical allocation reused");
    }

    #[test]
    fn stats_count_entries() {
        let before = stats();
        // A formula with fresh, never-before-interned leaves.
        let f = parse_form("zz_intern_stats_1 = zz_intern_stats_2").unwrap();
        share(&f);
        let after = stats();
        assert!(after.entries > before.entries);
        assert!(after.misses > before.misses);
        share(&f);
        assert!(stats().hits > after.hits);
    }
}
