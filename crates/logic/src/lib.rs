//! # `ipl-logic` — the specification formula language
//!
//! This crate implements the HOL-lite specification logic used throughout the
//! reproduction of *"An Integrated Proof Language for Imperative Programs"*
//! (Zee, Kuncak, Rinard — PLDI 2009).  Formulas written in Jahob-style
//! annotations (method contracts, class invariants, loop invariants, `vardefs`
//! abstraction functions and the integrated proof commands) are represented by
//! the [`Form`] type defined here.
//!
//! The crate provides:
//!
//! * [`Sort`] — a many-sorted type system with booleans, integers, object
//!   references, sets, tuples and function sorts (used for fields and the
//!   global array state).
//! * [`Form`] — the formula/term AST together with smart constructors that
//!   perform lightweight simplification.
//! * [`subst`] — free variables, capture-avoiding substitution and fresh name
//!   generation.
//! * [`parser`] — a parser for the ASCII specification syntax used by the
//!   surface language (`ipl-lang`).
//! * [`sorts`] — sort inference for terms given a sort environment.
//! * [`normal`] — the normalisation passes shared by the provers:
//!   comprehension beta-reduction, set-operation expansion, negation normal
//!   form, skolemisation and old-state elimination.
//! * [`simplify`] — structural simplification (constant folding, unit laws).
//! * [`hashed`] — formulas with cached structural hash, size and free-variable
//!   set, used by the provers' term indexes and instance-deduplication sets.
//! * [`intern`] — hash-consing: a global sharded intern table giving
//!   structurally equal subtrees one canonical `Arc` allocation, so equality
//!   is pointer identity and memo tables key on addresses.
//!
//! # Example
//!
//! ```
//! use ipl_logic::{parser::parse_form, Form};
//!
//! let f = ipl_logic::parser::parse_form(
//!     "forall i:int. 0 <= i & i < size --> elements[i] ~= null").unwrap();
//! assert!(matches!(f, Form::Forall(..)));
//! # let _ = parse_form("true").unwrap();
//! ```

pub mod form;
pub mod hashed;
pub mod intern;
pub mod normal;
pub mod parser;
pub mod print;
pub mod simplify;
pub mod sort;
pub mod sorts;
pub mod subst;

pub use form::Form;
pub use hashed::Hashed;
pub use intern::{share, share_arc};
pub use sort::Sort;
pub use sorts::SortEnv;
pub use subst::{free_vars, substitute, FreshNames};

/// A labelled formula: the label names the fact for assumption-base control
/// (the `from` clauses of `note`/`assert`) and for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Labeled {
    /// Name of the fact (e.g. `"LoopInv"`, `"content_def"`, `"ObjectRemoved"`).
    pub label: String,
    /// The formula itself.
    pub form: Form,
}

impl Labeled {
    /// Creates a labelled formula.
    pub fn new(label: impl Into<String>, form: Form) -> Self {
        Labeled {
            label: label.into(),
            form,
        }
    }
}

impl std::fmt::Display for Labeled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.label, self.form)
    }
}
