//! Normalisation passes shared by the verification-condition generator and
//! the provers.
//!
//! * [`eliminate_old`] — replaces `old e` by `e` with free variables renamed
//!   to their pre-state incarnations (used by the lowering in `ipl-lang`).
//! * [`expand_sets`] — beta-reduces comprehension membership and rewrites set
//!   algebra (`union`, `inter`, `minus`, `subseteq`, set equality) into
//!   membership-level first-order formulas, which the SMT-lite provers handle
//!   via quantifier instantiation.
//! * [`nnf`] — negation normal form (eliminates `-->`, `<->`, pushes `~`).
//! * [`skolemize`] — replaces existential quantifiers in a formula assumed to
//!   be in NNF by skolem constants/functions.

use crate::form::{Binding, Form};
use crate::sort::Sort;
use crate::sorts::SortEnv;
use crate::subst::{substitute, FreshNames};
use std::collections::HashMap;
use std::sync::Arc;

/// Replaces every `old e` sub-term by `e` with its free variables renamed
/// through `rename` (typically `v ↦ v_old`).  Nested `old` is idempotent.
pub fn eliminate_old(form: &Form, rename: &dyn Fn(&str) -> String) -> Form {
    match form {
        Form::Old(inner) => {
            let inner = eliminate_old(inner, rename);
            let mut map = HashMap::new();
            for v in crate::subst::free_vars(&inner) {
                map.insert(v.clone(), Form::Var(rename(&v)));
            }
            substitute(&inner, &map)
        }
        other => other.map_children(|c| eliminate_old(c, rename)),
    }
}

/// Returns `true` if the formula contains an `old` sub-term.
pub fn contains_old(form: &Form) -> bool {
    let mut found = false;
    fn rec(form: &Form, found: &mut bool) {
        if *found {
            return;
        }
        if matches!(form, Form::Old(_)) {
            *found = true;
            return;
        }
        form.for_each_child(|c| rec(c, found));
    }
    rec(form, &mut found);
    found
}

/// Expands set algebra into membership-level first-order logic.
///
/// The environment is used to determine element sorts for extensionality
/// expansion of `subseteq` and set equality.  Cardinality (`card`) terms are
/// left untouched — they are handled by the BAPA prover.
pub fn expand_sets(form: &Form, env: &SortEnv) -> Form {
    let mut fresh = FreshNames::new();
    fresh.reserve_all(form);
    expand_rec(form, env, &mut fresh)
}

fn expand_rec(form: &Form, env: &SortEnv, fresh: &mut FreshNames) -> Form {
    // First expand children so membership pushes through nested operations.
    let form = form.map_children(|c| expand_rec(c, env, fresh));
    match &form {
        Form::Elem(elem, set) => expand_membership(elem, set, env, fresh),
        Form::Subseteq(a, b) => {
            let elem_sort = env.sort_of(a).set_elem().cloned().unwrap_or(Sort::Unknown);
            let (pattern, bindings) = element_pattern(&elem_sort, fresh);
            let lhs = expand_membership(&pattern, a, env, fresh);
            let rhs = expand_membership(&pattern, b, env, fresh);
            Form::forall(bindings, Form::implies(lhs, rhs))
        }
        Form::Eq(a, b) => {
            let sa = env.sort_of(a);
            let sb = env.sort_of(b);
            if sa.is_set() || sb.is_set() {
                let elem_sort = sa
                    .set_elem()
                    .or_else(|| sb.set_elem())
                    .cloned()
                    .unwrap_or(Sort::Unknown);
                let (pattern, bindings) = element_pattern(&elem_sort, fresh);
                let lhs = expand_membership(&pattern, a, env, fresh);
                let rhs = expand_membership(&pattern, b, env, fresh);
                Form::forall(bindings, Form::iff(lhs, rhs))
            } else if matches!((&sa, &sb), (Sort::Tuple(_), _) | (_, Sort::Tuple(_))) {
                // Tuple equality: compare componentwise when both are literal tuples.
                if let (Form::Tuple(xs), Form::Tuple(ys)) = (a.as_ref(), b.as_ref()) {
                    if xs.len() == ys.len() {
                        return Form::and(
                            xs.iter()
                                .zip(ys.iter())
                                .map(|(x, y)| Form::eq(x.clone(), y.clone())),
                        );
                    }
                }
                form.clone()
            } else {
                form.clone()
            }
        }
        _ => form,
    }
}

/// Builds a fresh "generic element" pattern of the given sort: a variable for
/// scalar sorts, a tuple of variables for tuple sorts.
fn element_pattern(sort: &Sort, fresh: &mut FreshNames) -> (Form, Vec<Binding>) {
    match sort {
        Sort::Tuple(parts) => {
            let mut vars = Vec::with_capacity(parts.len());
            let mut bindings = Vec::with_capacity(parts.len());
            for part in parts {
                let name = fresh.fresh("el");
                vars.push(Form::Var(name.clone()));
                bindings.push((name, part.clone()));
            }
            (Form::Tuple(vars), bindings)
        }
        other => {
            let name = fresh.fresh("el");
            (Form::Var(name.clone()), vec![(name, other.clone())])
        }
    }
}

/// Expands a single membership `elem in set` as far as the structure of `set`
/// allows.
fn expand_membership(elem: &Form, set: &Form, env: &SortEnv, fresh: &mut FreshNames) -> Form {
    match set {
        Form::EmptySet => Form::FALSE,
        Form::FiniteSet(items) => Form::or(
            items
                .iter()
                .map(|item| tuple_aware_eq(elem.clone(), item.clone()))
                .collect::<Vec<_>>(),
        ),
        Form::Union(a, b) => Form::or(vec![
            expand_membership(elem, a, env, fresh),
            expand_membership(elem, b, env, fresh),
        ]),
        Form::Inter(a, b) => Form::and(vec![
            expand_membership(elem, a, env, fresh),
            expand_membership(elem, b, env, fresh),
        ]),
        Form::Diff(a, b) => Form::and(vec![
            expand_membership(elem, a, env, fresh),
            Form::not(expand_membership(elem, b, env, fresh)),
        ]),
        Form::Compr(bindings, body) => {
            let components: Option<Vec<Form>> = match elem {
                Form::Tuple(parts) if parts.len() == bindings.len() => Some(parts.clone()),
                _ if bindings.len() == 1 => Some(vec![elem.clone()]),
                _ => None,
            };
            match components {
                Some(parts) => {
                    let mut map = HashMap::new();
                    for ((name, _), value) in bindings.iter().zip(parts) {
                        map.insert(name.clone(), value);
                    }
                    let body = substitute(body, &map);
                    expand_rec(&body, env, fresh)
                }
                None => Form::elem(elem.clone(), set.clone()),
            }
        }
        Form::Ite(c, t, e) => Form::Ite(
            c.clone(),
            Arc::new(expand_membership(elem, t, env, fresh)),
            Arc::new(expand_membership(elem, e, env, fresh)),
        ),
        _ => Form::elem(elem.clone(), set.clone()),
    }
}

/// Equality that decomposes tuple literals componentwise.
fn tuple_aware_eq(lhs: Form, rhs: Form) -> Form {
    match (&lhs, &rhs) {
        (Form::Tuple(xs), Form::Tuple(ys)) if xs.len() == ys.len() => Form::and(
            xs.iter()
                .zip(ys.iter())
                .map(|(x, y)| tuple_aware_eq(x.clone(), y.clone()))
                .collect::<Vec<_>>(),
        ),
        _ => Form::eq(lhs, rhs),
    }
}

/// Converts a formula to negation normal form: `-->` and `<->` are
/// eliminated, negation is pushed to the atoms, and `ite` on formulas is
/// expanded.
pub fn nnf(form: &Form) -> Form {
    nnf_pos(form)
}

fn nnf_pos(form: &Form) -> Form {
    match form {
        Form::Not(inner) => nnf_neg(inner),
        Form::And(parts) => Form::and(parts.iter().map(nnf_pos).collect::<Vec<_>>()),
        Form::Or(parts) => Form::or(parts.iter().map(nnf_pos).collect::<Vec<_>>()),
        Form::Implies(a, b) => Form::or(vec![nnf_neg(a), nnf_pos(b)]),
        Form::Iff(a, b) => Form::and(vec![
            Form::or(vec![nnf_neg(a), nnf_pos(b)]),
            Form::or(vec![nnf_neg(b), nnf_pos(a)]),
        ]),
        Form::Ite(c, t, e) => {
            // Only expand when the branches are formulas; term-level ite is kept.
            Form::and(vec![
                Form::or(vec![nnf_neg(c), nnf_pos(t)]),
                Form::or(vec![nnf_pos(c), nnf_pos(e)]),
            ])
        }
        Form::Forall(bs, body) => Form::forall(bs.clone(), nnf_pos(body)),
        Form::Exists(bs, body) => Form::exists(bs.clone(), nnf_pos(body)),
        other => other.clone(),
    }
}

fn nnf_neg(form: &Form) -> Form {
    match form {
        Form::Not(inner) => nnf_pos(inner),
        Form::Bool(b) => Form::Bool(!b),
        Form::And(parts) => Form::or(parts.iter().map(nnf_neg).collect::<Vec<_>>()),
        Form::Or(parts) => Form::and(parts.iter().map(nnf_neg).collect::<Vec<_>>()),
        Form::Implies(a, b) => Form::and(vec![nnf_pos(a), nnf_neg(b)]),
        Form::Iff(a, b) => Form::or(vec![
            Form::and(vec![nnf_pos(a), nnf_neg(b)]),
            Form::and(vec![nnf_pos(b), nnf_neg(a)]),
        ]),
        Form::Ite(c, t, e) => Form::and(vec![
            Form::or(vec![nnf_neg(c), nnf_neg(t)]),
            Form::or(vec![nnf_pos(c), nnf_neg(e)]),
        ]),
        Form::Forall(bs, body) => Form::exists(bs.clone(), nnf_neg(body)),
        Form::Exists(bs, body) => Form::forall(bs.clone(), nnf_neg(body)),
        other => Form::not(other.clone()),
    }
}

/// Skolemizes a formula in NNF: existential quantifiers are replaced by
/// applications of fresh skolem symbols to the universally quantified
/// variables in scope.  Returns the skolemized formula and the list of
/// introduced skolem symbols with their result sorts.
pub fn skolemize(form: &Form, fresh: &mut FreshNames) -> (Form, Vec<(String, Sort)>) {
    let mut skolems = Vec::new();
    let out = sk_rec(form, &mut Vec::new(), fresh, &mut skolems);
    (out, skolems)
}

fn sk_rec(
    form: &Form,
    universals: &mut Vec<Binding>,
    fresh: &mut FreshNames,
    skolems: &mut Vec<(String, Sort)>,
) -> Form {
    match form {
        Form::Exists(bs, body) => {
            let mut map = HashMap::new();
            for (name, sort) in bs {
                let sk_name = fresh.fresh(&format!("sk_{name}"));
                skolems.push((sk_name.clone(), sort.clone()));
                let replacement = if universals.is_empty() {
                    Form::Var(sk_name)
                } else {
                    Form::App(
                        sk_name,
                        universals
                            .iter()
                            .map(|(v, _)| Form::Var(v.clone()))
                            .collect(),
                    )
                };
                map.insert(name.clone(), replacement);
            }
            let body = substitute(body, &map);
            sk_rec(&body, universals, fresh, skolems)
        }
        Form::Forall(bs, body) => {
            let n = universals.len();
            universals.extend(bs.iter().cloned());
            let body = sk_rec(body, universals, fresh, skolems);
            universals.truncate(n);
            Form::forall(bs.clone(), body)
        }
        Form::And(parts) => Form::and(
            parts
                .iter()
                .map(|p| sk_rec(p, universals, fresh, skolems))
                .collect::<Vec<_>>(),
        ),
        Form::Or(parts) => Form::or(
            parts
                .iter()
                .map(|p| sk_rec(p, universals, fresh, skolems))
                .collect::<Vec<_>>(),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        e.declare_var("size", Sort::Int);
        e.declare_var("content", Sort::int_obj_set());
        e.declare_var("old_content", Sort::int_obj_set());
        e.declare_var("nodes", Sort::obj_set());
        e.declare_var("x", Sort::Obj);
        e.declare_var("elements", Sort::Obj);
        e.declare_var("arrayState", Sort::obj_array_state());
        e
    }

    #[test]
    fn old_elimination_renames_free_variables() {
        let f = parse_form("old(size) = size + 1").unwrap();
        let g = eliminate_old(&f, &|v| format!("{v}_old"));
        assert_eq!(g.to_string(), "size_old = size + 1");
        assert!(!contains_old(&g));
        assert!(contains_old(&f));
    }

    #[test]
    fn old_elimination_handles_compound_expressions() {
        let f = parse_form("old(elements[i]) = elements[i]").unwrap();
        let g = eliminate_old(&f, &|v| format!("{v}_pre"));
        let s = g.to_string();
        assert!(s.contains("elements_pre"));
        assert!(
            s.contains("i_pre"),
            "index inside old() is also pre-state: {s}"
        );
    }

    #[test]
    fn membership_in_comprehension_beta_reduces() {
        let e = env();
        let f = parse_form("(a, b) in {(i, n) : int * obj | 0 <= i & n ~= null}").unwrap();
        let g = expand_sets(&f, &e);
        assert_eq!(g.to_string(), "0 <= a & b ~= null");
    }

    #[test]
    fn membership_in_union_and_difference() {
        let e = env();
        let f = parse_form("x in (nodes union {y}) & x in (nodes minus {z})").unwrap();
        let g = expand_sets(&f, &e);
        let s = g.to_string();
        assert!(s.contains("x in nodes"));
        assert!(s.contains("x = y"));
        assert!(s.contains("~"));
    }

    #[test]
    fn set_equality_becomes_extensionality() {
        let e = env();
        let f = parse_form("content = old_content").unwrap();
        let g = expand_sets(&f, &e);
        match &g {
            Form::Forall(bs, body) => {
                assert_eq!(bs.len(), 2, "pair sets bind two element variables");
                assert!(matches!(**body, Form::Iff(..)));
            }
            other => panic!("expected forall, got {other}"),
        }
    }

    #[test]
    fn subseteq_expands_to_implication() {
        let e = env();
        let f = parse_form("nodes subseteq (nodes union {x})").unwrap();
        let g = expand_sets(&f, &e);
        assert!(matches!(g, Form::Forall(..)));
    }

    #[test]
    fn nnf_eliminates_implication_and_pushes_negation() {
        let f = parse_form("~(a --> b)").unwrap();
        let g = nnf(&f);
        assert_eq!(
            g,
            Form::and(vec![Form::var("a"), Form::not(Form::var("b"))])
        );
        let f = parse_form("~(forall x:int. p(x))").unwrap();
        let g = nnf(&f);
        assert!(matches!(g, Form::Exists(..)));
    }

    #[test]
    fn nnf_keeps_atoms() {
        let f = parse_form("~(x = y)").unwrap();
        assert_eq!(nnf(&f), Form::not(Form::eq(Form::var("x"), Form::var("y"))));
    }

    #[test]
    fn skolemize_top_level_existential() {
        let f = nnf(&parse_form("exists w:obj. w in nodes").unwrap());
        let mut fresh = FreshNames::new();
        let (g, sks) = skolemize(&f, &mut fresh);
        assert_eq!(sks.len(), 1);
        assert!(matches!(g, Form::Elem(..)));
    }

    #[test]
    fn skolemize_under_universal_introduces_function() {
        let f = nnf(&parse_form("forall x:obj. exists y:obj. edge(x, y)").unwrap());
        let mut fresh = FreshNames::new();
        let (g, sks) = skolemize(&f, &mut fresh);
        assert_eq!(sks.len(), 1);
        let s = g.to_string();
        assert!(s.contains("sk_y"), "skolem function applied to x: {s}");
        assert!(s.contains("(x)"), "skolem function applied to x: {s}");
    }
}
