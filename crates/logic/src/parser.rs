//! Parser for the ASCII specification formula syntax.
//!
//! The syntax follows the Jahob/Isabelle ASCII notation used in the paper,
//! adapted to plain ASCII operators:
//!
//! ```text
//! forall i:int, e:obj. 0 <= i & i < size --> (i, e) in content
//! exists i:int. (i, o) in old(content)
//! {(i, n) : int * obj | 0 <= i & i < size & n = elements[i]}
//! card(content) = csize
//! x.next ~= null & reach(next, first, x)
//! ```
//!
//! Operators by decreasing binding strength: postfix `.f` / `[i]`, unary `-`,
//! `*`, `+`/`-`, `union`/`inter`/`minus`, comparisons (`=`, `~=`, `<`, `<=`,
//! `>`, `>=`, `in`, `subseteq`), `~`, `&`, `|`, `-->` (right associative),
//! `<->`, quantifiers.

use crate::form::{Binding, Form};
use crate::sort::Sort;
use std::fmt;
use std::sync::Arc;

/// The error type returned by the formula parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the input at which the problem was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a formula from its ASCII syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
pub fn parse_form(input: &str) -> Result<Form, ParseError> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let form = parser.parse_form()?;
    parser.expect_eof()?;
    Ok(form)
}

/// Parses a sort from its ASCII syntax (`int`, `bool`, `obj`, `set<T>`,
/// `T * U`, parenthesised sorts).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_sort(input: &str) -> Result<Sort, ParseError> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let sort = parser.parse_sort()?;
    parser.expect_eof()?;
    Ok(sort)
}

// --------------------------------------------------------------------------
// Lexer
// --------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Punct(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    offset: usize,
}

const PUNCTS: &[&str] = &[
    "-->", "==>", "<->", ":=", "<=", ">=", "~=", "!=", "&&", "||", "(", ")", "{", "}", "[", "]",
    ",", ".", ":", "|", "&", "~", "!", "=", "<", ">", "+", "-", "*",
];

fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let text = &input[start..i];
            let value: i64 = text.parse().map_err(|_| ParseError {
                message: format!("integer literal out of range: {text}"),
                offset: start,
            })?;
            out.push(Spanned {
                tok: Tok::Int(value),
                offset: start,
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' || ch == '\'' {
                    i += 1;
                } else {
                    break;
                }
            }
            out.push(Spanned {
                tok: Tok::Ident(input[start..i].to_string()),
                offset: start,
            });
            continue;
        }
        for p in PUNCTS {
            if input[i..].starts_with(p) {
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    offset: i,
                });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(ParseError {
            message: format!("unexpected character {c:?}"),
            offset: i,
        });
    }
    out.push(Spanned {
        tok: Tok::Eof,
        offset: input.len(),
    });
    Ok(out)
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(name) if name == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            message,
            offset: self.peek_offset(),
        }
    }

    // form := iff
    fn parse_form(&mut self) -> Result<Form, ParseError> {
        self.parse_iff()
    }

    fn parse_iff(&mut self) -> Result<Form, ParseError> {
        let mut lhs = self.parse_implies()?;
        while self.eat_punct("<->") {
            let rhs = self.parse_implies()?;
            lhs = Form::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_implies(&mut self) -> Result<Form, ParseError> {
        let lhs = self.parse_or()?;
        if self.eat_punct("-->") || self.eat_punct("==>") {
            let rhs = self.parse_implies()?;
            Ok(Form::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Form, ParseError> {
        let mut parts = vec![self.parse_and()?];
        while self.eat_punct("|") || self.eat_punct("||") {
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            Form::or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<Form, ParseError> {
        let mut parts = vec![self.parse_not()?];
        while self.eat_punct("&") || self.eat_punct("&&") {
            parts.push(self.parse_not()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            Form::and(parts)
        })
    }

    fn parse_not(&mut self) -> Result<Form, ParseError> {
        if self.eat_punct("~") || self.eat_punct("!") {
            let inner = self.parse_not()?;
            return Ok(Form::not(inner));
        }
        if matches!(self.peek(), Tok::Ident(name) if name == "forall" || name == "exists") {
            return self.parse_quant();
        }
        self.parse_cmp()
    }

    fn parse_quant(&mut self) -> Result<Form, ParseError> {
        let is_forall = match self.bump() {
            Tok::Ident(name) => name == "forall",
            _ => unreachable!("caller checked"),
        };
        let bindings = self.parse_bindings()?;
        self.expect_punct(".")?;
        let body = self.parse_form()?;
        Ok(if is_forall {
            Form::forall(bindings, body)
        } else {
            Form::exists(bindings, body)
        })
    }

    fn parse_bindings(&mut self) -> Result<Vec<Binding>, ParseError> {
        let mut out = Vec::new();
        loop {
            // One group: `x y z : sort` or `x` (unknown sort) separated by commas.
            let mut names = Vec::new();
            loop {
                match self.peek().clone() {
                    Tok::Ident(name) => {
                        self.bump();
                        names.push(name);
                    }
                    _ => return Err(self.error("expected binder name".to_string())),
                }
                if !matches!(self.peek(), Tok::Ident(n) if n != "forall" && n != "exists") {
                    break;
                }
            }
            let sort = if self.eat_punct(":") {
                self.parse_sort()?
            } else {
                Sort::Unknown
            };
            for name in names {
                out.push((name, sort.clone()));
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(out)
    }

    /// Parses a sort: `atom ( '*' atom )*`.
    fn parse_sort(&mut self) -> Result<Sort, ParseError> {
        let mut parts = vec![self.parse_sort_atom()?];
        while self.eat_punct("*") {
            parts.push(self.parse_sort_atom()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            Sort::Tuple(parts)
        })
    }

    fn parse_sort_atom(&mut self) -> Result<Sort, ParseError> {
        if self.eat_punct("(") {
            let sort = self.parse_sort()?;
            self.expect_punct(")")?;
            return Ok(sort);
        }
        match self.bump() {
            Tok::Ident(name) => match name.as_str() {
                "int" => Ok(Sort::Int),
                "bool" => Ok(Sort::Bool),
                "obj" => Ok(Sort::Obj),
                "set" => {
                    self.expect_punct("<")?;
                    let elem = self.parse_sort()?;
                    self.expect_punct(">")?;
                    Ok(Sort::Set(Box::new(elem)))
                }
                other => Err(self.error(format!("unknown sort `{other}`"))),
            },
            other => Err(self.error(format!("expected a sort, found {other:?}"))),
        }
    }

    fn parse_cmp(&mut self) -> Result<Form, ParseError> {
        let lhs = self.parse_set_expr()?;
        let op = match self.peek() {
            Tok::Punct("=") => "=",
            Tok::Punct("~=") | Tok::Punct("!=") => "~=",
            Tok::Punct("<=") => "<=",
            Tok::Punct(">=") => ">=",
            Tok::Punct("<") => "<",
            Tok::Punct(">") => ">",
            Tok::Ident(name) if name == "in" => "in",
            Tok::Ident(name) if name == "subseteq" => "subseteq",
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_set_expr()?;
        Ok(match op {
            "=" => Form::eq(lhs, rhs),
            "~=" => Form::neq(lhs, rhs),
            "<" => Form::lt(lhs, rhs),
            "<=" => Form::le(lhs, rhs),
            ">" => Form::lt(rhs, lhs),
            ">=" => Form::le(rhs, lhs),
            "in" => Form::elem(lhs, rhs),
            "subseteq" => Form::Subseteq(Arc::new(lhs), Arc::new(rhs)),
            _ => unreachable!("operator list above"),
        })
    }

    fn parse_set_expr(&mut self) -> Result<Form, ParseError> {
        let mut lhs = self.parse_add()?;
        loop {
            if self.eat_ident("union") {
                let rhs = self.parse_add()?;
                lhs = Form::Union(Arc::new(lhs), Arc::new(rhs));
            } else if self.eat_ident("inter") {
                let rhs = self.parse_add()?;
                lhs = Form::Inter(Arc::new(lhs), Arc::new(rhs));
            } else if self.eat_ident("minus") {
                let rhs = self.parse_add()?;
                lhs = Form::Diff(Arc::new(lhs), Arc::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_add(&mut self) -> Result<Form, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            if self.eat_punct("+") {
                let rhs = self.parse_mul()?;
                lhs = Form::add(lhs, rhs);
            } else if self.eat_punct("-") {
                let rhs = self.parse_mul()?;
                lhs = Form::sub(lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_mul(&mut self) -> Result<Form, ParseError> {
        let mut lhs = self.parse_unary()?;
        while self.eat_punct("*") {
            let rhs = self.parse_unary()?;
            lhs = Form::mul(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Form, ParseError> {
        if self.eat_punct("-") {
            let inner = self.parse_unary()?;
            return Ok(match inner {
                Form::Int(value) => Form::Int(-value),
                other => Form::Neg(Arc::new(other)),
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Form, ParseError> {
        let mut base = self.parse_primary()?;
        loop {
            if self.eat_punct(".") {
                match self.bump() {
                    Tok::Ident(field) => {
                        base = Form::field_read(Form::var(field), base);
                    }
                    other => {
                        return Err(self.error(format!("expected field name, found {other:?}")))
                    }
                }
            } else if self.eat_punct("[") {
                let idx = self.parse_form()?;
                if self.eat_punct(":=") {
                    // Function update `f[x := v]` (field image after assignment).
                    let value = self.parse_form()?;
                    self.expect_punct("]")?;
                    base = Form::field_write(base, idx, value);
                } else {
                    self.expect_punct("]")?;
                    base = Form::array_read(Form::var("arrayState"), base, idx);
                }
            } else {
                return Ok(base);
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Form, ParseError> {
        match self.bump() {
            Tok::Int(value) => Ok(Form::Int(value)),
            Tok::Ident(name) => match name.as_str() {
                "true" => Ok(Form::TRUE),
                "false" => Ok(Form::FALSE),
                "null" => Ok(Form::Null),
                "emptyset" => Ok(Form::EmptySet),
                "old" => {
                    self.expect_punct("(")?;
                    let inner = self.parse_form()?;
                    self.expect_punct(")")?;
                    Ok(Form::old(inner))
                }
                "card" => {
                    self.expect_punct("(")?;
                    let inner = self.parse_form()?;
                    self.expect_punct(")")?;
                    Ok(Form::Card(Arc::new(inner)))
                }
                "if" => {
                    let cond = self.parse_form()?;
                    if !self.eat_ident("then") {
                        return Err(self.error("expected `then`".to_string()));
                    }
                    let then = self.parse_form()?;
                    if !self.eat_ident("else") {
                        return Err(self.error("expected `else`".to_string()));
                    }
                    let els = self.parse_form()?;
                    Ok(Form::Ite(Arc::new(cond), Arc::new(then), Arc::new(els)))
                }
                _ => {
                    if self.eat_punct("(") {
                        let mut args = Vec::new();
                        if !self.eat_punct(")") {
                            loop {
                                args.push(self.parse_form()?);
                                if self.eat_punct(")") {
                                    break;
                                }
                                self.expect_punct(",")?;
                            }
                        }
                        Ok(Form::App(name, args))
                    } else {
                        Ok(Form::Var(name))
                    }
                }
            },
            Tok::Punct("(") => {
                let first = self.parse_form()?;
                if self.eat_punct(",") {
                    let mut elems = vec![first];
                    loop {
                        elems.push(self.parse_form()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                    Ok(Form::Tuple(elems))
                } else {
                    self.expect_punct(")")?;
                    Ok(first)
                }
            }
            Tok::Punct("{") => self.parse_braced(),
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }

    /// Parses the inside of `{ ... }`: either a finite set literal, the empty
    /// set, or a comprehension `{pattern : sorts | body}`.
    fn parse_braced(&mut self) -> Result<Form, ParseError> {
        if self.eat_punct("}") {
            return Ok(Form::EmptySet);
        }
        let first = self.parse_form()?;
        if self.eat_punct(":") {
            // Comprehension: the pattern must be a variable or tuple of variables.
            let names = pattern_names(&first)
                .ok_or_else(|| self.error("comprehension pattern must be variables".to_string()))?;
            let sort = self.parse_sort()?;
            self.expect_punct("|")?;
            let body = self.parse_form()?;
            self.expect_punct("}")?;
            let sorts: Vec<Sort> = match sort {
                Sort::Tuple(parts) if parts.len() == names.len() => parts,
                single if names.len() == 1 => vec![single],
                other => {
                    return Err(ParseError {
                        message: format!(
                        "comprehension pattern has {} variables but sort {other} does not match",
                        names.len()
                    ),
                        offset: 0,
                    })
                }
            };
            let bindings = names.into_iter().zip(sorts).collect();
            return Ok(Form::Compr(bindings, Arc::new(body)));
        }
        if self.eat_punct("|") {
            // `{x | body}` — comprehension with unknown sort.
            let names = pattern_names(&first)
                .ok_or_else(|| self.error("comprehension pattern must be variables".to_string()))?;
            let body = self.parse_form()?;
            self.expect_punct("}")?;
            let bindings = names.into_iter().map(|n| (n, Sort::Unknown)).collect();
            return Ok(Form::Compr(bindings, Arc::new(body)));
        }
        // Finite set literal.
        let mut elems = vec![first];
        while self.eat_punct(",") {
            elems.push(self.parse_form()?);
        }
        self.expect_punct("}")?;
        Ok(Form::FiniteSet(elems))
    }
}

/// Extracts variable names from a comprehension pattern (`x` or `(x, y)`).
fn pattern_names(form: &Form) -> Option<Vec<String>> {
    match form {
        Form::Var(name) => Some(vec![name.clone()]),
        Form::Tuple(elems) => {
            let mut names = Vec::with_capacity(elems.len());
            for e in elems {
                match e {
                    Form::Var(name) => names.push(name.clone()),
                    _ => return None,
                }
            }
            Some(names)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_arith() {
        let f = parse_form("0 <= i & i < size").unwrap();
        assert_eq!(
            f,
            Form::and(vec![
                Form::le(Form::int(0), Form::var("i")),
                Form::lt(Form::var("i"), Form::var("size")),
            ])
        );
    }

    #[test]
    fn parse_implication_right_assoc() {
        let f = parse_form("a --> b --> c").unwrap();
        assert_eq!(
            f,
            Form::implies(
                Form::var("a"),
                Form::implies(Form::var("b"), Form::var("c"))
            )
        );
    }

    #[test]
    fn parse_quantifier_with_sorts() {
        let f = parse_form("forall j:int, e:obj. (j, e) in content --> 0 <= j").unwrap();
        match f {
            Form::Forall(bs, _) => {
                assert_eq!(bs.len(), 2);
                assert_eq!(bs[0], ("j".to_string(), Sort::Int));
                assert_eq!(bs[1], ("e".to_string(), Sort::Obj));
            }
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn parse_exists_old_and_tuple() {
        let f = parse_form("exists i:int. (i, o) in old(content)").unwrap();
        let printed = f.to_string();
        assert!(printed.contains("old(content)"));
        assert!(printed.contains("(i, o) in"));
    }

    #[test]
    fn parse_comprehension() {
        let f = parse_form("{(i, n) : int * obj | 0 <= i & i < size & n = elements[i]}").unwrap();
        match &f {
            Form::Compr(bs, body) => {
                assert_eq!(bs.len(), 2);
                assert_eq!(bs[0].1, Sort::Int);
                assert_eq!(bs[1].1, Sort::Obj);
                assert!(body.to_string().contains("elements[i]"));
            }
            other => panic!("expected comprehension, got {other:?}"),
        }
    }

    #[test]
    fn parse_field_chain_and_array() {
        let f = parse_form("x.next.next ~= null & a[i + 1] = v").unwrap();
        let s = f.to_string();
        assert!(s.contains("x.next.next"));
        assert!(s.contains("a[i + 1]"));
    }

    #[test]
    fn parse_set_operations_and_card() {
        let f = parse_form("card(content union {x}) = csize + 1").unwrap();
        assert!(matches!(f, Form::Eq(..)));
        let f = parse_form("a subseteq b & x in (s minus t)").unwrap();
        assert!(f.to_string().contains("subseteq"));
    }

    #[test]
    fn parse_greater_than_flips() {
        assert_eq!(
            parse_form("a > b").unwrap(),
            Form::lt(Form::var("b"), Form::var("a"))
        );
        assert_eq!(
            parse_form("a >= b").unwrap(),
            Form::le(Form::var("b"), Form::var("a"))
        );
    }

    #[test]
    fn parse_application() {
        let f = parse_form("reach(next, first, x)").unwrap();
        assert_eq!(
            f,
            Form::app(
                "reach",
                vec![Form::var("next"), Form::var("first"), Form::var("x")]
            )
        );
    }

    #[test]
    fn parse_empty_set_and_finite_set() {
        assert_eq!(parse_form("{}").unwrap(), Form::EmptySet);
        assert_eq!(
            parse_form("{x, y}").unwrap(),
            Form::FiniteSet(vec![Form::var("x"), Form::var("y")])
        );
    }

    #[test]
    fn parse_negative_literal() {
        assert_eq!(
            parse_form("x = -1").unwrap(),
            Form::eq(Form::var("x"), Form::int(-1))
        );
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_form("forall . p").unwrap_err();
        assert!(err.offset > 0);
        let err = parse_form("a &").unwrap_err();
        assert!(err.message.contains("unexpected"));
    }

    #[test]
    fn printer_output_reparses() {
        let inputs = [
            "forall i:int. 0 <= i & i < size --> elements[i] ~= null",
            "exists i:int. (i, o) in old(content) & ~(exists j:int. j < i & (j, o) in old(content))",
            "card(content) = csize",
            "{(i, n) : int * obj | n = elements[i]} = content",
            "x.next = null | x.next in nodes",
            "a subseteq b union c",
        ];
        for input in inputs {
            let f1 = parse_form(input).unwrap();
            let printed = f1.to_string();
            let f2 = parse_form(&printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
            assert_eq!(f1, f2, "round trip failed for {input}");
        }
    }

    #[test]
    fn parse_sort_syntax() {
        assert_eq!(parse_sort("int").unwrap(), Sort::Int);
        assert_eq!(parse_sort("set<int * obj>").unwrap(), Sort::int_obj_set());
        assert_eq!(parse_sort("set<obj>").unwrap(), Sort::obj_set());
        assert!(parse_sort("foo").is_err());
    }
}
