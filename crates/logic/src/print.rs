//! Pretty printing of formulas in the ASCII specification syntax.
//!
//! The output of the printer is re-parsable by [`crate::parser`] for every
//! construct that has a surface syntax (everything except `FieldWrite` /
//! `ArrayWrite`, which are printed in an explicit update notation).

use crate::form::Form;
use std::fmt;

/// Precedence levels, from loosest to tightest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Quant,
    Iff,
    Implies,
    Or,
    And,
    Not,
    Cmp,
    SetOp,
    Add,
    Mul,
    Atom,
}

impl fmt::Display for Form {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_form(f, self, Prec::Quant)
    }
}

fn parens_if(
    f: &mut fmt::Formatter<'_>,
    cond: bool,
    inner: impl FnOnce(&mut fmt::Formatter<'_>) -> fmt::Result,
) -> fmt::Result {
    if cond {
        write!(f, "(")?;
        inner(f)?;
        write!(f, ")")
    } else {
        inner(f)
    }
}

fn write_bindings(f: &mut fmt::Formatter<'_>, bs: &[(String, crate::Sort)]) -> fmt::Result {
    for (i, (name, sort)) in bs.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{name}:{sort}")?;
    }
    Ok(())
}

fn write_form(f: &mut fmt::Formatter<'_>, form: &Form, ctx: Prec) -> fmt::Result {
    match form {
        Form::Var(name) => write!(f, "{name}"),
        Form::Int(value) => write!(f, "{value}"),
        Form::Bool(true) => write!(f, "true"),
        Form::Bool(false) => write!(f, "false"),
        Form::Null => write!(f, "null"),
        Form::EmptySet => write!(f, "emptyset"),

        Form::Not(inner) => {
            // Print negated equalities with the dedicated operator.
            if let Form::Eq(a, b) = inner.as_ref() {
                return parens_if(f, ctx > Prec::Cmp, |f| {
                    write_form(f, a, Prec::SetOp)?;
                    write!(f, " ~= ")?;
                    write_form(f, b, Prec::SetOp)
                });
            }
            parens_if(f, ctx > Prec::Not, |f| {
                write!(f, "~")?;
                write_form(f, inner, Prec::Atom)
            })
        }
        Form::And(parts) => parens_if(f, ctx > Prec::And, |f| {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                write_form(f, p, Prec::Not)?;
            }
            Ok(())
        }),
        Form::Or(parts) => parens_if(f, ctx > Prec::Or, |f| {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write_form(f, p, Prec::And)?;
            }
            Ok(())
        }),
        Form::Implies(a, b) => parens_if(f, ctx > Prec::Implies, |f| {
            write_form(f, a, Prec::Or)?;
            write!(f, " --> ")?;
            write_form(f, b, Prec::Implies)
        }),
        Form::Iff(a, b) => parens_if(f, ctx > Prec::Iff, |f| {
            write_form(f, a, Prec::Implies)?;
            write!(f, " <-> ")?;
            write_form(f, b, Prec::Implies)
        }),
        Form::Ite(c, t, e) => {
            write!(f, "(if ")?;
            write_form(f, c, Prec::Quant)?;
            write!(f, " then ")?;
            write_form(f, t, Prec::Quant)?;
            write!(f, " else ")?;
            write_form(f, e, Prec::Quant)?;
            write!(f, ")")
        }

        Form::Eq(a, b) => parens_if(f, ctx > Prec::Cmp, |f| {
            write_form(f, a, Prec::SetOp)?;
            write!(f, " = ")?;
            write_form(f, b, Prec::SetOp)
        }),
        Form::Lt(a, b) => parens_if(f, ctx > Prec::Cmp, |f| {
            write_form(f, a, Prec::SetOp)?;
            write!(f, " < ")?;
            write_form(f, b, Prec::SetOp)
        }),
        Form::Le(a, b) => parens_if(f, ctx > Prec::Cmp, |f| {
            write_form(f, a, Prec::SetOp)?;
            write!(f, " <= ")?;
            write_form(f, b, Prec::SetOp)
        }),
        Form::Elem(a, b) => parens_if(f, ctx > Prec::Cmp, |f| {
            write_form(f, a, Prec::SetOp)?;
            write!(f, " in ")?;
            write_form(f, b, Prec::SetOp)
        }),
        Form::Subseteq(a, b) => parens_if(f, ctx > Prec::Cmp, |f| {
            write_form(f, a, Prec::SetOp)?;
            write!(f, " subseteq ")?;
            write_form(f, b, Prec::SetOp)
        }),

        Form::Union(a, b) => parens_if(f, ctx > Prec::SetOp, |f| {
            write_form(f, a, Prec::Add)?;
            write!(f, " union ")?;
            write_form(f, b, Prec::SetOp)
        }),
        Form::Inter(a, b) => parens_if(f, ctx > Prec::SetOp, |f| {
            write_form(f, a, Prec::Add)?;
            write!(f, " inter ")?;
            write_form(f, b, Prec::SetOp)
        }),
        Form::Diff(a, b) => parens_if(f, ctx > Prec::SetOp, |f| {
            write_form(f, a, Prec::Add)?;
            write!(f, " minus ")?;
            write_form(f, b, Prec::SetOp)
        }),

        Form::Add(a, b) => parens_if(f, ctx > Prec::Add, |f| {
            write_form(f, a, Prec::Add)?;
            write!(f, " + ")?;
            write_form(f, b, Prec::Mul)
        }),
        Form::Sub(a, b) => parens_if(f, ctx > Prec::Add, |f| {
            write_form(f, a, Prec::Add)?;
            write!(f, " - ")?;
            write_form(f, b, Prec::Mul)
        }),
        Form::Mul(a, b) => parens_if(f, ctx > Prec::Mul, |f| {
            write_form(f, a, Prec::Mul)?;
            write!(f, " * ")?;
            write_form(f, b, Prec::Atom)
        }),
        Form::Neg(a) => parens_if(f, ctx > Prec::Mul, |f| {
            write!(f, "-")?;
            write_form(f, a, Prec::Atom)
        }),

        Form::Forall(bs, body) => parens_if(f, ctx > Prec::Quant, |f| {
            write!(f, "forall ")?;
            write_bindings(f, bs)?;
            write!(f, ". ")?;
            write_form(f, body, Prec::Quant)
        }),
        Form::Exists(bs, body) => parens_if(f, ctx > Prec::Quant, |f| {
            write!(f, "exists ")?;
            write_bindings(f, bs)?;
            write!(f, ". ")?;
            write_form(f, body, Prec::Quant)
        }),
        Form::Compr(bs, body) => {
            write!(f, "{{(")?;
            for (i, (name, _)) in bs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name}")?;
            }
            write!(f, ")")?;
            // Sorts are printed so the comprehension is re-parsable.
            write!(f, " : ")?;
            for (i, (_, sort)) in bs.iter().enumerate() {
                if i > 0 {
                    write!(f, " * ")?;
                }
                write!(f, "{sort}")?;
            }
            write!(f, " | ")?;
            write_form(f, body, Prec::Quant)?;
            write!(f, "}}")
        }

        Form::App(name, args) => {
            write!(f, "{name}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_form(f, a, Prec::Quant)?;
            }
            write!(f, ")")
        }
        Form::FieldRead(field, obj) => {
            write_form(f, obj, Prec::Atom)?;
            write!(f, ".")?;
            write_form(f, field, Prec::Atom)
        }
        Form::FieldWrite(field, at, val) => {
            write_form(f, field, Prec::Atom)?;
            write!(f, "[")?;
            write_form(f, at, Prec::Quant)?;
            write!(f, " := ")?;
            write_form(f, val, Prec::Quant)?;
            write!(f, "]")
        }
        Form::ArrayRead(_, arr, idx) => {
            write_form(f, arr, Prec::Atom)?;
            write!(f, "[")?;
            write_form(f, idx, Prec::Quant)?;
            write!(f, "]")
        }
        Form::ArrayWrite(state, arr, idx, val) => {
            write_form(f, state, Prec::Atom)?;
            write!(f, "[(")?;
            write_form(f, arr, Prec::Quant)?;
            write!(f, ", ")?;
            write_form(f, idx, Prec::Quant)?;
            write!(f, ") := ")?;
            write_form(f, val, Prec::Quant)?;
            write!(f, "]")
        }

        Form::FiniteSet(elems) => {
            write!(f, "{{")?;
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_form(f, e, Prec::Quant)?;
            }
            write!(f, "}}")
        }
        Form::Card(set) => {
            write!(f, "card(")?;
            write_form(f, set, Prec::Quant)?;
            write!(f, ")")
        }
        Form::Tuple(elems) => {
            write!(f, "(")?;
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_form(f, e, Prec::Quant)?;
            }
            write!(f, ")")
        }
        Form::Old(inner) => {
            write!(f, "old(")?;
            write_form(f, inner, Prec::Quant)?;
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    #[test]
    fn print_basic_formula() {
        let f = Form::implies(
            Form::and(vec![
                Form::le(Form::int(0), Form::var("i")),
                Form::lt(Form::var("i"), Form::var("size")),
            ]),
            Form::neq(Form::var("x"), Form::Null),
        );
        let s = f.to_string();
        assert!(s.contains("0 <= i"));
        assert!(s.contains("-->"));
        assert!(s.contains("~"));
    }

    #[test]
    fn print_quantifier() {
        let f = Form::forall(
            vec![("j".into(), Sort::Int), ("e".into(), Sort::Obj)],
            Form::elem(
                Form::Tuple(vec![Form::var("j"), Form::var("e")]),
                Form::var("content"),
            ),
        );
        let s = f.to_string();
        assert!(s.starts_with("forall j:int, e:obj."));
        assert!(s.contains("(j, e) in content"));
    }

    #[test]
    fn print_field_and_array() {
        let fr = Form::field_read(Form::var("next"), Form::var("x"));
        assert_eq!(fr.to_string(), "x.next");
        let ar = Form::array_read(
            Form::var("arrayState"),
            Form::var("elements"),
            Form::var("i"),
        );
        assert_eq!(ar.to_string(), "elements[i]");
    }

    #[test]
    fn print_parenthesises_nested_or_in_and() {
        let f = Form::and(vec![
            Form::or(vec![Form::var("a"), Form::var("b")]),
            Form::var("c"),
        ]);
        assert_eq!(f.to_string(), "(a | b) & c");
    }
}
