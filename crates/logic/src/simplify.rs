//! Structural simplification of formulas.
//!
//! [`simplify`] rebuilds a formula bottom-up through the smart constructors of
//! [`Form`], which fold constants, flatten conjunction/disjunction, drop
//! neutral elements and collapse trivially true/false branches.  It is applied
//! after verification-condition generation to keep sequents small before they
//! reach the provers.

use crate::form::Form;

/// Simplifies a formula bottom-up.  The result is logically equivalent to the
/// input.
pub fn simplify(form: &Form) -> Form {
    let form = form.map_children(simplify);
    match form {
        Form::Not(inner) => Form::not(Form::take(inner)),
        Form::And(parts) => Form::and(parts),
        Form::Or(parts) => Form::or(parts),
        Form::Implies(a, b) => simplify_implies(Form::take(a), Form::take(b)),
        Form::Iff(a, b) => Form::iff(Form::take(a), Form::take(b)),
        Form::Eq(a, b) => Form::eq(Form::take(a), Form::take(b)),
        Form::Lt(a, b) => Form::lt(Form::take(a), Form::take(b)),
        Form::Le(a, b) => Form::le(Form::take(a), Form::take(b)),
        Form::Add(a, b) => Form::add(Form::take(a), Form::take(b)),
        Form::Sub(a, b) => Form::sub(Form::take(a), Form::take(b)),
        Form::Mul(a, b) => Form::mul(Form::take(a), Form::take(b)),
        Form::Ite(c, t, e) => match c.as_ref() {
            Form::Bool(true) => Form::take(t),
            Form::Bool(false) => Form::take(e),
            _ => {
                if t == e {
                    Form::take(t)
                } else {
                    Form::Ite(c, t, e)
                }
            }
        },
        Form::Forall(bs, body) => Form::forall(bs, Form::take(body)),
        Form::Exists(bs, body) => Form::exists(bs, Form::take(body)),
        Form::Elem(e, s) => Form::elem(Form::take(e), Form::take(s)),
        other => other,
    }
}

/// Simplifies an implication, additionally dropping conjuncts of the
/// conclusion that literally appear among the hypotheses (a cheap but
/// frequently-firing case produced by the wlp calculus).
fn simplify_implies(lhs: Form, rhs: Form) -> Form {
    let hyps: Vec<&Form> = lhs.conjuncts();
    let kept: Vec<Form> = rhs
        .into_conjuncts()
        .into_iter()
        .filter(|c| !hyps.contains(&c))
        .collect();
    Form::implies(lhs, Form::and(kept))
}

/// Repeatedly simplifies until a fixpoint is reached (bounded by `limit`
/// rounds to guarantee termination even in pathological cases).
pub fn simplify_fix(form: &Form, limit: usize) -> Form {
    let mut current = form.clone();
    for _ in 0..limit {
        let next = simplify(&current);
        if next == current {
            return current;
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    #[test]
    fn constant_folding_cascades() {
        let f = parse_form("(1 + 2) * 3 < 10 & true").unwrap();
        assert_eq!(simplify(&f), Form::TRUE);
    }

    #[test]
    fn implication_with_repeated_hypothesis_collapses() {
        let f = parse_form("p & q --> p").unwrap();
        assert_eq!(simplify(&f), Form::TRUE);
        let f = parse_form("p & q --> p & r").unwrap();
        let s = simplify(&f);
        assert_eq!(s.to_string(), "p & q --> r");
    }

    #[test]
    fn ite_simplifies_on_constant_condition() {
        let f = parse_form("(if true then x else y) = x").unwrap();
        assert_eq!(simplify(&f), Form::TRUE);
    }

    #[test]
    fn quantifier_over_true_body_disappears() {
        let f = parse_form("forall x:int. 1 + 1 = 2").unwrap();
        assert_eq!(simplify(&f), Form::TRUE);
    }

    #[test]
    fn simplify_fix_reaches_fixpoint() {
        let f = parse_form("~~(a & true & (false | b))").unwrap();
        let s = simplify_fix(&f, 8);
        assert_eq!(s, Form::and(vec![Form::var("a"), Form::var("b")]));
    }

    #[test]
    fn simplification_is_idempotent_on_examples() {
        let inputs = [
            "forall i:int. 0 <= i & i < size --> elements[i] ~= null",
            "a --> (b --> a)",
            "x in s union t",
        ];
        for input in inputs {
            let f = parse_form(input).unwrap();
            let once = simplify(&f);
            let twice = simplify(&once);
            assert_eq!(once, twice, "not idempotent on {input}");
        }
    }
}
