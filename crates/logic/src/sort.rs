//! Sorts (types) of the specification logic.
//!
//! The logic is many-sorted.  The sorts mirror the fragment of Isabelle/HOL
//! that Jahob specifications actually use: booleans, mathematical integers,
//! object references, finite sets, tuples, and function sorts.  Function
//! sorts model Java fields (`obj => obj`, `obj => int`) and the global array
//! state (`obj => int => obj`), following Jahob's encoding of field and array
//! assignment as function update.

use serde::{Deserialize, Serialize};

/// A sort (type) of the specification logic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Sort {
    /// Propositions / boolean values.
    Bool,
    /// Unbounded mathematical integers.
    Int,
    /// Object references (including `null`).
    Obj,
    /// Finite sets of elements of the given sort.
    Set(Box<Sort>),
    /// Tuples; used for sets of pairs such as `content :: (int * obj) set`.
    Tuple(Vec<Sort>),
    /// Total functions; used for fields and the array state.
    Fn(Vec<Sort>, Box<Sort>),
    /// Placeholder for not-yet-inferred sorts (produced by the parser when a
    /// binder omits its annotation; resolved by sort inference).
    #[default]
    Unknown,
}

impl Sort {
    /// `obj set` — sets of object references.
    pub fn obj_set() -> Sort {
        Sort::Set(Box::new(Sort::Obj))
    }

    /// `int set` — sets of integers.
    pub fn int_set() -> Sort {
        Sort::Set(Box::new(Sort::Int))
    }

    /// `(int * obj) set` — the sort of indexed-content abstraction variables.
    pub fn int_obj_set() -> Sort {
        Sort::Set(Box::new(Sort::Tuple(vec![Sort::Int, Sort::Obj])))
    }

    /// An object-valued field: `obj => obj`.
    pub fn obj_field() -> Sort {
        Sort::Fn(vec![Sort::Obj], Box::new(Sort::Obj))
    }

    /// An integer-valued field: `obj => int`.
    pub fn int_field() -> Sort {
        Sort::Fn(vec![Sort::Obj], Box::new(Sort::Int))
    }

    /// A boolean-valued field: `obj => bool`.
    pub fn bool_field() -> Sort {
        Sort::Fn(vec![Sort::Obj], Box::new(Sort::Bool))
    }

    /// The global array state used for object arrays: `obj => int => obj`
    /// (curried here as a two-argument function sort).
    pub fn obj_array_state() -> Sort {
        Sort::Fn(vec![Sort::Obj, Sort::Int], Box::new(Sort::Obj))
    }

    /// The global array state used for integer arrays: `obj => int => int`.
    pub fn int_array_state() -> Sort {
        Sort::Fn(vec![Sort::Obj, Sort::Int], Box::new(Sort::Int))
    }

    /// Returns the element sort if this is a set sort.
    pub fn set_elem(&self) -> Option<&Sort> {
        match self {
            Sort::Set(e) => Some(e),
            _ => None,
        }
    }

    /// Returns `true` if this is a set sort.
    pub fn is_set(&self) -> bool {
        matches!(self, Sort::Set(_))
    }

    /// Returns `true` if this is a function sort.
    pub fn is_fn(&self) -> bool {
        matches!(self, Sort::Fn(..))
    }

    /// Returns `true` if this sort is fully known (contains no [`Sort::Unknown`]).
    pub fn is_known(&self) -> bool {
        match self {
            Sort::Unknown => false,
            Sort::Bool | Sort::Int | Sort::Obj => true,
            Sort::Set(e) => e.is_known(),
            Sort::Tuple(ts) => ts.iter().all(Sort::is_known),
            Sort::Fn(args, ret) => args.iter().all(Sort::is_known) && ret.is_known(),
        }
    }
}

impl std::fmt::Display for Sort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sort::Bool => write!(f, "bool"),
            Sort::Int => write!(f, "int"),
            Sort::Obj => write!(f, "obj"),
            Sort::Set(e) => write!(f, "({e}) set"),
            Sort::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Sort::Fn(args, ret) => {
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, " => ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, " => {ret})")
            }
            Sort::Unknown => write!(f, "?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_is_stable() {
        assert_eq!(Sort::Bool.to_string(), "bool");
        // The exact nesting of parentheses is not important; stability is.
        let s = Sort::int_obj_set().to_string();
        assert!(s.contains("int * obj") && s.ends_with("set"));
        let s = Sort::obj_array_state().to_string();
        assert!(s.contains("obj") && s.contains("int"));
    }

    #[test]
    fn set_elem_accessor() {
        assert_eq!(Sort::obj_set().set_elem(), Some(&Sort::Obj));
        assert_eq!(Sort::Int.set_elem(), None);
        assert!(Sort::obj_set().is_set());
        assert!(!Sort::Obj.is_set());
    }

    #[test]
    fn known_detection() {
        assert!(Sort::int_obj_set().is_known());
        assert!(!Sort::Set(Box::new(Sort::Unknown)).is_known());
        assert!(!Sort::Unknown.is_known());
        assert!(Sort::obj_field().is_known());
    }

    #[test]
    fn field_sorts() {
        assert_eq!(
            Sort::obj_field(),
            Sort::Fn(vec![Sort::Obj], Box::new(Sort::Obj))
        );
        assert!(Sort::obj_field().is_fn());
        assert!(!Sort::Obj.is_fn());
    }
}
