//! Sort environments and sort inference for terms.
//!
//! The provers need to know the sort of ground terms (for quantifier
//! instantiation) and of set expressions (to expand set equalities by
//! extensionality).  A [`SortEnv`] records the sorts of free variables and the
//! signatures of named function symbols; [`SortEnv::sort_of`] computes the
//! sort of a term, returning [`Sort::Unknown`] when it cannot tell.

use crate::form::Form;
use crate::sort::Sort;
use std::collections::HashMap;
use std::sync::Arc;

/// A sort environment: sorts of variables and signatures of named symbols.
#[derive(Debug, Clone, Default)]
pub struct SortEnv {
    vars: HashMap<String, Sort>,
    funs: HashMap<String, (Vec<Sort>, Sort)>,
}

impl SortEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or re-declares) a variable.
    pub fn declare_var(&mut self, name: impl Into<String>, sort: Sort) {
        self.vars.insert(name.into(), sort);
    }

    /// Declares a named function or predicate symbol.
    pub fn declare_fun(&mut self, name: impl Into<String>, args: Vec<Sort>, ret: Sort) {
        self.funs.insert(name.into(), (args, ret));
    }

    /// Looks up a variable's sort.
    ///
    /// Splitting renames havocked and universally quantified variables to
    /// fresh incarnations (`x#3` from `Vc::ForallVars`, `x$7` from goal
    /// quantifiers); an incarnation shares the sort of its base variable, so
    /// lookup falls back to stripping those numeric suffixes.
    pub fn var_sort(&self, name: &str) -> Option<&Sort> {
        if let Some(sort) = self.vars.get(name) {
            return Some(sort);
        }
        let mut base = name;
        while let Some(split_at) = base.rfind(['#', '$']) {
            let (stem, suffix) = base.split_at(split_at);
            if suffix.len() < 2 || !suffix[1..].bytes().all(|b| b.is_ascii_digit()) {
                break;
            }
            if let Some(sort) = self.vars.get(stem) {
                return Some(sort);
            }
            base = stem;
        }
        None
    }

    /// Looks up a function signature.
    pub fn fun_sig(&self, name: &str) -> Option<&(Vec<Sort>, Sort)> {
        self.funs.get(name)
    }

    /// Iterates over all declared variables.
    pub fn vars(&self) -> impl Iterator<Item = (&String, &Sort)> {
        self.vars.iter()
    }

    /// Merges another environment into this one (other's entries win).
    pub fn extend_from(&mut self, other: &SortEnv) {
        for (k, v) in &other.vars {
            self.vars.insert(k.clone(), v.clone());
        }
        for (k, v) in &other.funs {
            self.funs.insert(k.clone(), v.clone());
        }
    }

    /// Computes the sort of a term, with extra local bindings for bound
    /// variables.  Unknown pieces yield [`Sort::Unknown`] rather than errors.
    pub fn sort_of_with(&self, form: &Form, locals: &HashMap<String, Sort>) -> Sort {
        match form {
            Form::Var(name) => locals
                .get(name)
                .cloned()
                .or_else(|| self.var_sort(name).cloned())
                .unwrap_or(Sort::Unknown),
            Form::Int(_)
            | Form::Add(..)
            | Form::Sub(..)
            | Form::Mul(..)
            | Form::Neg(_)
            | Form::Card(_) => Sort::Int,
            Form::Bool(_)
            | Form::Not(_)
            | Form::And(_)
            | Form::Or(_)
            | Form::Implies(..)
            | Form::Iff(..)
            | Form::Eq(..)
            | Form::Lt(..)
            | Form::Le(..)
            | Form::Elem(..)
            | Form::Subseteq(..)
            | Form::Forall(..)
            | Form::Exists(..) => Sort::Bool,
            Form::Null => Sort::Obj,
            Form::EmptySet => Sort::Set(Box::new(Sort::Unknown)),
            Form::Ite(_, t, e) => {
                let ts = self.sort_of_with(t, locals);
                if ts.is_known() {
                    ts
                } else {
                    self.sort_of_with(e, locals)
                }
            }
            Form::App(name, _) => self
                .funs
                .get(name)
                .map(|(_, ret)| ret.clone())
                .unwrap_or(Sort::Unknown),
            Form::FieldRead(field, _) => match self.sort_of_with(field, locals) {
                Sort::Fn(_, ret) => *ret,
                _ => Sort::Unknown,
            },
            Form::FieldWrite(field, _, _) => self.sort_of_with(field, locals),
            Form::ArrayRead(state, _, _) => match self.sort_of_with(state, locals) {
                Sort::Fn(_, ret) => *ret,
                _ => Sort::Obj,
            },
            Form::ArrayWrite(state, _, _, _) => self.sort_of_with(state, locals),
            Form::FiniteSet(elems) => {
                let elem = elems
                    .first()
                    .map(|e| self.sort_of_with(e, locals))
                    .unwrap_or(Sort::Unknown);
                Sort::Set(Box::new(elem))
            }
            Form::Union(a, b) | Form::Inter(a, b) | Form::Diff(a, b) => {
                let sa = self.sort_of_with(a, locals);
                if sa.is_known() {
                    sa
                } else {
                    self.sort_of_with(b, locals)
                }
            }
            Form::Compr(bindings, _) => {
                let elem = if bindings.len() == 1 {
                    bindings[0].1.clone()
                } else {
                    Sort::Tuple(bindings.iter().map(|(_, s)| s.clone()).collect())
                };
                Sort::Set(Box::new(elem))
            }
            Form::Tuple(elems) => {
                Sort::Tuple(elems.iter().map(|e| self.sort_of_with(e, locals)).collect())
            }
            Form::Old(inner) => self.sort_of_with(inner, locals),
        }
    }

    /// Computes the sort of a closed term (no extra local bindings).
    pub fn sort_of(&self, form: &Form) -> Sort {
        self.sort_of_with(form, &HashMap::new())
    }

    /// Returns `true` if the term has a set sort under this environment.
    pub fn is_set_sorted(&self, form: &Form) -> bool {
        self.sort_of(form).is_set()
    }

    /// Fills in [`Sort::Unknown`] binder annotations inside quantifiers and
    /// comprehensions by inspecting how each bound variable is used in the
    /// body (arithmetic / comparison with integers implies `int`; field reads,
    /// comparison with `null`, or use as a field-read object implies `obj`).
    pub fn annotate_binders(&self, form: &Form) -> Form {
        match form {
            Form::Forall(bs, body) => {
                let body2 = self.annotate_binders(body);
                let bs2 = self.resolve_bindings(bs, &body2);
                Form::Forall(bs2, Arc::new(body2))
            }
            Form::Exists(bs, body) => {
                let body2 = self.annotate_binders(body);
                let bs2 = self.resolve_bindings(bs, &body2);
                Form::Exists(bs2, Arc::new(body2))
            }
            Form::Compr(bs, body) => {
                let body2 = self.annotate_binders(body);
                let bs2 = self.resolve_bindings(bs, &body2);
                Form::Compr(bs2, Arc::new(body2))
            }
            other => other.map_children(|c| self.annotate_binders(c)),
        }
    }

    fn resolve_bindings(&self, bindings: &[(String, Sort)], body: &Form) -> Vec<(String, Sort)> {
        bindings
            .iter()
            .map(|(name, sort)| {
                if sort.is_known() {
                    (name.clone(), sort.clone())
                } else {
                    (
                        name.clone(),
                        infer_usage_sort(name, body).unwrap_or(Sort::Unknown),
                    )
                }
            })
            .collect()
    }
}

/// Infers the sort of `name` from its uses in `body`, if a use determines it.
fn infer_usage_sort(name: &str, body: &Form) -> Option<Sort> {
    let mut found: Option<Sort> = None;
    infer_rec(name, body, &mut found);
    found
}

fn is_var(name: &str, form: &Form) -> bool {
    matches!(form, Form::Var(v) if v == name)
}

fn infer_rec(name: &str, form: &Form, found: &mut Option<Sort>) {
    if found.is_some() {
        return;
    }
    match form {
        Form::Lt(a, b) | Form::Le(a, b) | Form::Add(a, b) | Form::Sub(a, b) | Form::Mul(a, b)
            if is_var(name, a) || is_var(name, b) =>
        {
            *found = Some(Sort::Int);
            return;
        }
        Form::Eq(a, b) => {
            if (is_var(name, a) && matches!(**b, Form::Null))
                || (is_var(name, b) && matches!(**a, Form::Null))
            {
                *found = Some(Sort::Obj);
                return;
            }
            if (is_var(name, a) && matches!(**b, Form::Int(_)))
                || (is_var(name, b) && matches!(**a, Form::Int(_)))
            {
                *found = Some(Sort::Int);
                return;
            }
        }
        Form::FieldRead(_, obj) if is_var(name, obj) => {
            *found = Some(Sort::Obj);
            return;
        }
        Form::ArrayRead(_, obj, idx) => {
            if is_var(name, obj) {
                *found = Some(Sort::Obj);
                return;
            }
            if is_var(name, idx) {
                *found = Some(Sort::Int);
                return;
            }
        }
        Form::Forall(bs, _) | Form::Exists(bs, _) | Form::Compr(bs, _)
            if bs.iter().any(|(b, _)| b == name) =>
        {
            return; // shadowed
        }
        _ => {}
    }
    form.for_each_child(|c| infer_rec(name, c, found));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        e.declare_var("size", Sort::Int);
        e.declare_var("content", Sort::int_obj_set());
        e.declare_var("nodes", Sort::obj_set());
        e.declare_var("first", Sort::Obj);
        e.declare_var("next", Sort::obj_field());
        e.declare_var("elements", Sort::Obj);
        e.declare_var("arrayState", Sort::obj_array_state());
        e.declare_fun(
            "reach",
            vec![Sort::obj_field(), Sort::Obj, Sort::Obj],
            Sort::Bool,
        );
        e
    }

    #[test]
    fn sort_of_basic_terms() {
        let e = env();
        assert_eq!(e.sort_of(&parse_form("size + 1").unwrap()), Sort::Int);
        assert_eq!(e.sort_of(&parse_form("first.next").unwrap()), Sort::Obj);
        assert_eq!(e.sort_of(&parse_form("elements[3]").unwrap()), Sort::Obj);
        assert_eq!(
            e.sort_of(&parse_form("content").unwrap()),
            Sort::int_obj_set()
        );
        assert_eq!(e.sort_of(&parse_form("card(content)").unwrap()), Sort::Int);
        assert_eq!(e.sort_of(&parse_form("size < 3").unwrap()), Sort::Bool);
        assert_eq!(
            e.sort_of(&parse_form("reach(next, first, first)").unwrap()),
            Sort::Bool
        );
    }

    #[test]
    fn sort_of_set_expressions() {
        let e = env();
        assert!(e.is_set_sorted(&parse_form("nodes union {first}").unwrap()));
        assert!(e.is_set_sorted(&parse_form("content").unwrap()));
        assert!(!e.is_set_sorted(&parse_form("size").unwrap()));
        let compr = parse_form("{(i, n) : int * obj | n = elements[i]}").unwrap();
        assert_eq!(e.sort_of(&compr), Sort::int_obj_set());
    }

    #[test]
    fn annotate_binders_from_usage() {
        let e = env();
        let f = parse_form("forall x. x < size").unwrap();
        let g = e.annotate_binders(&f);
        match g {
            Form::Forall(bs, _) => assert_eq!(bs[0].1, Sort::Int),
            other => panic!("expected forall, got {other:?}"),
        }
        let f = parse_form("forall x. x.next = null").unwrap();
        let g = e.annotate_binders(&f);
        match g {
            Form::Forall(bs, _) => assert_eq!(bs[0].1, Sort::Obj),
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn unknown_variables_have_unknown_sort() {
        let e = env();
        assert_eq!(e.sort_of(&Form::var("mystery")), Sort::Unknown);
    }

    #[test]
    fn tuple_sort() {
        let e = env();
        let f = parse_form("(size, first)").unwrap();
        assert_eq!(e.sort_of(&f), Sort::Tuple(vec![Sort::Int, Sort::Obj]));
    }
}
