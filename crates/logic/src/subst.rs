//! Free variables, capture-avoiding substitution and fresh name generation.

use crate::form::{Binding, Form};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Returns the set of free variable names of a formula.
pub fn free_vars(form: &Form) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_free(form, &mut Vec::new(), &mut out);
    out
}

fn collect_free(form: &Form, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match form {
        Form::Var(name) => {
            if !bound.iter().any(|b| b == name) {
                out.insert(name.clone());
            }
        }
        Form::Forall(bs, body) | Form::Exists(bs, body) | Form::Compr(bs, body) => {
            let n = bound.len();
            bound.extend(bs.iter().map(|(v, _)| v.clone()));
            collect_free(body, bound, out);
            bound.truncate(n);
        }
        other => other.for_each_child(|c| collect_free(c, bound, out)),
    }
}

/// Returns `true` if `name` occurs free in `form`.
pub fn occurs_free(name: &str, form: &Form) -> bool {
    free_vars(form).contains(name)
}

/// A generator of fresh names, guaranteed distinct from all names it has seen.
#[derive(Debug, Default, Clone)]
pub struct FreshNames {
    counter: u64,
    used: BTreeSet<String>,
}

impl FreshNames {
    /// Creates an empty generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a name as used so it is never generated.
    pub fn reserve(&mut self, name: &str) {
        self.used.insert(name.to_string());
    }

    /// Marks every free variable of `form` as used.
    pub fn reserve_all(&mut self, form: &Form) {
        for v in free_vars(form) {
            self.used.insert(v);
        }
    }

    /// Produces a fresh name based on the given stem.
    pub fn fresh(&mut self, stem: &str) -> String {
        loop {
            self.counter += 1;
            let candidate = format!("{stem}_{}", self.counter);
            if !self.used.contains(&candidate) {
                self.used.insert(candidate.clone());
                return candidate;
            }
        }
    }
}

/// Capture-avoiding substitution of variables by terms.
///
/// Every free occurrence of a key of `map` in `form` is replaced by the
/// corresponding term; bound variables are renamed as necessary to avoid
/// capturing free variables of the replacement terms.
///
/// Substitution results are memoised per shared subtree (keyed by node
/// address) for the duration of one call: on hash-consed formulas (see
/// [`crate::intern`]) a subtree that occurs many times is rewritten once and
/// the result's `Arc`s are reused, making the pass linear in the DAG size
/// rather than the tree unfolding.
pub fn substitute(form: &Form, map: &HashMap<String, Form>) -> Form {
    if map.is_empty() {
        return form.clone();
    }
    // Variables that must not be captured by binders.
    let mut avoid: BTreeSet<String> = BTreeSet::new();
    for v in map.values() {
        avoid.extend(free_vars(v));
    }
    avoid.extend(map.keys().cloned());
    subst_rec(form, map, &avoid, &mut HashMap::new())
}

/// Per-call memo: node address → substituted form.  Only valid for one
/// (`map`, `avoid`) pair; binder cases that change the map recurse with a
/// fresh memo.
type SubstMemo = HashMap<usize, Form>;

fn subst_rec(
    form: &Form,
    map: &HashMap<String, Form>,
    avoid: &BTreeSet<String>,
    memo: &mut SubstMemo,
) -> Form {
    let key = form as *const Form as usize;
    if let Some(hit) = memo.get(&key) {
        return hit.clone();
    }
    let out = match form {
        Form::Var(name) => match map.get(name) {
            Some(replacement) => replacement.clone(),
            None => form.clone(),
        },
        Form::Forall(bs, body) => {
            let (bs2, body2) = binder_body(bs, body, map, avoid, memo);
            Form::Forall(bs2, Arc::new(body2))
        }
        Form::Exists(bs, body) => {
            let (bs2, body2) = binder_body(bs, body, map, avoid, memo);
            Form::Exists(bs2, Arc::new(body2))
        }
        Form::Compr(bs, body) => {
            let (bs2, body2) = binder_body(bs, body, map, avoid, memo);
            Form::Compr(bs2, Arc::new(body2))
        }
        other => other.map_children(|c| subst_rec(c, map, avoid, memo)),
    };
    memo.insert(key, out.clone());
    out
}

/// Substitutes under a binder.  The shared memo may only ever key nodes
/// reachable from the original root (their addresses are stable for the whole
/// call): when the binder renames or shadows anything, the recursion works on
/// a temporary body and a different map, so it runs with its own short-lived
/// memo that is dropped before the temporary is.
fn binder_body(
    bindings: &[Binding],
    body: &Form,
    map: &HashMap<String, Form>,
    avoid: &BTreeSet<String>,
    memo: &mut SubstMemo,
) -> (Vec<Binding>, Form) {
    let (bs2, body2, map2) = rebind(bindings, body, map, avoid);
    let substituted = match body2 {
        // No binder was renamed and no key shadowed: recurse on the original
        // (stable) body with the unchanged map and the shared memo.
        None if map2.len() == map.len() => subst_rec(body, map, avoid, memo),
        // Keys were shadowed: same stable body, but a different map — the
        // shared memo entries do not apply.
        None => subst_rec(body, &map2, avoid, &mut HashMap::new()),
        // Binders were renamed: the body is a fresh temporary tree; its
        // addresses must not outlive this scope inside any memo.
        Some(renamed) => subst_rec(&renamed, &map2, avoid, &mut HashMap::new()),
    };
    (bs2, substituted)
}

/// Renames binders that clash with `avoid`, and removes shadowed keys from the
/// substitution map for the scope of the binder.  Returns `None` as the body
/// when no binder had to be renamed (the original body applies unchanged).
fn rebind(
    bindings: &[Binding],
    body: &Form,
    map: &HashMap<String, Form>,
    avoid: &BTreeSet<String>,
) -> (Vec<Binding>, Option<Form>, HashMap<String, Form>) {
    let mut fresh = FreshNames::new();
    for a in avoid {
        fresh.reserve(a);
    }
    for v in free_vars(body) {
        fresh.reserve(&v);
    }
    // Only the substitutions that survive under this binder can capture, so
    // compute the set of their free variables after removing shadowed keys.
    let mut scoped_map = map.clone();
    for (name, _) in bindings {
        scoped_map.remove(name);
    }
    let mut capturable: BTreeSet<String> = BTreeSet::new();
    for value in scoped_map.values() {
        capturable.extend(free_vars(value));
    }
    let mut new_bindings = Vec::with_capacity(bindings.len());
    let mut rename: HashMap<String, Form> = HashMap::new();
    for (name, sort) in bindings {
        if capturable.contains(name) {
            let new_name = fresh.fresh(name);
            rename.insert(name.clone(), Form::Var(new_name.clone()));
            new_bindings.push((new_name, sort.clone()));
        } else {
            new_bindings.push((name.clone(), sort.clone()));
        }
    }
    let new_body = if rename.is_empty() {
        None
    } else {
        Some(substitute(body, &rename))
    };
    (new_bindings, new_body, scoped_map)
}

/// Substitutes a single variable.
pub fn substitute_one(form: &Form, name: &str, value: &Form) -> Form {
    let mut map = HashMap::new();
    map.insert(name.to_string(), value.clone());
    substitute(form, &map)
}

/// Renames every free occurrence of variables according to `renaming`
/// (a variable-to-variable map); convenience wrapper over [`substitute`].
pub fn rename_free(form: &Form, renaming: &HashMap<String, String>) -> Form {
    let map: HashMap<String, Form> = renaming
        .iter()
        .map(|(k, v)| (k.clone(), Form::Var(v.clone())))
        .collect();
    substitute(form, &map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    fn v(n: &str) -> Form {
        Form::var(n)
    }

    #[test]
    fn free_vars_respects_binders() {
        let f = Form::forall(
            vec![("i".into(), Sort::Int)],
            Form::implies(Form::le(Form::int(0), v("i")), Form::lt(v("i"), v("size"))),
        );
        let fv = free_vars(&f);
        assert!(fv.contains("size"));
        assert!(!fv.contains("i"));
    }

    #[test]
    fn simple_substitution() {
        let f = Form::lt(v("i"), v("size"));
        let g = substitute_one(&f, "i", &Form::int(3));
        assert_eq!(g, Form::lt(Form::int(3), v("size")));
    }

    #[test]
    fn substitution_does_not_touch_bound_occurrences() {
        let f = Form::forall(vec![("i".into(), Sort::Int)], Form::lt(v("i"), v("n")));
        let g = substitute_one(&f, "i", &Form::int(3));
        assert_eq!(g, f);
    }

    #[test]
    fn substitution_avoids_capture() {
        // (forall i. i < n)[n := i]  must rename the bound i.
        let f = Form::forall(vec![("i".into(), Sort::Int)], Form::lt(v("i"), v("n")));
        let g = substitute_one(&f, "n", &v("i"));
        if let Form::Forall(bs, body) = &g {
            assert_ne!(bs[0].0, "i", "bound variable must be renamed");
            let fv = free_vars(body);
            assert!(fv.contains("i"), "the substituted free i must remain free");
        } else {
            panic!("expected a forall, got {g:?}");
        }
    }

    #[test]
    fn fresh_names_never_repeat() {
        let mut gen = FreshNames::new();
        gen.reserve("x_1");
        let a = gen.fresh("x");
        let b = gen.fresh("x");
        assert_ne!(a, b);
        assert_ne!(a, "x_1");
        assert_ne!(b, "x_1");
    }

    #[test]
    fn rename_free_variables() {
        let f = Form::eq(v("a"), v("b"));
        let mut m = HashMap::new();
        m.insert("a".to_string(), "a_old".to_string());
        assert_eq!(rename_free(&f, &m), Form::eq(v("a_old"), v("b")));
    }

    #[test]
    fn simultaneous_substitution_swaps_without_chaining() {
        // {x := y, y := x} applied to x < y must swap, not chain x -> y -> x.
        let form = Form::lt(v("x"), v("y"));
        let mut map = HashMap::new();
        map.insert("x".to_string(), v("y"));
        map.insert("y".to_string(), v("x"));
        assert_eq!(substitute(&form, &map), Form::lt(v("y"), v("x")));
    }

    #[test]
    fn capture_avoidance_renames_nested_binders() {
        // (forall i. exists j. i < n & j < n)[n := i + j] must rename both
        // bound variables; the substituted i and j must stay free.
        let inner = Form::exists(
            vec![("j".into(), Sort::Int)],
            Form::and(vec![Form::lt(v("i"), v("n")), Form::lt(v("j"), v("n"))]),
        );
        let form = Form::forall(vec![("i".into(), Sort::Int)], inner);
        let g = substitute_one(&form, "n", &Form::add(v("i"), v("j")));
        let fv = free_vars(&g);
        assert!(fv.contains("i"), "substituted i must stay free in {g:?}");
        assert!(fv.contains("j"), "substituted j must stay free in {g:?}");
        let Form::Forall(outer, body) = &g else {
            panic!("expected a forall, got {g:?}");
        };
        assert_ne!(outer[0].0, "i", "outer binder must be renamed");
        let Form::Exists(inner, _) = body.as_ref() else {
            panic!("expected an exists, got {body:?}");
        };
        assert_ne!(inner[0].0, "j", "inner binder must be renamed");
    }

    #[test]
    fn capture_avoidance_in_comprehension_binders() {
        // {e | e = x}[x := e] must rename the comprehension's binder.
        let compr = Form::Compr(
            vec![("e".into(), Sort::Obj)],
            Arc::new(Form::eq(v("e"), v("x"))),
        );
        let g = substitute_one(&compr, "x", &v("e"));
        let Form::Compr(bindings, body) = &g else {
            panic!("expected comprehension, got {g:?}");
        };
        assert_ne!(bindings[0].0, "e", "comprehension binder must be renamed");
        assert_eq!(**body, Form::eq(v(&bindings[0].0), v("e")));
    }

    #[test]
    fn substitution_into_comprehension() {
        // {(i, n) | n = x}[x := y]
        let compr = Form::Compr(
            vec![("i".into(), Sort::Int), ("n".into(), Sort::Obj)],
            Arc::new(Form::eq(v("n"), v("x"))),
        );
        let g = substitute_one(&compr, "x", &v("y"));
        if let Form::Compr(_, body) = g {
            assert_eq!(*body, Form::eq(v("n"), v("y")));
        } else {
            panic!("expected comprehension");
        }
    }
}
