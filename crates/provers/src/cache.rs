//! The content-addressed proof cache.
//!
//! The pipeline proves many structurally identical sequents: invariant
//! preservation obligations shared between methods, `from`-clause variants of
//! the same implication, and — most of all — the Table 2 experiment, which
//! verifies every benchmark twice (without and then with the proof language
//! constructs) and re-dispatches every sequent the two configurations share.
//!
//! [`ProofCache`] memoises `Proved` outcomes keyed by a *content fingerprint*
//! of the query: a structural hash of the goal, the assumption formulas as an
//! order-insensitive multiset (labels excluded — the label names a fact for
//! `from`-clause selection and diagnostics, it does not change validity), the
//! sorts of the symbols the sequent mentions, and the prover budgets.
//! Including the budgets keeps ablation and quick-config runs honest: a
//! sequent proved under generous budgets must not report `Proved` under a
//! configuration whose bounded search would have failed.
//!
//! Only `Proved` is cached.  `Unknown` depends on timing (a timeout on a
//! loaded machine is not a refutation), so negative caching would make
//! results machine-dependent.
//!
//! The cache is process-global and thread-safe (sharded behind mutexes), so
//! the parallel verification driver's workers share it, and successive
//! verification runs in one process (Table 2's double run, repeated
//! `verify_module` calls in a server) hit it across runs.

use crate::{ProverConfig, Query};
use ipl_logic::free_vars;
use ipl_logic::Form;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

const SHARD_COUNT: usize = 16;

/// A 128-bit content fingerprint (two independently seeded 64-bit structural
/// hashes; a collision would require both to collide simultaneously).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// The raw 128-bit value (for on-disk persistence; see
    /// [`crate::cache_store`]).
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Reconstructs a fingerprint from its raw value (when replaying a
    /// persisted store entry).
    pub fn from_u128(raw: u128) -> Fingerprint {
        Fingerprint(raw)
    }
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// The global memo table of proved sequents.
pub struct ProofCache {
    shards: Vec<Mutex<HashMap<u128, String>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProofCache {
    /// The process-global cache instance.
    pub fn global() -> &'static ProofCache {
        static CACHE: OnceLock<ProofCache> = OnceLock::new();
        CACHE.get_or_init(|| ProofCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Computes the content fingerprint of a query under the given budgets
    /// and cascade line-up (`provers`, in dispatch order): a cascade with a
    /// restricted prover list must never replay a proof a missing stage
    /// found.
    pub fn fingerprint(query: &Query, config: &ProverConfig, provers: &[&str]) -> Fingerprint {
        let lo = fingerprint_half(query, config, provers, 0x9e37_79b9_7f4a_7c15);
        let hi = fingerprint_half(query, config, provers, 0xc2b2_ae3d_27d4_eb4f);
        Fingerprint(((hi as u128) << 64) | lo as u128)
    }

    /// Looks up a fingerprint; returns the name of the prover that originally
    /// discharged the sequent.
    pub fn lookup(&self, fingerprint: Fingerprint) -> Option<String> {
        let shard = &self.shards[(fingerprint.0 as usize) % SHARD_COUNT];
        let found = shard
            .lock()
            .expect("proof-cache shard poisoned")
            .get(&fingerprint.0)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Records a proved sequent.
    pub fn record(&self, fingerprint: Fingerprint, prover: &str) {
        let shard = &self.shards[(fingerprint.0 as usize) % SHARD_COUNT];
        shard
            .lock()
            .expect("proof-cache shard poisoned")
            .insert(fingerprint.0, prover.to_string());
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("proof-cache shard poisoned").len())
                .sum(),
        }
    }

    /// Hits recorded so far (cheap accessor for per-run deltas).
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Empties the cache and resets the counters (tests and benchmarks that
    /// must measure uncached behaviour).
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.lock().expect("proof-cache shard poisoned").clear();
        }
        self.reset_stats();
    }

    /// Resets the hit/miss counters while keeping every entry.  The driver
    /// calls this at the start of each `verify_module` invocation so that
    /// per-run telemetry (the bench harnesses' hit counts) never inherits a
    /// previous run's counters — the entries themselves stay shared across
    /// runs, which is the point of the cache.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// One 64-bit half of the fingerprint, from a seeded structural hash of the
/// goal, the assumption multiset (order-insensitive, labels ignored), the
/// sorts of mentioned symbols, the prover budgets, and the cascade line-up.
fn fingerprint_half(query: &Query, config: &ProverConfig, provers: &[&str], seed: u64) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut hasher);
    config.hash(&mut hasher);
    provers.hash(&mut hasher);
    query.goal.hash(&mut hasher);

    // Assumption multiset: per-form seeded hashes, sorted so that assumption
    // order (which varies with `from`-clause selection order) is irrelevant.
    let mut assumption_hashes: Vec<u64> = query
        .assumptions
        .iter()
        .map(|labeled| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            seed.hash(&mut h);
            labeled.form.hash(&mut h);
            h.finish()
        })
        .collect();
    assumption_hashes.sort_unstable();
    assumption_hashes.hash(&mut hasher);

    // The sorts of the symbols the sequent actually mentions: two textually
    // identical sequents over differently-sorted variables are different
    // proof problems.
    let mut mentioned = free_vars(&query.goal);
    for labeled in &query.assumptions {
        mentioned.extend(free_vars(&labeled.form));
    }
    collect_app_symbols(&query.goal, &mut mentioned);
    for labeled in &query.assumptions {
        collect_app_symbols(&labeled.form, &mut mentioned);
    }
    for name in &mentioned {
        name.hash(&mut hasher);
        query.env.var_sort(name).hash(&mut hasher);
        query.env.fun_sig(name).hash(&mut hasher);
    }
    hasher.finish()
}

fn collect_app_symbols(form: &Form, out: &mut std::collections::BTreeSet<String>) {
    if let Form::App(name, _) = form {
        out.insert(name.clone());
    }
    form.for_each_child(|c| collect_app_symbols(c, out));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;
    use ipl_logic::{Labeled, Sort, SortEnv};

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        e.declare_var("x", Sort::Int);
        e.declare_var("y", Sort::Int);
        e
    }

    fn query(assumptions: &[(&str, &str)], goal: &str) -> Query {
        Query::new(
            assumptions
                .iter()
                .map(|(label, form)| Labeled::new(*label, parse_form(form).unwrap()))
                .collect(),
            parse_form(goal).unwrap(),
            env(),
        )
    }

    #[test]
    fn fingerprint_ignores_labels_and_assumption_order() {
        let config = ProverConfig::default();
        let provers: &[&str] = &["syntactic", "smt-ground"];
        let a = query(&[("A", "x = 1"), ("B", "y = 2")], "x < y");
        let b = query(&[("First", "y = 2"), ("Second", "x = 1")], "x < y");
        assert_eq!(
            ProofCache::fingerprint(&a, &config, provers),
            ProofCache::fingerprint(&b, &config, provers)
        );
    }

    #[test]
    fn fingerprint_distinguishes_goals_assumptions_budgets_and_line_up() {
        let config = ProverConfig::default();
        let provers: &[&str] = &["syntactic", "smt-ground"];
        let base = query(&[("A", "x = 1")], "0 < x");
        assert_ne!(
            ProofCache::fingerprint(&base, &config, provers),
            ProofCache::fingerprint(&query(&[("A", "x = 1")], "1 < x"), &config, provers)
        );
        assert_ne!(
            ProofCache::fingerprint(&base, &config, provers),
            ProofCache::fingerprint(&query(&[("A", "x = 2")], "0 < x"), &config, provers)
        );
        assert_ne!(
            ProofCache::fingerprint(&base, &config, provers),
            ProofCache::fingerprint(&base, &ProverConfig::quick(), provers)
        );
        // A restricted cascade must not see entries a missing stage produced.
        assert_ne!(
            ProofCache::fingerprint(&base, &config, provers),
            ProofCache::fingerprint(&base, &config, &["syntactic"])
        );
    }

    #[test]
    fn fingerprint_distinguishes_sorts() {
        let config = ProverConfig::default();
        let provers: &[&str] = &["smt-ground"];
        let int_query = query(&[], "a = b");
        let mut obj_env = SortEnv::new();
        obj_env.declare_var("a", Sort::Obj);
        obj_env.declare_var("b", Sort::Obj);
        let obj_query = Query::new(Vec::new(), parse_form("a = b").unwrap(), obj_env);
        assert_ne!(
            ProofCache::fingerprint(&int_query, &config, provers),
            ProofCache::fingerprint(&obj_query, &config, provers)
        );
    }

    #[test]
    fn record_then_lookup_round_trips() {
        let cache = ProofCache::global();
        let config = ProverConfig::default();
        let fp = ProofCache::fingerprint(
            &query(&[("H", "x = 41")], "x + 1 = 42"),
            &config,
            &["smt-ground"],
        );
        assert_eq!(cache.lookup(fp), None);
        cache.record(fp, "smt-ground");
        assert_eq!(cache.lookup(fp).as_deref(), Some("smt-ground"));
        assert!(cache.stats().hits >= 1);
    }
}
