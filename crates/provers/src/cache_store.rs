//! The persistent proof store: an on-disk, append-only log of proved
//! sequent fingerprints.
//!
//! The in-memory [`ProofCache`](crate::cache::ProofCache) answers repeat
//! dispatches for free *within* one process; this module makes the cache
//! outlive the process, so that a warm re-run of an unchanged module — a CI
//! job on an untouched branch, the second keystroke in an editor session —
//! costs only the front-end plus one hash lookup per sequent.  The design
//! follows the prove-once/check-cheaply asymmetry: proving a sequent is
//! expensive, replaying its 128-bit content fingerprint is a set probe.
//!
//! ## File format
//!
//! One store file per `(schema version, prover configuration)` pair, named
//! `proofs-v{schema}-{config:016x}.iplstore` inside the cache directory.  The
//! file is a 20-byte header followed by variable-length entries:
//!
//! ```text
//! header:  magic "IPLPROOF" | schema version (u32 LE) | config hash (u64 LE)
//! entry:   prover len (u16 LE) | fingerprint (u128 LE) | config hash (u64 LE)
//!          | prover name bytes | checksum (u64 LE)
//! ```
//!
//! The checksum covers every preceding byte of the entry, so a torn write
//! (crash mid-append, disk full) invalidates exactly the tail entry.
//!
//! ## Crash safety and concurrency
//!
//! *Loading* walks the log from the front and stops at the first entry whose
//! length or checksum does not add up; the corrupt tail is **truncated**,
//! never replayed — every complete entry before it survives.  A file whose
//! header does not match the expected magic, schema version and configuration
//! hash is treated as poisoned: its contents are ignored wholesale and the
//! file is rewritten fresh (its *name* claimed our schema, so its bytes are
//! untrustworthy).
//!
//! *Concurrent processes* sharing one cache directory are safe: every load
//! and every append happens under an OS advisory file lock
//! ([`std::fs::File::lock`]), and appends are single `write` calls on a file
//! opened in append mode, so entries from two processes interleave at entry
//! granularity.  A store handle only indexes the entries it has seen; a
//! fresh `open` picks up everything every process appended.
//!
//! Safety does **not** rest on the header alone: fingerprints themselves hash
//! the full `ProverConfig` and the cascade line-up (see
//! [`ProofCache::fingerprint`](crate::cache::ProofCache::fingerprint)), so
//! even a store entry smuggled into the wrong file can never answer a query
//! it was not proved under.  The header and per-entry config hash exist to
//! keep files separated and corruption detectable, not as the soundness
//! boundary.

use crate::cache::{Fingerprint, ProofCache};
use crate::ProverConfig;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::hash::{Hash, Hasher};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Version of the on-disk layout *and* of the fingerprint function.  Bump it
/// whenever either changes — old files are then ignored (their filename no
/// longer matches), never misinterpreted.
///
/// v2: `ProverConfig` grew its retry policy, which participates in both the
/// configuration key and the query fingerprint.
pub const SCHEMA_VERSION: u32 = 2;

const MAGIC: [u8; 8] = *b"IPLPROOF";
const HEADER_LEN: usize = 8 + 4 + 8;
/// Longest admissible prover name; anything larger marks a corrupt entry.
const MAX_PROVER_LEN: usize = 256;

/// A persistent, append-only store of proved fingerprints backing the
/// in-memory [`ProofCache`].
pub struct CacheStore {
    file: File,
    path: PathBuf,
    config_hash: u64,
    /// Fingerprints known to be on disk (loaded or appended through this
    /// handle); `append_new` skips them.
    index: HashSet<u128>,
    /// Entries read at open time, in log order.
    loaded: Vec<(u128, String)>,
    /// Bytes of corrupt/truncated tail discarded at open time.
    recovered_bytes: u64,
    /// `true` when the existing file had a foreign or damaged header and was
    /// rewritten from scratch.
    poisoned: bool,
    /// `true` once an advisory lock attempt came back `Unsupported` (some
    /// network/overlay filesystems) and the store fell back to lock-free
    /// operation for this handle.
    lock_degraded: bool,
}

impl std::fmt::Debug for CacheStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheStore")
            .field("path", &self.path)
            .field("entries", &self.index.len())
            .field("recovered_bytes", &self.recovered_bytes)
            .field("poisoned", &self.poisoned)
            .field("lock_degraded", &self.lock_degraded)
            .finish()
    }
}

impl CacheStore {
    /// The configuration key a store file is segregated by: a deterministic
    /// hash of the prover budgets and the cascade line-up.  (Deterministic
    /// within one toolchain; the schema version in the filename guards
    /// cross-version drift of the hasher itself.)
    pub fn config_key(config: &ProverConfig, provers: &[&str]) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        0x5157_ab5e_u64.hash(&mut hasher);
        config.hash(&mut hasher);
        provers.hash(&mut hasher);
        hasher.finish()
    }

    /// The store file path for a configuration inside `dir`.
    pub fn file_path(dir: &Path, config: &ProverConfig, provers: &[&str]) -> PathBuf {
        let key = Self::config_key(config, provers);
        dir.join(format!("proofs-v{SCHEMA_VERSION}-{key:016x}.iplstore"))
    }

    /// Opens (creating if necessary) the store for `config` in `dir`, loading
    /// every complete entry under an exclusive advisory lock.  A corrupt tail
    /// is truncated; a file with a foreign header is rewritten fresh.  A
    /// filesystem that does not support advisory locks degrades to lock-free
    /// operation (logged once) instead of failing the run — single-process
    /// use stays fully safe, concurrent processes fall back to the per-entry
    /// checksums.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation, locking, I/O).
    pub fn open(dir: &Path, config: &ProverConfig, provers: &[&str]) -> io::Result<CacheStore> {
        std::fs::create_dir_all(dir)?;
        let path = Self::file_path(dir, config, provers);
        let config_hash = Self::config_key(config, provers);
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let mut degraded = false;
        let locked = lock_or_degrade(&file, &path, config_hash, &mut degraded)?;
        let result = Self::load_locked(file, path, config_hash, degraded);
        if locked {
            if let Ok(store) = &result {
                store.file.unlock()?;
            }
        }
        result
    }

    fn load_locked(
        mut file: File,
        path: PathBuf,
        config_hash: u64,
        lock_degraded: bool,
    ) -> io::Result<CacheStore> {
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;

        let mut store = CacheStore {
            file,
            path,
            config_hash,
            index: HashSet::new(),
            loaded: Vec::new(),
            recovered_bytes: 0,
            poisoned: false,
            lock_degraded,
        };

        if bytes.is_empty() {
            store.write_header()?;
            return Ok(store);
        }
        if !header_matches(&bytes, config_hash) {
            // Poisoned: the name promised our schema and configuration but
            // the header disagrees.  Nothing in the file can be trusted.
            store.poisoned = true;
            store.file.set_len(0)?;
            store.write_header()?;
            return Ok(store);
        }

        let mut pos = HEADER_LEN;
        while pos < bytes.len() {
            match decode_entry(&bytes[pos..], config_hash) {
                Some((fingerprint, prover, consumed)) => {
                    if store.index.insert(fingerprint) {
                        store.loaded.push((fingerprint, prover));
                    }
                    pos += consumed;
                }
                None => break,
            }
        }
        if pos < bytes.len() {
            // Torn or corrupt tail: drop it so future appends stay readable.
            store.recovered_bytes = (bytes.len() - pos) as u64;
            store.file.set_len(pos as u64)?;
        }
        Ok(store)
    }

    fn write_header(&mut self) -> io::Result<()> {
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        header.extend_from_slice(&self.config_hash.to_le_bytes());
        self.file.write_all(&header)
    }

    /// The store file backing this handle.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of distinct fingerprints this handle knows to be on disk.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no entry has been loaded or appended through this handle.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Entries read from disk when the store was opened, in log order.
    pub fn loaded_entries(&self) -> &[(u128, String)] {
        &self.loaded
    }

    /// Bytes of corrupt tail discarded when the store was opened.
    pub fn recovered_bytes(&self) -> u64 {
        self.recovered_bytes
    }

    /// `true` when the existing file had a foreign header and was ignored.
    pub fn was_poisoned(&self) -> bool {
        self.poisoned
    }

    /// `true` when this handle fell back to lock-free operation because the
    /// filesystem reported advisory locks as unsupported.
    pub fn lock_degraded(&self) -> bool {
        self.lock_degraded
    }

    /// Whether a fingerprint is known to be persisted.
    pub fn contains(&self, fingerprint: Fingerprint) -> bool {
        self.index.contains(&fingerprint.as_u128())
    }

    /// Replays every loaded entry into the in-memory cache (without touching
    /// its hit/miss counters), returning how many were inserted.
    pub fn preload(&self, cache: &ProofCache) -> usize {
        for (fingerprint, prover) in &self.loaded {
            cache.record(Fingerprint::from_u128(*fingerprint), prover);
        }
        self.loaded.len()
    }

    /// Appends the entries whose fingerprints this handle has not yet
    /// persisted, as one locked, single-`write` batch.  Returns how many
    /// entries were written.
    ///
    /// # Errors
    ///
    /// Propagates locking and write errors; on error no entry is recorded in
    /// the handle's index (the batch may be partially on disk, protected by
    /// per-entry checksums).
    pub fn append_new(&mut self, entries: &[(Fingerprint, String)]) -> io::Result<usize> {
        let fresh: Vec<&(Fingerprint, String)> = entries
            .iter()
            .filter(|(fingerprint, _)| !self.index.contains(&fingerprint.as_u128()))
            .collect();
        if fresh.is_empty() {
            return Ok(0);
        }
        let mut buffer = Vec::new();
        for (fingerprint, prover) in &fresh {
            encode_entry(&mut buffer, fingerprint.as_u128(), prover, self.config_hash);
        }
        let path = self.path.clone();
        let locked = lock_or_degrade(
            &self.file,
            &path,
            batch_key(&buffer),
            &mut self.lock_degraded,
        )?;
        let written = self.write_batch(&buffer);
        if locked {
            self.file.unlock()?;
        }
        written?;
        let mut count = 0;
        for (fingerprint, _) in &fresh {
            if self.index.insert(fingerprint.as_u128()) {
                count += 1;
            }
        }
        Ok(count)
    }

    /// Writes one encoded batch, honouring any injected I/O fault and
    /// repairing real torn writes.
    fn write_batch(&mut self, buffer: &[u8]) -> io::Result<()> {
        if let Some(plan) = crate::fault::active_plan() {
            match plan.store_append_fault(batch_key(buffer), buffer.len()) {
                Some(crate::fault::StoreFault::DiskFull) => {
                    return Err(io::Error::other("injected fault: disk full on append"));
                }
                Some(crate::fault::StoreFault::ShortWrite { cut }) => {
                    // A torn write exactly as a crash leaves it: a prefix of
                    // the batch on disk, no repair — the per-entry checksums
                    // recover it at the next open.
                    self.file
                        .write_all(&buffer[..cut])
                        .and_then(|()| self.file.flush())?;
                    return Err(io::Error::other("injected fault: short write on append"));
                }
                None => {}
            }
        }
        let len_before = self.file.metadata().map(|m| m.len());
        let result = self.file.write_all(buffer).and_then(|()| self.file.flush());
        if result.is_err() {
            // Best-effort rollback of a real torn write to the batch
            // boundary, so the log stays clean without waiting for the next
            // open's checksum recovery.  If the truncate fails too, that
            // recovery still applies.
            if let Ok(len) = len_before {
                let _ = self.file.set_len(len);
            }
        }
        result
    }
}

/// A long-lived wrapper around [`CacheStore`] for callers that verify
/// repeatedly in one process (a daemon, an incremental loop).
///
/// [`CacheStore::open`] scans the whole log; doing that once per verify is
/// the dominant fixed cost of a warm request.  A `StoreHandle` opens the
/// store once and replays it into the in-memory cache at most once —
/// [`StoreHandle::ensure_preloaded`] is idempotent — while still appending
/// freshly proved fingerprints after every verify.
#[derive(Debug)]
pub struct StoreHandle {
    store: CacheStore,
    /// How many times the loaded log was actually replayed into a cache.
    /// Stays at 1 for the life of the handle; the daemon's "no re-scan"
    /// guarantee is asserted against this counter.
    preloads: usize,
    /// Total entries appended through this handle.
    appended: usize,
}

impl StoreHandle {
    /// Opens (creating if necessary) the store for `config` in `dir`.  The
    /// log is scanned here, once; see [`CacheStore::open`] for recovery and
    /// locking behaviour.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from [`CacheStore::open`].
    pub fn open(dir: &Path, config: &ProverConfig, provers: &[&str]) -> io::Result<StoreHandle> {
        Ok(StoreHandle {
            store: CacheStore::open(dir, config, provers)?,
            preloads: 0,
            appended: 0,
        })
    }

    /// Replays the loaded log into `cache` the first time it is called;
    /// every later call is a no-op returning 0.  Returns how many entries
    /// were replayed.
    pub fn ensure_preloaded(&mut self, cache: &ProofCache) -> usize {
        if self.preloads > 0 {
            return 0;
        }
        self.preloads = 1;
        self.store.preload(cache)
    }

    /// How many times the on-disk log was replayed into a cache (0 before
    /// the first [`StoreHandle::ensure_preloaded`], 1 forever after).
    pub fn preload_count(&self) -> usize {
        self.preloads
    }

    /// Total entries appended through this handle.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Appends not-yet-persisted entries; see [`CacheStore::append_new`].
    ///
    /// # Errors
    ///
    /// Propagates locking and write errors from [`CacheStore::append_new`].
    pub fn append_new(&mut self, entries: &[(Fingerprint, String)]) -> io::Result<usize> {
        let written = self.store.append_new(entries)?;
        self.appended += written;
        Ok(written)
    }

    /// The underlying store.
    pub fn store(&self) -> &CacheStore {
        &self.store
    }
}

/// Acquires the advisory lock, degrading to lock-free operation (with one
/// warning per handle) when the filesystem reports locks as unsupported.
/// Returns whether the lock is actually held.
fn lock_or_degrade(
    file: &File,
    path: &Path,
    fault_key: u64,
    degraded: &mut bool,
) -> io::Result<bool> {
    let injected = crate::fault::active_plan().is_some_and(|plan| plan.store_lock_fails(fault_key));
    let result = if injected {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "injected fault: advisory lock unsupported",
        ))
    } else {
        file.lock()
    };
    match result {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::Unsupported => {
            if !*degraded {
                eprintln!(
                    "ipl: warning: advisory file lock unsupported on {} ({e}); \
                     continuing lock-free (safe single-process; concurrent \
                     writers fall back to per-entry checksums)",
                    path.display()
                );
                *degraded = true;
            }
            Ok(false)
        }
        Err(e) => Err(e),
    }
}

/// Content key for store fault-injection decisions: a hash of the encoded
/// batch, so the same plan tears the same appends regardless of scheduling.
fn batch_key(buffer: &[u8]) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    0x0057_09e5_u64.hash(&mut hasher);
    buffer.hash(&mut hasher);
    hasher.finish()
}

/// Summary of one store file, for `ipl cache` diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreInfo {
    /// The store file.
    pub path: PathBuf,
    /// Schema version from the header (`None` when the header is foreign).
    pub schema_version: Option<u32>,
    /// Complete entries in the log.
    pub entries: usize,
    /// Bytes of corrupt tail that a load would discard.
    pub corrupt_tail_bytes: u64,
}

/// Inspects a store file without locking or modifying it.
///
/// # Errors
///
/// Propagates read errors.
pub fn inspect(path: &Path) -> io::Result<StoreInfo> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
        return Ok(StoreInfo {
            path: path.to_path_buf(),
            schema_version: None,
            entries: 0,
            corrupt_tail_bytes: bytes.len() as u64,
        });
    }
    let schema = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let config_hash = u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().expect("8 bytes"));
    let mut pos = HEADER_LEN;
    let mut entries = 0;
    while pos < bytes.len() {
        match decode_entry(&bytes[pos..], config_hash) {
            Some((_, _, consumed)) => {
                entries += 1;
                pos += consumed;
            }
            None => break,
        }
    }
    Ok(StoreInfo {
        path: path.to_path_buf(),
        schema_version: Some(schema),
        entries,
        corrupt_tail_bytes: (bytes.len() - pos) as u64,
    })
}

/// Lists every store file in a cache directory (any configuration).
///
/// # Errors
///
/// Propagates directory-read errors; a missing directory yields an empty
/// list.
pub fn scan_dir(dir: &Path) -> io::Result<Vec<StoreInfo>> {
    let mut infos = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(infos),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("iplstore") {
            infos.push(inspect(&path)?);
        }
    }
    infos.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(infos)
}

fn header_matches(bytes: &[u8], config_hash: u64) -> bool {
    bytes.len() >= HEADER_LEN
        && bytes[..8] == MAGIC
        && bytes[8..12] == SCHEMA_VERSION.to_le_bytes()
        && bytes[12..HEADER_LEN] == config_hash.to_le_bytes()
}

fn encode_entry(out: &mut Vec<u8>, fingerprint: u128, prover: &str, config_hash: u64) {
    let start = out.len();
    out.extend_from_slice(&(prover.len() as u16).to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&config_hash.to_le_bytes());
    out.extend_from_slice(prover.as_bytes());
    let checksum = entry_checksum(&out[start..]);
    out.extend_from_slice(&checksum.to_le_bytes());
}

/// Decodes one entry from the front of `bytes`; returns the fingerprint, the
/// prover name and the number of bytes consumed, or `None` when the entry is
/// incomplete, fails its checksum, or was written under another
/// configuration.
fn decode_entry(bytes: &[u8], config_hash: u64) -> Option<(u128, String, usize)> {
    if bytes.len() < 2 {
        return None;
    }
    let prover_len = u16::from_le_bytes(bytes[..2].try_into().expect("2 bytes")) as usize;
    if prover_len > MAX_PROVER_LEN {
        return None;
    }
    let body_len = 2 + 16 + 8 + prover_len;
    let total_len = body_len + 8;
    if bytes.len() < total_len {
        return None;
    }
    let stored_checksum = u64::from_le_bytes(bytes[body_len..total_len].try_into().expect("8"));
    if entry_checksum(&bytes[..body_len]) != stored_checksum {
        return None;
    }
    let fingerprint = u128::from_le_bytes(bytes[2..18].try_into().expect("16 bytes"));
    let entry_config = u64::from_le_bytes(bytes[18..26].try_into().expect("8 bytes"));
    if entry_config != config_hash {
        return None;
    }
    let prover = std::str::from_utf8(&bytes[26..body_len]).ok()?.to_string();
    Some((fingerprint, prover, total_len))
}

fn entry_checksum(bytes: &[u8]) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    0xc0a1_e5ce_u64.hash(&mut hasher);
    bytes.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ipl-store-test-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fp(raw: u128) -> Fingerprint {
        Fingerprint::from_u128(raw)
    }

    #[test]
    fn entries_survive_reopen() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("reopen");
        let config = ProverConfig::default();
        let provers = ["syntactic", "smt-ground"];
        let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
        assert!(store.is_empty());
        assert_eq!(
            store
                .append_new(&[(fp(1), "smt-ground".into()), (fp(2), "bapa".into())])
                .unwrap(),
            2
        );
        // Appending the same fingerprints again is a no-op.
        assert_eq!(
            store.append_new(&[(fp(1), "smt-ground".into())]).unwrap(),
            0
        );

        let reopened = CacheStore::open(&dir, &config, &provers).unwrap();
        assert_eq!(reopened.len(), 2);
        assert!(reopened.contains(fp(1)));
        assert!(reopened.contains(fp(2)));
        assert_eq!(reopened.recovered_bytes(), 0);
        assert!(!reopened.was_poisoned());
        let mut loaded = reopened.loaded_entries().to_vec();
        loaded.sort();
        assert_eq!(loaded, vec![(1, "smt-ground".into()), (2, "bapa".into())]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_configs_use_different_files() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("configs");
        let provers = ["smt-ground"];
        let mut default_store = CacheStore::open(&dir, &ProverConfig::default(), &provers).unwrap();
        default_store
            .append_new(&[(fp(7), "smt-ground".into())])
            .unwrap();
        let quick_store = CacheStore::open(&dir, &ProverConfig::quick(), &provers).unwrap();
        assert_ne!(default_store.path(), quick_store.path());
        assert!(quick_store.is_empty());
        // The line-up is part of the key too.
        assert_ne!(
            CacheStore::file_path(&dir, &ProverConfig::default(), &provers),
            CacheStore::file_path(&dir, &ProverConfig::default(), &["syntactic"])
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_dropped_and_store_stays_usable() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("truncate");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
        store
            .append_new(&[(fp(10), "a".into()), (fp(11), "b".into())])
            .unwrap();
        let path = store.path().to_path_buf();
        drop(store);
        // Chop the last 5 bytes: the second entry's checksum is torn.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let mut recovered = CacheStore::open(&dir, &config, &provers).unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(recovered.contains(fp(10)));
        assert!(!recovered.contains(fp(11)));
        assert!(recovered.recovered_bytes() > 0);
        // The file was truncated to the last good entry, so appends land on a
        // clean boundary and survive the next load.
        recovered.append_new(&[(fp(12), "c".into())]).unwrap();
        let reopened = CacheStore::open(&dir, &config, &provers).unwrap();
        assert_eq!(reopened.len(), 2);
        assert!(reopened.contains(fp(12)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_header_is_ignored_not_replayed() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("poison");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
        store.append_new(&[(fp(21), "a".into())]).unwrap();
        let path = store.path().to_path_buf();
        drop(store);
        // Flip the schema version in the header: the file now claims a layout
        // we do not understand.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = bytes[8].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();

        let fresh = CacheStore::open(&dir, &config, &provers).unwrap();
        assert!(fresh.was_poisoned());
        assert!(fresh.is_empty(), "poisoned entries must not be replayed");
        // And the rewritten file is sound again.
        let reopened = CacheStore::open(&dir, &config, &provers).unwrap();
        assert!(!reopened.was_poisoned());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn preload_feeds_the_memory_cache() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("preload");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let raw = 0xdead_beef_dead_beef_dead_beef_dead_beefu128;
        {
            let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
            store.append_new(&[(fp(raw), "smt-ground".into())]).unwrap();
        }
        let store = CacheStore::open(&dir, &config, &provers).unwrap();
        let cache = ProofCache::global();
        assert_eq!(store.preload(cache), 1);
        assert_eq!(cache.lookup(fp(raw)).as_deref(), Some("smt-ground"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsupported_lock_degrades_instead_of_failing() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("lockfree");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let plan = crate::fault::FaultPlan {
            seed: 5,
            store_lock_fail_bp: 10_000,
            ..crate::fault::FaultPlan::default()
        };
        crate::fault::with_plan(Some(plan), || {
            let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
            assert!(store.lock_degraded(), "every lock attempt was Unsupported");
            assert_eq!(store.append_new(&[(fp(31), "a".into())]).unwrap(), 1);
        });
        // Lock-free appends are still complete, checksummed entries.
        let reopened = CacheStore::open(&dir, &config, &provers).unwrap();
        assert!(!reopened.lock_degraded());
        assert!(reopened.contains(fp(31)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_short_write_is_recovered_at_next_open() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("shortwrite");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let plan = crate::fault::FaultPlan {
            seed: 6,
            store_short_write_bp: 10_000,
            ..crate::fault::FaultPlan::default()
        };
        {
            let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
            store.append_new(&[(fp(41), "a".into())]).unwrap();
            crate::fault::with_plan(Some(plan), || {
                let err = store.append_new(&[(fp(42), "b".into())]).unwrap_err();
                assert!(err.to_string().contains("short write"));
                assert!(
                    !store.contains(fp(42)),
                    "a failed append must not be indexed"
                );
            });
        }
        // The torn tail is dropped; the store stays usable and the entry
        // written before the fault survives.
        let mut recovered = CacheStore::open(&dir, &config, &provers).unwrap();
        assert!(recovered.contains(fp(41)));
        assert!(!recovered.contains(fp(42)));
        recovered.append_new(&[(fp(43), "c".into())]).unwrap();
        let reopened = CacheStore::open(&dir, &config, &provers).unwrap();
        assert_eq!(reopened.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_disk_full_writes_nothing() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("diskfull");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let plan = crate::fault::FaultPlan {
            seed: 7,
            store_disk_full_bp: 10_000,
            ..crate::fault::FaultPlan::default()
        };
        let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
        let len_before = std::fs::metadata(store.path()).unwrap().len();
        crate::fault::with_plan(Some(plan), || {
            let err = store.append_new(&[(fp(51), "a".into())]).unwrap_err();
            assert!(err.to_string().contains("disk full"));
        });
        assert_eq!(std::fs::metadata(store.path()).unwrap().len(), len_before);
        // The handle recovers as soon as the disk does.
        assert_eq!(store.append_new(&[(fp(51), "a".into())]).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_handle_preloads_once_and_keeps_appending() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("handle");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        {
            let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
            store.append_new(&[(fp(61), "smt-ground".into())]).unwrap();
        }
        let mut handle = StoreHandle::open(&dir, &config, &provers).unwrap();
        assert_eq!(handle.preload_count(), 0);
        let cache = ProofCache::global();
        assert_eq!(handle.ensure_preloaded(cache), 1);
        assert_eq!(handle.ensure_preloaded(cache), 0, "second preload is free");
        assert_eq!(handle.preload_count(), 1);
        assert_eq!(handle.append_new(&[(fp(62), "bapa".into())]).unwrap(), 1);
        assert_eq!(handle.append_new(&[(fp(62), "bapa".into())]).unwrap(), 0);
        assert_eq!(handle.appended(), 1);
        assert_eq!(handle.store().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_reports_header_and_entry_counts() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("inspect");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
        store
            .append_new(&[(fp(1), "a".into()), (fp(2), "b".into())])
            .unwrap();
        let info = inspect(store.path()).unwrap();
        assert_eq!(info.schema_version, Some(SCHEMA_VERSION));
        assert_eq!(info.entries, 2);
        assert_eq!(info.corrupt_tail_bytes, 0);
        let scanned = scan_dir(&dir).unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0], info);
        assert!(scan_dir(&dir.join("missing")).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
