//! The persistent proof store: an on-disk, append-only log of proved
//! sequent fingerprints.
//!
//! The in-memory [`ProofCache`](crate::cache::ProofCache) answers repeat
//! dispatches for free *within* one process; this module makes the cache
//! outlive the process, so that a warm re-run of an unchanged module — a CI
//! job on an untouched branch, the second keystroke in an editor session —
//! costs only the front-end plus one hash lookup per sequent.  The design
//! follows the prove-once/check-cheaply asymmetry: proving a sequent is
//! expensive, replaying its 128-bit content fingerprint is a set probe.
//!
//! ## File format
//!
//! One store file per `(schema version, prover configuration)` pair, named
//! `proofs-v{schema}-{config:016x}.iplstore` inside the cache directory.  The
//! file is a 28-byte header followed by variable-length entries:
//!
//! ```text
//! header:  magic "IPLPROOF" | schema version (u32 LE) | config hash (u64 LE)
//!          | generation (u64 LE)
//! entry:   prover len (u16 LE) | fingerprint (u128 LE) | config hash (u64 LE)
//!          | prover name bytes | checksum (u64 LE)
//! ```
//!
//! The checksum covers every preceding byte of the entry, so a torn write
//! (crash mid-append, disk full) invalidates exactly the torn bytes.  The
//! generation counts whole-file rewrites ([`CacheStore::compact`]): a warm
//! handle uses it to tell "same log, more entries" from "log replaced".
//!
//! ## Crash safety and concurrency
//!
//! *Loading* walks the log from the front and **resynchronises past corrupt
//! byte ranges**: an undecodable stretch (torn mid-log write from a crashed
//! handle) is skipped byte-by-byte until the next checksum-valid entry, so
//! complete entries appended *after* a torn one — by another process, say —
//! survive.  A pure torn tail is truncated (only while the advisory lock is
//! actually held); mid-log garbage is left in place and removed by the next
//! [`CacheStore::compact`].  A file whose header does not match the expected
//! magic, schema version and configuration hash is treated as poisoned: it
//! is moved to a `quarantine/` subdirectory (never silently rewritten in
//! place) with a logged reason, and a fresh store file takes its path.
//!
//! *Compaction* ([`CacheStore::compact`], [`compact_file`]) rewrites the log
//! dropping duplicate fingerprints and corrupt ranges, by writing a temp
//! file and atomically renaming it over the store, bumping the generation.
//! Handles in other processes detect the swapped inode on their next append
//! and reopen; their indexes stay valid because compaction only drops
//! duplicates, never live fingerprints.
//!
//! *Concurrent processes* sharing one cache directory are safe: every load
//! and every append happens under an OS advisory file lock
//! ([`std::fs::File::lock`]), and appends are single `write` calls on a file
//! opened in append mode, so entries from two processes interleave at entry
//! granularity.  A store handle only indexes the entries it has seen; a
//! fresh `open` picks up everything every process appended.
//!
//! Safety does **not** rest on the header alone: fingerprints themselves hash
//! the full `ProverConfig` and the cascade line-up (see
//! [`ProofCache::fingerprint`](crate::cache::ProofCache::fingerprint)), so
//! even a store entry smuggled into the wrong file can never answer a query
//! it was not proved under.  The header and per-entry config hash exist to
//! keep files separated and corruption detectable, not as the soundness
//! boundary.

use crate::cache::{Fingerprint, ProofCache};
use crate::ProverConfig;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::hash::{Hash, Hasher};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Version of the on-disk layout *and* of the fingerprint function.  Bump it
/// whenever either changes — old files are then ignored (their filename no
/// longer matches), never misinterpreted.
///
/// v2: `ProverConfig` grew its retry policy, which participates in both the
/// configuration key and the query fingerprint.
///
/// v3: the header grew a generation stamp (u64, bumped by compaction) and
/// loading resynchronises past corrupt mid-log ranges instead of truncating
/// everything after them.
pub const SCHEMA_VERSION: u32 = 3;

const MAGIC: [u8; 8] = *b"IPLPROOF";
/// Header layout: magic, schema version (u32 LE), config hash (u64 LE),
/// generation (u64 LE).
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8;
/// Longest admissible prover name; anything larger marks a corrupt entry.
const MAX_PROVER_LEN: usize = 256;

/// A persistent, append-only store of proved fingerprints backing the
/// in-memory [`ProofCache`].
pub struct CacheStore {
    file: File,
    path: PathBuf,
    config_hash: u64,
    /// Fingerprints known to be on disk (loaded or appended through this
    /// handle); `append_new` skips them.
    index: HashSet<u128>,
    /// Entries read at open time, in log order.
    loaded: Vec<(u128, String)>,
    /// Corrupt bytes skipped (and, for a pure torn tail, truncated) at open
    /// time.
    recovered_bytes: u64,
    /// `true` when complete entries were recovered *after* a corrupt range —
    /// i.e. the resync scan actually rescued someone's appends.
    salvaged: bool,
    /// Generation stamp from the header; bumped on every compaction.
    generation: u64,
    /// `true` when the existing file had a foreign or damaged header and was
    /// quarantined, starting this handle on a fresh file.
    poisoned: bool,
    /// Where the poisoned file was moved, when it was.
    quarantined: Option<PathBuf>,
    /// `true` once an advisory lock attempt came back `Unsupported` (some
    /// network/overlay filesystems) and the store fell back to lock-free
    /// operation for this handle.
    lock_degraded: bool,
}

impl std::fmt::Debug for CacheStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheStore")
            .field("path", &self.path)
            .field("entries", &self.index.len())
            .field("generation", &self.generation)
            .field("recovered_bytes", &self.recovered_bytes)
            .field("poisoned", &self.poisoned)
            .field("lock_degraded", &self.lock_degraded)
            .finish()
    }
}

impl CacheStore {
    /// The configuration key a store file is segregated by: a deterministic
    /// hash of the prover budgets and the cascade line-up.  (Deterministic
    /// within one toolchain; the schema version in the filename guards
    /// cross-version drift of the hasher itself.)
    pub fn config_key(config: &ProverConfig, provers: &[&str]) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        0x5157_ab5e_u64.hash(&mut hasher);
        config.hash(&mut hasher);
        provers.hash(&mut hasher);
        hasher.finish()
    }

    /// The store file path for a configuration inside `dir`.
    pub fn file_path(dir: &Path, config: &ProverConfig, provers: &[&str]) -> PathBuf {
        let key = Self::config_key(config, provers);
        dir.join(format!("proofs-v{SCHEMA_VERSION}-{key:016x}.iplstore"))
    }

    /// Opens (creating if necessary) the store for `config` in `dir`, loading
    /// every complete entry under an exclusive advisory lock.  A corrupt tail
    /// is truncated; a file with a foreign header is rewritten fresh.  A
    /// filesystem that does not support advisory locks degrades to lock-free
    /// operation (logged once) instead of failing the run — single-process
    /// use stays fully safe, concurrent processes fall back to the per-entry
    /// checksums.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation, locking, I/O).
    pub fn open(dir: &Path, config: &ProverConfig, provers: &[&str]) -> io::Result<CacheStore> {
        std::fs::create_dir_all(dir)?;
        let path = Self::file_path(dir, config, provers);
        let config_hash = Self::config_key(config, provers);
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let mut degraded = false;
        let locked = lock_or_degrade(&file, &path, config_hash, &mut degraded)?;
        let result = Self::load_locked(file, path, config_hash, degraded);
        if locked {
            if let Ok(store) = &result {
                store.file.unlock()?;
            }
        }
        result
    }

    fn load_locked(
        mut file: File,
        path: PathBuf,
        config_hash: u64,
        lock_degraded: bool,
    ) -> io::Result<CacheStore> {
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;

        let mut store = CacheStore {
            file,
            path,
            config_hash,
            index: HashSet::new(),
            loaded: Vec::new(),
            recovered_bytes: 0,
            salvaged: false,
            generation: 0,
            poisoned: false,
            quarantined: None,
            lock_degraded,
        };

        if bytes.is_empty() {
            store.write_header()?;
            return Ok(store);
        }
        if !header_matches(&bytes, config_hash) {
            // Poisoned: the name promised our schema and configuration but
            // the header disagrees.  Nothing in the file can be trusted, so
            // it is moved aside for post-mortem — never rewritten in place —
            // and a fresh file takes its path.
            store.poisoned = true;
            store.quarantined = Some(quarantine_file(&store.path, "foreign or damaged header")?);
            store.file = OpenOptions::new()
                .read(true)
                .append(true)
                .create(true)
                .open(&store.path)?;
            store.write_header()?;
            return Ok(store);
        }
        store.generation = header_generation(&bytes);

        let log = decode_log(&bytes[HEADER_LEN..], config_hash);
        for (fingerprint, prover) in log.entries {
            if store.index.insert(fingerprint) {
                store.loaded.push((fingerprint, prover));
            }
        }
        store.recovered_bytes = log.skipped_bytes;
        store.salvaged = log.resynced;
        if log.skipped_bytes > 0 && !log.resynced && !lock_degraded {
            // A pure torn tail (crash mid-append, nothing readable after it):
            // drop it so future appends land on a clean boundary.  Only done
            // while the advisory lock is actually held — lock-free, another
            // process may have appended past what we read, and truncating
            // would destroy its entries.  Mid-log garbage (`resynced`) is
            // left in place for the next compaction; the resync scan reads
            // past it on every load.
            store.file.set_len((HEADER_LEN + log.clean_len) as u64)?;
        }
        Ok(store)
    }

    fn write_header(&mut self) -> io::Result<()> {
        self.file
            .write_all(&header_bytes(self.config_hash, self.generation))
    }

    /// The store file backing this handle.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of distinct fingerprints this handle knows to be on disk.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no entry has been loaded or appended through this handle.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Entries read from disk when the store was opened, in log order.
    pub fn loaded_entries(&self) -> &[(u128, String)] {
        &self.loaded
    }

    /// Corrupt bytes skipped over when the store was opened.
    pub fn recovered_bytes(&self) -> u64 {
        self.recovered_bytes
    }

    /// `true` when complete entries were recovered *after* a corrupt range
    /// at open time (the resync scan rescued entries a plain
    /// truncate-at-first-error load would have discarded).
    pub fn salvaged(&self) -> bool {
        self.salvaged
    }

    /// The header's generation stamp: how many times this log has been
    /// compacted (rewritten wholesale) since it was created.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// `true` when the existing file had a foreign header and was ignored.
    pub fn was_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Where the poisoned file was quarantined, when one was.
    pub fn quarantined(&self) -> Option<&Path> {
        self.quarantined.as_deref()
    }

    /// `true` when this handle fell back to lock-free operation because the
    /// filesystem reported advisory locks as unsupported.
    pub fn lock_degraded(&self) -> bool {
        self.lock_degraded
    }

    /// Whether a fingerprint is known to be persisted.
    pub fn contains(&self, fingerprint: Fingerprint) -> bool {
        self.index.contains(&fingerprint.as_u128())
    }

    /// Replays every loaded entry into the in-memory cache (without touching
    /// its hit/miss counters), returning how many were inserted.
    pub fn preload(&self, cache: &ProofCache) -> usize {
        for (fingerprint, prover) in &self.loaded {
            cache.record(Fingerprint::from_u128(*fingerprint), prover);
        }
        self.loaded.len()
    }

    /// Appends the entries whose fingerprints this handle has not yet
    /// persisted, as one locked, single-`write` batch.  Returns how many
    /// entries were written.
    ///
    /// # Errors
    ///
    /// Propagates locking and write errors; on error no entry is recorded in
    /// the handle's index (the batch may be partially on disk, protected by
    /// per-entry checksums).
    pub fn append_new(&mut self, entries: &[(Fingerprint, String)]) -> io::Result<usize> {
        let fresh: Vec<&(Fingerprint, String)> = entries
            .iter()
            .filter(|(fingerprint, _)| !self.index.contains(&fingerprint.as_u128()))
            .collect();
        if fresh.is_empty() {
            return Ok(0);
        }
        self.reopen_if_stale()?;
        let mut buffer = Vec::new();
        for (fingerprint, prover) in &fresh {
            encode_entry(&mut buffer, fingerprint.as_u128(), prover, self.config_hash);
        }
        let path = self.path.clone();
        let locked = lock_or_degrade(
            &self.file,
            &path,
            batch_key(&buffer),
            &mut self.lock_degraded,
        )?;
        let written = self.write_batch(&buffer, locked);
        if locked {
            self.file.unlock()?;
        }
        written?;
        let mut count = 0;
        for (fingerprint, _) in &fresh {
            if self.index.insert(fingerprint.as_u128()) {
                count += 1;
            }
        }
        Ok(count)
    }

    /// Writes one encoded batch, honouring any injected I/O fault and
    /// repairing real torn writes.
    fn write_batch(&mut self, buffer: &[u8], locked: bool) -> io::Result<()> {
        if let Some(plan) = crate::fault::active_plan() {
            match plan.store_append_fault(batch_key(buffer), buffer.len()) {
                Some(crate::fault::StoreFault::DiskFull) => {
                    return Err(io::Error::other("injected fault: disk full on append"));
                }
                Some(crate::fault::StoreFault::ShortWrite { cut }) => {
                    // A torn write exactly as a crash leaves it: a prefix of
                    // the batch on disk, no repair — the per-entry checksums
                    // recover it at the next open.
                    self.file
                        .write_all(&buffer[..cut])
                        .and_then(|()| self.file.flush())?;
                    return Err(io::Error::other("injected fault: short write on append"));
                }
                None => {}
            }
        }
        let len_before = self.file.metadata().map(|m| m.len());
        let result = self.file.write_all(buffer).and_then(|()| self.file.flush());
        if result.is_err() && locked {
            // Best-effort rollback of a real torn write to the batch
            // boundary, so the log stays clean without waiting for the next
            // open's checksum recovery.  If the truncate fails too, that
            // recovery still applies.  Only attempted while the advisory
            // lock is held: lock-free, `len_before` may already be stale —
            // another handle's complete entries could sit past it, and
            // truncating would destroy them.  (The torn bytes then stay on
            // disk, and the next load's resync scan skips them.)
            if let Ok(len) = len_before {
                let _ = self.file.set_len(len);
            }
        }
        result
    }

    /// Detects that the file at `path` was atomically replaced (another
    /// handle compacted it, or the loader quarantined a poisoned log) and
    /// reopens the live file, so appends land in the current log rather
    /// than the unlinked old inode.
    fn reopen_if_stale(&mut self) -> io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::MetadataExt;
            let stale = match (self.file.metadata(), std::fs::metadata(&self.path)) {
                (Ok(ours), Ok(live)) => ours.dev() != live.dev() || ours.ino() != live.ino(),
                // Path gone entirely (quarantined / deleted): recreate.
                (_, Err(e)) if e.kind() == io::ErrorKind::NotFound => true,
                _ => false,
            };
            if stale {
                self.file = OpenOptions::new()
                    .read(true)
                    .append(true)
                    .create(true)
                    .open(&self.path)?;
                let len = self.file.metadata()?.len();
                if len == 0 {
                    self.write_header()?;
                } else {
                    let mut header = vec![0u8; HEADER_LEN.min(len as usize)];
                    self.file.seek(SeekFrom::Start(0))?;
                    self.file.read_exact(&mut header)?;
                    if header_matches(&header, self.config_hash) {
                        self.generation = header_generation(&header);
                    }
                }
            }
        }
        Ok(())
    }

    /// Rewrites the log dropping duplicate fingerprints and corrupt byte
    /// ranges, via write-to-temp + atomic rename, bumping the generation
    /// stamp.  The handle's index swaps to the compacted contents without a
    /// rescan.  Handles in other processes detect the swapped inode on
    /// their next append ([`Self::reopen_if_stale`]); their indexes stay
    /// valid because compaction only drops duplicates, never live
    /// fingerprints.
    ///
    /// # Errors
    ///
    /// Propagates locking, read, write and rename errors; on error the
    /// original log is untouched (the temp file may be left behind).
    pub fn compact(&mut self) -> io::Result<CompactStats> {
        self.reopen_if_stale()?;
        let path = self.path.clone();
        let key = batch_key(path.to_string_lossy().as_bytes());
        let locked = lock_or_degrade(&self.file, &path, key, &mut self.lock_degraded)?;
        let result = self.compact_locked();
        if locked && result.is_err() {
            let _ = self.file.unlock();
        }
        // On success the locked descriptor was dropped by the fd swap in
        // `compact_locked`, releasing the advisory lock with it.
        result
    }

    fn compact_locked(&mut self) -> io::Result<CompactStats> {
        // Read back from disk under the lock: other handles may have
        // appended entries this one has never seen, and they must survive.
        let mut bytes = Vec::new();
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(&mut bytes)?;
        if !header_matches(&bytes, self.config_hash) {
            return Err(io::Error::other(format!(
                "store header changed under compaction: {}",
                self.path.display()
            )));
        }
        let generation = header_generation(&bytes) + 1;
        let log = decode_log(&bytes[HEADER_LEN..], self.config_hash);
        let (stats, kept) = rewrite_compacted(
            &self.path,
            self.config_hash,
            generation,
            &log,
            bytes.len() as u64,
        )?;
        // Swap to the compacted file; dropping the old descriptor releases
        // the advisory lock held on the now-unlinked inode.
        self.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        self.generation = generation;
        self.index = kept.iter().map(|(fingerprint, _)| *fingerprint).collect();
        self.loaded = kept;
        self.recovered_bytes = 0;
        self.salvaged = false;
        Ok(stats)
    }
}

/// A long-lived wrapper around [`CacheStore`] for callers that verify
/// repeatedly in one process (a daemon, an incremental loop).
///
/// [`CacheStore::open`] scans the whole log; doing that once per verify is
/// the dominant fixed cost of a warm request.  A `StoreHandle` opens the
/// store once and replays it into the in-memory cache at most once —
/// [`StoreHandle::ensure_preloaded`] is idempotent — while still appending
/// freshly proved fingerprints after every verify.
#[derive(Debug)]
pub struct StoreHandle {
    store: CacheStore,
    /// How many times the loaded log was actually replayed into a cache.
    /// Stays at 1 for the life of the handle; the daemon's "no re-scan"
    /// guarantee is asserted against this counter.
    preloads: usize,
    /// Total entries appended through this handle.
    appended: usize,
}

impl StoreHandle {
    /// Opens (creating if necessary) the store for `config` in `dir`.  The
    /// log is scanned here, once; see [`CacheStore::open`] for recovery and
    /// locking behaviour.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from [`CacheStore::open`].
    pub fn open(dir: &Path, config: &ProverConfig, provers: &[&str]) -> io::Result<StoreHandle> {
        Ok(StoreHandle {
            store: CacheStore::open(dir, config, provers)?,
            preloads: 0,
            appended: 0,
        })
    }

    /// Replays the loaded log into `cache` the first time it is called;
    /// every later call is a no-op returning 0.  Returns how many entries
    /// were replayed.
    pub fn ensure_preloaded(&mut self, cache: &ProofCache) -> usize {
        if self.preloads > 0 {
            return 0;
        }
        self.preloads = 1;
        self.store.preload(cache)
    }

    /// How many times the on-disk log was replayed into a cache (0 before
    /// the first [`StoreHandle::ensure_preloaded`], 1 forever after).
    pub fn preload_count(&self) -> usize {
        self.preloads
    }

    /// Total entries appended through this handle.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Appends not-yet-persisted entries; see [`CacheStore::append_new`].
    ///
    /// # Errors
    ///
    /// Propagates locking and write errors from [`CacheStore::append_new`].
    pub fn append_new(&mut self, entries: &[(Fingerprint, String)]) -> io::Result<usize> {
        let written = self.store.append_new(entries)?;
        self.appended += written;
        Ok(written)
    }

    /// Compacts the underlying store; see [`CacheStore::compact`].  The
    /// handle's warm index swaps to the compacted log without a rescan —
    /// [`StoreHandle::preload_count`] is unaffected.
    ///
    /// # Errors
    ///
    /// Propagates locking and I/O errors from [`CacheStore::compact`].
    pub fn compact(&mut self) -> io::Result<CompactStats> {
        self.store.compact()
    }

    /// The underlying store.
    pub fn store(&self) -> &CacheStore {
        &self.store
    }
}

/// Acquires the advisory lock, degrading to lock-free operation (with one
/// warning per handle) when the filesystem reports locks as unsupported.
/// Returns whether the lock is actually held.
fn lock_or_degrade(
    file: &File,
    path: &Path,
    fault_key: u64,
    degraded: &mut bool,
) -> io::Result<bool> {
    let injected = crate::fault::active_plan().is_some_and(|plan| plan.store_lock_fails(fault_key));
    let result = if injected {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "injected fault: advisory lock unsupported",
        ))
    } else {
        file.lock()
    };
    match result {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::Unsupported => {
            if !*degraded {
                eprintln!(
                    "ipl: warning: advisory file lock unsupported on {} ({e}); \
                     continuing lock-free (safe single-process; concurrent \
                     writers fall back to per-entry checksums)",
                    path.display()
                );
                *degraded = true;
            }
            Ok(false)
        }
        Err(e) => Err(e),
    }
}

/// Content key for store fault-injection decisions: a hash of the encoded
/// batch, so the same plan tears the same appends regardless of scheduling.
fn batch_key(buffer: &[u8]) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    0x0057_09e5_u64.hash(&mut hasher);
    buffer.hash(&mut hasher);
    hasher.finish()
}

/// Summary of one store file, for `ipl cache` diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreInfo {
    /// The store file.
    pub path: PathBuf,
    /// Schema version from the header (`None` when the header is foreign).
    pub schema_version: Option<u32>,
    /// Generation stamp from the header (`None` when the header is foreign).
    pub generation: Option<u64>,
    /// Recoverable entries in the log (including any salvaged past corrupt
    /// ranges; duplicates counted).
    pub entries: usize,
    /// Corrupt bytes that a load would skip over.
    pub corrupt_tail_bytes: u64,
}

/// Inspects a store file without locking or modifying it.
///
/// # Errors
///
/// Propagates read errors.
pub fn inspect(path: &Path) -> io::Result<StoreInfo> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
        return Ok(StoreInfo {
            path: path.to_path_buf(),
            schema_version: None,
            generation: None,
            entries: 0,
            corrupt_tail_bytes: bytes.len() as u64,
        });
    }
    let schema = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let config_hash = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let log = decode_log(&bytes[HEADER_LEN..], config_hash);
    Ok(StoreInfo {
        path: path.to_path_buf(),
        schema_version: Some(schema),
        generation: Some(header_generation(&bytes)),
        entries: log.entries.len(),
        corrupt_tail_bytes: log.skipped_bytes,
    })
}

/// Lists every store file in a cache directory (any configuration).
///
/// # Errors
///
/// Propagates directory-read errors; a missing directory yields an empty
/// list.
pub fn scan_dir(dir: &Path) -> io::Result<Vec<StoreInfo>> {
    let mut infos = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(infos),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("iplstore") {
            infos.push(inspect(&path)?);
        }
    }
    infos.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(infos)
}

fn header_matches(bytes: &[u8], config_hash: u64) -> bool {
    bytes.len() >= HEADER_LEN
        && bytes[..8] == MAGIC
        && bytes[8..12] == SCHEMA_VERSION.to_le_bytes()
        && bytes[12..20] == config_hash.to_le_bytes()
}

fn header_generation(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[20..HEADER_LEN].try_into().expect("8 bytes"))
}

fn header_bytes(config_hash: u64, generation: u64) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&SCHEMA_VERSION.to_le_bytes());
    header[12..20].copy_from_slice(&config_hash.to_le_bytes());
    header[20..].copy_from_slice(&generation.to_le_bytes());
    header
}

/// One decoded entry region, with corruption accounting.
struct DecodedLog {
    /// Every recoverable entry, in log order, duplicates preserved.
    entries: Vec<(u128, String)>,
    /// Bytes that decoded as no entry (torn writes, garbage).
    skipped_bytes: u64,
    /// Length of the gap-free prefix of the entry region — the truncation
    /// point when the corruption is a pure torn tail.
    clean_len: usize,
    /// `true` when at least one entry decoded *after* a corrupt gap.
    resynced: bool,
}

/// Decodes every recoverable entry from an entry region, resynchronising
/// past corrupt byte ranges: after an undecodable stretch the scan advances
/// one byte at a time until the next checksum-valid entry.  A false resync
/// would need a 64-bit checksum collision *and* a matching config hash at a
/// misaligned offset, so complete entries after a torn one are recovered
/// rather than discarded.
fn decode_log(bytes: &[u8], config_hash: u64) -> DecodedLog {
    let mut log = DecodedLog {
        entries: Vec::new(),
        skipped_bytes: 0,
        clean_len: 0,
        resynced: false,
    };
    let mut pos = 0;
    let mut gap_seen = false;
    while pos < bytes.len() {
        match decode_entry(&bytes[pos..], config_hash) {
            Some((fingerprint, prover, consumed)) => {
                log.entries.push((fingerprint, prover));
                pos += consumed;
                if gap_seen {
                    log.resynced = true;
                } else {
                    log.clean_len = pos;
                }
            }
            None => {
                pos += 1;
                log.skipped_bytes += 1;
                gap_seen = true;
            }
        }
    }
    log
}

/// Statistics from one compaction ([`CacheStore::compact`] /
/// [`compact_file`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Recoverable entries in the log before compaction (with duplicates).
    pub entries_before: usize,
    /// Distinct entries written to the compacted log.
    pub entries_after: usize,
    /// Duplicate entries dropped.
    pub duplicates_dropped: usize,
    /// Corrupt bytes dropped.
    pub corrupt_bytes_dropped: u64,
    /// File size before compaction.
    pub bytes_before: u64,
    /// File size after compaction.
    pub bytes_after: u64,
    /// The compacted file's generation stamp (old generation + 1).
    pub generation: u64,
}

/// Writes a deduplicated copy of `log` as a temp file next to `path` and
/// atomically renames it into place.  Returns the stats and the kept
/// entries in log order.
fn rewrite_compacted(
    path: &Path,
    config_hash: u64,
    generation: u64,
    log: &DecodedLog,
    bytes_before: u64,
) -> io::Result<(CompactStats, Vec<(u128, String)>)> {
    let mut seen = HashSet::new();
    let mut kept = Vec::new();
    for (fingerprint, prover) in &log.entries {
        if seen.insert(*fingerprint) {
            kept.push((*fingerprint, prover.clone()));
        }
    }
    let mut out = Vec::with_capacity(bytes_before as usize);
    out.extend_from_slice(&header_bytes(config_hash, generation));
    for (fingerprint, prover) in &kept {
        encode_entry(&mut out, *fingerprint, prover, config_hash);
    }
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("store.iplstore");
    let tmp = path.with_file_name(format!("{file_name}.tmp-{}", std::process::id()));
    let write = (|| {
        let mut tmp_file = File::create(&tmp)?;
        tmp_file.write_all(&out)?;
        // The rename must never expose a partially written log.
        tmp_file.sync_all()
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path)?;
    // Best-effort directory fsync so the rename itself is durable.
    if let Some(dir) = path.parent() {
        if let Ok(dir_file) = File::open(dir) {
            let _ = dir_file.sync_all();
        }
    }
    let stats = CompactStats {
        entries_before: log.entries.len(),
        entries_after: kept.len(),
        duplicates_dropped: log.entries.len() - kept.len(),
        corrupt_bytes_dropped: log.skipped_bytes,
        bytes_before,
        bytes_after: out.len() as u64,
        generation,
    };
    Ok((stats, kept))
}

/// Moves an untrustworthy store file into a `quarantine/` subdirectory next
/// to it — never rewriting or deleting it in place — and logs the reason.
/// The quarantined copy keeps its name, suffixed if needed to stay unique.
fn quarantine_file(path: &Path, reason: &str) -> io::Result<PathBuf> {
    let dir = path
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let quarantine_dir = dir.join("quarantine");
    std::fs::create_dir_all(&quarantine_dir)?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("store.iplstore")
        .to_string();
    let mut target = quarantine_dir.join(&name);
    let mut attempt = 0u32;
    while target.exists() {
        attempt += 1;
        target = quarantine_dir.join(format!("{name}.{attempt}"));
    }
    std::fs::rename(path, &target)?;
    eprintln!(
        "ipl: warning: quarantined corrupt store {} -> {} ({reason})",
        path.display(),
        target.display()
    );
    Ok(target)
}

/// Outcome of [`compact_file`]: either the log was rewritten in place, or
/// it could not be trusted and was moved to `quarantine/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileCompaction {
    /// The log was compacted; the stats describe the rewrite.
    Compacted(CompactStats),
    /// The file's header was foreign (wrong magic or schema version) and it
    /// was quarantined instead of touched.
    Quarantined {
        /// Where the file was moved.
        to: PathBuf,
        /// Why it could not be compacted.
        reason: String,
    },
}

/// Compacts one store file offline (no open handle needed), under the
/// advisory lock: duplicates and corrupt ranges are dropped via
/// write-to-temp + atomic rename and the generation stamp is bumped.  A
/// file whose header is foreign — wrong magic, wrong schema version — is
/// moved to `quarantine/` instead of being rewritten in place.  The
/// config hash is taken from the file's own header (offline compaction
/// trusts a self-consistent file).
///
/// # Errors
///
/// Propagates locking and I/O errors.
pub fn compact_file(path: &Path) -> io::Result<FileCompaction> {
    let file = OpenOptions::new().read(true).write(true).open(path)?;
    let mut degraded = false;
    let key = batch_key(path.to_string_lossy().as_bytes());
    let locked = lock_or_degrade(&file, path, key, &mut degraded)?;
    let result = compact_file_locked(path);
    if locked {
        let _ = file.unlock();
    }
    result
}

fn compact_file_locked(path: &Path) -> io::Result<FileCompaction> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < HEADER_LEN
        || bytes[..8] != MAGIC
        || bytes[8..12] != SCHEMA_VERSION.to_le_bytes()
    {
        let reason = "foreign or damaged header";
        let to = quarantine_file(path, reason)?;
        return Ok(FileCompaction::Quarantined {
            to,
            reason: reason.to_string(),
        });
    }
    let config_hash = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let generation = header_generation(&bytes) + 1;
    let log = decode_log(&bytes[HEADER_LEN..], config_hash);
    let (stats, _) = rewrite_compacted(path, config_hash, generation, &log, bytes.len() as u64)?;
    Ok(FileCompaction::Compacted(stats))
}

/// Compacts every `.iplstore` file in a cache directory (any
/// configuration), in path order.  A missing directory yields an empty
/// list.
///
/// # Errors
///
/// Propagates directory-read errors and per-file errors from
/// [`compact_file`].
pub fn compact_dir(dir: &Path) -> io::Result<Vec<(PathBuf, FileCompaction)>> {
    let mut results = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(results),
        Err(e) => return Err(e),
    };
    let mut paths = Vec::new();
    for entry in entries {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("iplstore") {
            paths.push(path);
        }
    }
    paths.sort();
    for path in paths {
        let outcome = compact_file(&path)?;
        results.push((path, outcome));
    }
    Ok(results)
}

fn encode_entry(out: &mut Vec<u8>, fingerprint: u128, prover: &str, config_hash: u64) {
    let start = out.len();
    out.extend_from_slice(&(prover.len() as u16).to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&config_hash.to_le_bytes());
    out.extend_from_slice(prover.as_bytes());
    let checksum = entry_checksum(&out[start..]);
    out.extend_from_slice(&checksum.to_le_bytes());
}

/// Decodes one entry from the front of `bytes`; returns the fingerprint, the
/// prover name and the number of bytes consumed, or `None` when the entry is
/// incomplete, fails its checksum, or was written under another
/// configuration.
fn decode_entry(bytes: &[u8], config_hash: u64) -> Option<(u128, String, usize)> {
    if bytes.len() < 2 {
        return None;
    }
    let prover_len = u16::from_le_bytes(bytes[..2].try_into().expect("2 bytes")) as usize;
    if prover_len > MAX_PROVER_LEN {
        return None;
    }
    let body_len = 2 + 16 + 8 + prover_len;
    let total_len = body_len + 8;
    if bytes.len() < total_len {
        return None;
    }
    let stored_checksum = u64::from_le_bytes(bytes[body_len..total_len].try_into().expect("8"));
    if entry_checksum(&bytes[..body_len]) != stored_checksum {
        return None;
    }
    let fingerprint = u128::from_le_bytes(bytes[2..18].try_into().expect("16 bytes"));
    let entry_config = u64::from_le_bytes(bytes[18..26].try_into().expect("8 bytes"));
    if entry_config != config_hash {
        return None;
    }
    let prover = std::str::from_utf8(&bytes[26..body_len]).ok()?.to_string();
    Some((fingerprint, prover, total_len))
}

fn entry_checksum(bytes: &[u8]) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    0xc0a1_e5ce_u64.hash(&mut hasher);
    bytes.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ipl-store-test-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fp(raw: u128) -> Fingerprint {
        Fingerprint::from_u128(raw)
    }

    #[test]
    fn entries_survive_reopen() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("reopen");
        let config = ProverConfig::default();
        let provers = ["syntactic", "smt-ground"];
        let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
        assert!(store.is_empty());
        assert_eq!(
            store
                .append_new(&[(fp(1), "smt-ground".into()), (fp(2), "bapa".into())])
                .unwrap(),
            2
        );
        // Appending the same fingerprints again is a no-op.
        assert_eq!(
            store.append_new(&[(fp(1), "smt-ground".into())]).unwrap(),
            0
        );

        let reopened = CacheStore::open(&dir, &config, &provers).unwrap();
        assert_eq!(reopened.len(), 2);
        assert!(reopened.contains(fp(1)));
        assert!(reopened.contains(fp(2)));
        assert_eq!(reopened.recovered_bytes(), 0);
        assert!(!reopened.was_poisoned());
        let mut loaded = reopened.loaded_entries().to_vec();
        loaded.sort();
        assert_eq!(loaded, vec![(1, "smt-ground".into()), (2, "bapa".into())]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_configs_use_different_files() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("configs");
        let provers = ["smt-ground"];
        let mut default_store = CacheStore::open(&dir, &ProverConfig::default(), &provers).unwrap();
        default_store
            .append_new(&[(fp(7), "smt-ground".into())])
            .unwrap();
        let quick_store = CacheStore::open(&dir, &ProverConfig::quick(), &provers).unwrap();
        assert_ne!(default_store.path(), quick_store.path());
        assert!(quick_store.is_empty());
        // The line-up is part of the key too.
        assert_ne!(
            CacheStore::file_path(&dir, &ProverConfig::default(), &provers),
            CacheStore::file_path(&dir, &ProverConfig::default(), &["syntactic"])
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_dropped_and_store_stays_usable() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("truncate");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
        store
            .append_new(&[(fp(10), "a".into()), (fp(11), "b".into())])
            .unwrap();
        let path = store.path().to_path_buf();
        drop(store);
        // Chop the last 5 bytes: the second entry's checksum is torn.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let mut recovered = CacheStore::open(&dir, &config, &provers).unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(recovered.contains(fp(10)));
        assert!(!recovered.contains(fp(11)));
        assert!(recovered.recovered_bytes() > 0);
        // The file was truncated to the last good entry, so appends land on a
        // clean boundary and survive the next load.
        recovered.append_new(&[(fp(12), "c".into())]).unwrap();
        let reopened = CacheStore::open(&dir, &config, &provers).unwrap();
        assert_eq!(reopened.len(), 2);
        assert!(reopened.contains(fp(12)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_header_is_ignored_not_replayed() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("poison");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
        store.append_new(&[(fp(21), "a".into())]).unwrap();
        let path = store.path().to_path_buf();
        drop(store);
        // Flip the schema version in the header: the file now claims a layout
        // we do not understand.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = bytes[8].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();

        let fresh = CacheStore::open(&dir, &config, &provers).unwrap();
        assert!(fresh.was_poisoned());
        assert!(fresh.is_empty(), "poisoned entries must not be replayed");
        // The poisoned bytes were moved to quarantine/, not rewritten in
        // place: the evidence survives for post-mortem.
        let quarantined = fresh.quarantined().expect("quarantine path").to_path_buf();
        assert!(quarantined.starts_with(dir.join("quarantine")));
        assert_eq!(std::fs::read(&quarantined).unwrap(), bytes);
        // And the fresh file at the original path is sound again.
        let reopened = CacheStore::open(&dir, &config, &provers).unwrap();
        assert!(!reopened.was_poisoned());
        assert!(reopened.quarantined().is_none());
        // Quarantined files are invisible to the directory scan.
        assert_eq!(scan_dir(&dir).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_drops_duplicates_and_bumps_the_generation() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("compact");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        // Two handles opened before either appends: each considers fp(1)
        // fresh, so the log ends up with a duplicate entry.
        let mut a = CacheStore::open(&dir, &config, &provers).unwrap();
        let mut b = CacheStore::open(&dir, &config, &provers).unwrap();
        a.append_new(&[(fp(1), "a".into()), (fp(2), "a".into())])
            .unwrap();
        b.append_new(&[(fp(1), "b".into())]).unwrap();
        let info = inspect(a.path()).unwrap();
        assert_eq!(info.entries, 3, "duplicate landed on disk");
        assert_eq!(info.generation, Some(0));

        let stats = a.compact().unwrap();
        assert_eq!(stats.entries_before, 3);
        assert_eq!(stats.entries_after, 2);
        assert_eq!(stats.duplicates_dropped, 1);
        assert_eq!(stats.generation, 1);
        assert!(stats.bytes_after < stats.bytes_before);
        assert_eq!(a.generation(), 1);
        assert_eq!(a.len(), 2, "index swapped without losing fingerprints");
        assert!(a.contains(fp(1)) && a.contains(fp(2)));

        // The compacted file is smaller, self-consistent, and a fresh open
        // sees every fingerprint.
        let info = inspect(a.path()).unwrap();
        assert_eq!(info.entries, 2);
        assert_eq!(info.generation, Some(1));
        let reopened = CacheStore::open(&dir, &config, &provers).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.generation(), 1);

        // Handle b's descriptor points at the unlinked pre-compaction inode;
        // its next append detects the swap and lands in the live log.
        b.append_new(&[(fp(3), "b".into())]).unwrap();
        let reopened = CacheStore::open(&dir, &config, &provers).unwrap();
        assert_eq!(reopened.len(), 3);
        assert!(reopened.contains(fp(3)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_salvages_complete_entries_past_a_corrupt_range() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("salvage");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
        store.append_new(&[(fp(71), "a".into())]).unwrap();
        let path = store.path().to_path_buf();
        let good_len = std::fs::metadata(&path).unwrap().len();
        drop(store);
        // Simulate a torn append followed by another handle's complete one:
        // garbage bytes, then a valid entry appended straight after them.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xfe; 7]);
        let config_hash = CacheStore::config_key(&config, &provers);
        encode_entry(&mut bytes, 72, "b", config_hash);
        std::fs::write(&path, &bytes).unwrap();

        let store = CacheStore::open(&dir, &config, &provers).unwrap();
        assert!(
            store.salvaged(),
            "resync must rescue the entry past the gap"
        );
        assert_eq!(store.recovered_bytes(), 7);
        assert!(store.contains(fp(71)) && store.contains(fp(72)));
        // Mid-log garbage stays put (compaction's job), so the file length
        // is unchanged...
        assert_eq!(std::fs::metadata(&path).unwrap().len(), bytes.len() as u64);
        drop(store);
        // ...and compaction scrubs it.
        let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
        let stats = store.compact().unwrap();
        assert_eq!(stats.corrupt_bytes_dropped, 7);
        assert_eq!(stats.entries_after, 2);
        let reopened = CacheStore::open(&dir, &config, &provers).unwrap();
        assert!(!reopened.salvaged());
        assert_eq!(reopened.recovered_bytes(), 0);
        assert_eq!(reopened.len(), 2);
        assert!(std::fs::metadata(&path).unwrap().len() > good_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_file_quarantines_foreign_schemas_and_compacts_sound_logs() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("compactdir");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
        store
            .append_new(&[(fp(81), "a".into()), (fp(82), "a".into())])
            .unwrap();
        drop(store);
        // A second file claiming an unknown schema version.
        let foreign = dir.join("proofs-v999-0000000000000000.iplstore");
        let mut foreign_bytes = Vec::new();
        foreign_bytes.extend_from_slice(&MAGIC);
        foreign_bytes.extend_from_slice(&999u32.to_le_bytes());
        foreign_bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&foreign, &foreign_bytes).unwrap();

        let results = compact_dir(&dir).unwrap();
        assert_eq!(results.len(), 2);
        let mut compacted = 0;
        let mut quarantined = 0;
        for (path, outcome) in &results {
            match outcome {
                FileCompaction::Compacted(stats) => {
                    compacted += 1;
                    assert_eq!(stats.entries_after, 2);
                    assert_eq!(stats.generation, 1);
                    assert_ne!(path, &foreign);
                }
                FileCompaction::Quarantined { to, .. } => {
                    quarantined += 1;
                    assert_eq!(path, &foreign);
                    assert!(to.starts_with(dir.join("quarantine")));
                    assert_eq!(std::fs::read(to).unwrap(), foreign_bytes);
                    assert!(!foreign.exists());
                }
            }
        }
        assert_eq!((compacted, quarantined), (1, 1));
        assert!(compact_dir(&dir.join("missing")).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn preload_feeds_the_memory_cache() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("preload");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let raw = 0xdead_beef_dead_beef_dead_beef_dead_beefu128;
        {
            let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
            store.append_new(&[(fp(raw), "smt-ground".into())]).unwrap();
        }
        let store = CacheStore::open(&dir, &config, &provers).unwrap();
        let cache = ProofCache::global();
        assert_eq!(store.preload(cache), 1);
        assert_eq!(cache.lookup(fp(raw)).as_deref(), Some("smt-ground"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsupported_lock_degrades_instead_of_failing() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("lockfree");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let plan = crate::fault::FaultPlan {
            seed: 5,
            store_lock_fail_bp: 10_000,
            ..crate::fault::FaultPlan::default()
        };
        crate::fault::with_plan(Some(plan), || {
            let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
            assert!(store.lock_degraded(), "every lock attempt was Unsupported");
            assert_eq!(store.append_new(&[(fp(31), "a".into())]).unwrap(), 1);
        });
        // Lock-free appends are still complete, checksummed entries.
        let reopened = CacheStore::open(&dir, &config, &provers).unwrap();
        assert!(!reopened.lock_degraded());
        assert!(reopened.contains(fp(31)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_short_write_is_recovered_at_next_open() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("shortwrite");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let plan = crate::fault::FaultPlan {
            seed: 6,
            store_short_write_bp: 10_000,
            ..crate::fault::FaultPlan::default()
        };
        {
            let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
            store.append_new(&[(fp(41), "a".into())]).unwrap();
            crate::fault::with_plan(Some(plan), || {
                let err = store.append_new(&[(fp(42), "b".into())]).unwrap_err();
                assert!(err.to_string().contains("short write"));
                assert!(
                    !store.contains(fp(42)),
                    "a failed append must not be indexed"
                );
            });
        }
        // The torn tail is dropped; the store stays usable and the entry
        // written before the fault survives.
        let mut recovered = CacheStore::open(&dir, &config, &provers).unwrap();
        assert!(recovered.contains(fp(41)));
        assert!(!recovered.contains(fp(42)));
        recovered.append_new(&[(fp(43), "c".into())]).unwrap();
        let reopened = CacheStore::open(&dir, &config, &provers).unwrap();
        assert_eq!(reopened.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_disk_full_writes_nothing() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("diskfull");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let plan = crate::fault::FaultPlan {
            seed: 7,
            store_disk_full_bp: 10_000,
            ..crate::fault::FaultPlan::default()
        };
        let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
        let len_before = std::fs::metadata(store.path()).unwrap().len();
        crate::fault::with_plan(Some(plan), || {
            let err = store.append_new(&[(fp(51), "a".into())]).unwrap_err();
            assert!(err.to_string().contains("disk full"));
        });
        assert_eq!(std::fs::metadata(store.path()).unwrap().len(), len_before);
        // The handle recovers as soon as the disk does.
        assert_eq!(store.append_new(&[(fp(51), "a".into())]).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_handle_preloads_once_and_keeps_appending() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("handle");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        {
            let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
            store.append_new(&[(fp(61), "smt-ground".into())]).unwrap();
        }
        let mut handle = StoreHandle::open(&dir, &config, &provers).unwrap();
        assert_eq!(handle.preload_count(), 0);
        let cache = ProofCache::global();
        assert_eq!(handle.ensure_preloaded(cache), 1);
        assert_eq!(handle.ensure_preloaded(cache), 0, "second preload is free");
        assert_eq!(handle.preload_count(), 1);
        assert_eq!(handle.append_new(&[(fp(62), "bapa".into())]).unwrap(), 1);
        assert_eq!(handle.append_new(&[(fp(62), "bapa".into())]).unwrap(), 0);
        assert_eq!(handle.appended(), 1);
        assert_eq!(handle.store().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_reports_header_and_entry_counts() {
        let _serial = crate::fault::serial_guard();
        let dir = temp_dir("inspect");
        let config = ProverConfig::default();
        let provers = ["smt-ground"];
        let mut store = CacheStore::open(&dir, &config, &provers).unwrap();
        store
            .append_new(&[(fp(1), "a".into()), (fp(2), "b".into())])
            .unwrap();
        let info = inspect(store.path()).unwrap();
        assert_eq!(info.schema_version, Some(SCHEMA_VERSION));
        assert_eq!(info.entries, 2);
        assert_eq!(info.corrupt_tail_bytes, 0);
        let scanned = scan_dir(&dir).unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0], info);
        assert!(scan_dir(&dir.join("missing")).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
