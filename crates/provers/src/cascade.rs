//! The prover cascade: the integrated-reasoning dispatcher.
//!
//! Each sequent is handed to a sequence of reasoning systems in increasing
//! order of cost, each with its own budget and wall-clock timeout, exactly as
//! Jahob runs SPASS/E/CVC3/Z3/MONA/BAPA in turn.  The first prover that
//! succeeds wins; if all fail the sequent is reported unproved (in the paper
//! this is the signal for the developer to add proof-language guidance).

use crate::cache::{Fingerprint, ProofCache};
use crate::ground::{refute, GroundResult};
use crate::inst::refute_with_instantiation;
use crate::preprocess::build_problem;
use crate::syntactic::Syntactic;
use crate::{containment, fault};
use crate::{Cancel, Outcome, Prover, ProverConfig, Query, SkipReason};
use ipl_logic::hashed::Hashed;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The answer produced by the cascade for one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProverAnswer {
    /// Overall outcome.
    pub outcome: Outcome,
    /// Name of the prover that discharged the query (when proved).  A proof
    /// replayed from the cache reports the prover that originally found it.
    pub prover: Option<String>,
    /// Total time spent across the cascade.
    pub duration: Duration,
    /// Wall-clock spent in each attempted cascade stage, in dispatch order
    /// (the stage that proved the query is last).  Stages re-run by the
    /// escalation ladder carry a `#retryN` suffix.
    pub stage_durations: Vec<(String, Duration)>,
    /// `true` when the answer was replayed from the proof cache without
    /// running any prover.
    pub cached: bool,
    /// Content fingerprint of the query (present when the cache was
    /// consulted, i.e. [`ProverConfig::use_cache`]).  The verification driver
    /// uses it to persist freshly proved sequents to the on-disk store and to
    /// match sequents across incremental re-verification runs.
    pub fingerprint: Option<Fingerprint>,
    /// Number of budget-escalation retries the cascade ran after the first
    /// full sweep came back Unknown with its budget exhausted (see
    /// [`crate::RetryPolicy`]; always `0` when retries are disabled).
    pub retries: u32,
}

impl ProverAnswer {
    fn settled(outcome: Outcome, fingerprint: Option<Fingerprint>, start: Instant) -> ProverAnswer {
        ProverAnswer {
            outcome,
            prover: None,
            duration: start.elapsed(),
            stage_durations: Vec::new(),
            cached: false,
            fingerprint,
            retries: 0,
        }
    }
}

/// The ground SMT-lite prover (no quantifier instantiation).
#[derive(Debug, Default, Clone, Copy)]
pub struct GroundSmt;

impl Prover for GroundSmt {
    fn name(&self) -> &'static str {
        "smt-ground"
    }

    fn prove(&self, query: &Query, config: &ProverConfig, cancel: &Cancel) -> Outcome {
        let problem = build_problem(&query.assumption_forms(), &query.goal, &query.env);
        match refute(&problem.ground, &query.env, config, cancel) {
            GroundResult::Unsat => Outcome::Proved,
            GroundResult::Unknown => Outcome::Unknown,
        }
    }
}

/// The instantiating SMT-lite / first-order prover: trigger-driven
/// E-matching over the ground term index, with sort-pool enumeration as the
/// fallback for trigger-less quantifiers (see [`crate::inst`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct InstSmt;

impl Prover for InstSmt {
    fn name(&self) -> &'static str {
        "smt-inst"
    }

    fn prove(&self, query: &Query, config: &ProverConfig, cancel: &Cancel) -> Outcome {
        let problem = build_problem(&query.assumption_forms(), &query.goal, &query.env);
        match refute_with_instantiation(
            &problem,
            &query.env,
            config,
            query.assumptions.len(),
            cancel,
        ) {
            GroundResult::Unsat => Outcome::Proved,
            GroundResult::Unknown => Outcome::Unknown,
        }
    }
}

/// Adapter for the BAPA cardinality decision procedure.
#[derive(Debug, Default, Clone, Copy)]
pub struct BapaProver;

impl Prover for BapaProver {
    fn name(&self) -> &'static str {
        "bapa"
    }

    fn prove(&self, query: &Query, _config: &ProverConfig, cancel: &Cancel) -> Outcome {
        // BAPA is only worth invoking when the goal involves cardinalities or
        // set algebra; other goals are left to the general provers.
        if !mentions_cardinality(&query.goal) {
            return Outcome::Unknown;
        }
        let limits = ipl_bapa::BapaLimits {
            deadline: cancel.deadline(),
            ..ipl_bapa::BapaLimits::default()
        };
        match ipl_bapa::prove_valid(&query.assumption_forms(), &query.goal, &limits) {
            ipl_bapa::BapaOutcome::Valid => Outcome::Proved,
            ipl_bapa::BapaOutcome::Unknown => Outcome::Unknown,
        }
    }
}

fn mentions_cardinality(form: &ipl_logic::Form) -> bool {
    let mut found = false;
    fn rec(form: &ipl_logic::Form, found: &mut bool) {
        if *found {
            return;
        }
        if matches!(form, ipl_logic::Form::Card(_)) {
            *found = true;
            return;
        }
        form.for_each_child(|c| rec(c, found));
    }
    rec(form, &mut found);
    found
}

/// Adapter for the reachability (shape) prover.
#[derive(Debug, Default, Clone, Copy)]
pub struct ShapeProver;

impl Prover for ShapeProver {
    fn name(&self) -> &'static str {
        "shape"
    }

    fn prove(&self, query: &Query, _config: &ProverConfig, cancel: &Cancel) -> Outcome {
        if cancel.is_cancelled()
            || (!mentions_reach(&query.goal)
                && !query.assumption_forms().iter().any(mentions_reach))
        {
            return Outcome::Unknown;
        }
        let limits = ipl_shape::ShapeLimits {
            deadline: cancel.deadline(),
            ..ipl_shape::ShapeLimits::default()
        };
        match ipl_shape::prove_valid(&query.assumption_forms(), &query.goal, &limits) {
            ipl_shape::ShapeOutcome::Valid => Outcome::Proved,
            ipl_shape::ShapeOutcome::Unknown => Outcome::Unknown,
        }
    }
}

fn mentions_reach(form: &ipl_logic::Form) -> bool {
    let mut found = false;
    fn rec(form: &ipl_logic::Form, found: &mut bool) {
        if *found {
            return;
        }
        if matches!(form, ipl_logic::Form::App(name, _) if name == "reach") {
            *found = true;
            return;
        }
        form.for_each_child(|c| rec(c, found));
    }
    rec(form, &mut found);
    found
}

/// The cascade of provers with per-prover timeouts.
pub struct Cascade {
    provers: Vec<Arc<dyn Prover>>,
    config: ProverConfig,
}

impl std::fmt::Debug for Cascade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cascade")
            .field("provers", &self.prover_names())
            .field("config", &self.config)
            .finish()
    }
}

impl Default for Cascade {
    fn default() -> Self {
        Cascade::standard(ProverConfig::default())
    }
}

impl Cascade {
    /// The standard prover order: syntactic checks, the ground SMT-lite
    /// solver, the BAPA and shape decision procedures, and finally the
    /// instantiating prover.
    pub fn standard(config: ProverConfig) -> Cascade {
        Cascade {
            provers: vec![
                Arc::new(Syntactic),
                Arc::new(GroundSmt),
                Arc::new(BapaProver),
                Arc::new(ShapeProver),
                Arc::new(InstSmt),
            ],
            config,
        }
    }

    /// A cascade with a custom prover list (used by the ablation benchmarks).
    pub fn with_provers(provers: Vec<Arc<dyn Prover>>, config: ProverConfig) -> Cascade {
        Cascade { provers, config }
    }

    /// The configured budgets.
    pub fn config(&self) -> &ProverConfig {
        &self.config
    }

    /// Names of the provers in dispatch order.
    pub fn prover_names(&self) -> Vec<&'static str> {
        self.provers.iter().map(|p| p.name()).collect()
    }

    /// Runs the cascade on a query.
    ///
    /// When the proof cache is enabled ([`ProverConfig::use_cache`]) the
    /// query's content fingerprint is consulted first: a hit replays the
    /// recorded `Proved` outcome (attributed to the prover that originally
    /// found it) without running any stage.
    pub fn prove(&self, query: &Query) -> ProverAnswer {
        self.prove_under(query, None)
    }

    /// Runs the cascade under an outer (module-level) wall-clock deadline.
    ///
    /// Every stage's cooperative [`Cancel`] deadline is clamped to
    /// `module_deadline`, so one sequent can never spend past the module
    /// budget; once the deadline has passed the query is not dispatched at
    /// all and the answer is `Skipped(DeadlineExceeded)`.  A stage that
    /// panics is contained ([`crate::containment`]) and quarantines the
    /// query as `Crashed` — later stages and retries are not attempted for
    /// a crashed query, so a fault never launders into a verdict.
    pub fn prove_under(&self, query: &Query, module_deadline: Option<Instant>) -> ProverAnswer {
        let start = Instant::now();
        let fingerprint = self
            .config
            .use_cache
            .then(|| ProofCache::fingerprint(query, &self.config, &self.prover_names()));
        if let Some(fp) = fingerprint {
            if let Some(prover) = ProofCache::global().lookup(fp) {
                return ProverAnswer {
                    outcome: Outcome::Proved,
                    prover: Some(prover),
                    duration: start.elapsed(),
                    stage_durations: Vec::new(),
                    cached: true,
                    fingerprint,
                    retries: 0,
                };
            }
        }
        if deadline_passed(module_deadline) {
            return ProverAnswer::settled(
                Outcome::Skipped(SkipReason::DeadlineExceeded),
                fingerprint,
                start,
            );
        }
        // Fault-injection decisions are keyed on the query's *content* (its
        // fingerprint when the cache computed one, its structural goal hash
        // otherwise), never on dispatch order — the same plan faults the same
        // sequents at `--jobs 1` and `--jobs N`.
        let fault_key = fingerprint.map_or_else(
            || Hashed::new(query.goal.clone()).hash_value(),
            |fp| fp.as_u128() as u64,
        );
        // Clear any exhaustion note left by an unrelated earlier query on
        // this worker thread before the sweep begins.
        let _ = crate::take_budget_exhausted();
        let mut stage_durations = Vec::with_capacity(self.provers.len());
        let mut sweep = self.run_stages(
            query,
            &self.config,
            module_deadline,
            fault_key,
            &mut stage_durations,
            "",
        );
        let mut retries = 0u32;
        if sweep == Sweep::Unknown && self.config.retry.enabled {
            let total_budget = Duration::from_millis(self.config.retry.max_total_ms);
            let mut exhausted = crate::take_budget_exhausted();
            for (index, multiplier) in self.config.retry.rungs().enumerate() {
                // Only an Unknown that ran out of budget (rather than
                // saturating its search space) can flip with a bigger budget;
                // a saturated Unknown would just redo the same search.
                if !exhausted || start.elapsed() >= total_budget || deadline_passed(module_deadline)
                {
                    break;
                }
                retries += 1;
                let escalated = self.config.escalated(multiplier, index);
                sweep = self.run_stages(
                    query,
                    &escalated,
                    module_deadline,
                    fault_key,
                    &mut stage_durations,
                    &format!("#retry{retries}"),
                );
                if sweep != Sweep::Unknown {
                    break;
                }
                exhausted = crate::take_budget_exhausted();
            }
        }
        let outcome = match sweep {
            Sweep::Proved(name) => {
                if let Some(fp) = fingerprint {
                    ProofCache::global().record(fp, name);
                }
                return ProverAnswer {
                    outcome: Outcome::Proved,
                    prover: Some(name.to_string()),
                    duration: start.elapsed(),
                    stage_durations,
                    cached: false,
                    fingerprint,
                    retries,
                };
            }
            Sweep::Unknown => Outcome::Unknown,
            Sweep::Crashed { stage, message } => Outcome::Crashed { stage, message },
            Sweep::DeadlineExceeded => Outcome::Skipped(SkipReason::DeadlineExceeded),
        };
        ProverAnswer {
            outcome,
            prover: None,
            duration: start.elapsed(),
            stage_durations,
            cached: false,
            fingerprint,
            retries,
        }
    }

    /// One full pass over the prover list with the given (possibly escalated)
    /// budgets.  Injected faults fire here: a delay sleeps before dispatch, a
    /// spurious Unknown skips the stage, and an injected panic is raised
    /// *inside* the containment boundary — the same boundary that catches
    /// organic prover panics.
    fn run_stages(
        &self,
        query: &Query,
        config: &ProverConfig,
        module_deadline: Option<Instant>,
        fault_key: u64,
        stage_durations: &mut Vec<(String, Duration)>,
        suffix: &str,
    ) -> Sweep {
        let plan = fault::active_plan();
        let timeout = Duration::from_millis(config.per_prover_timeout_ms);
        for prover in &self.provers {
            if deadline_passed(module_deadline) {
                return Sweep::DeadlineExceeded;
            }
            let name = prover.name();
            let stage_start = Instant::now();
            let label = if suffix.is_empty() {
                name.to_string()
            } else {
                format!("{name}{suffix}")
            };
            let mut inject_panic = false;
            if let Some(plan) = plan {
                let faults = plan.stage_faults(name, fault_key);
                if let Some(delay) = faults.delay {
                    std::thread::sleep(delay);
                }
                if faults.spurious_unknown {
                    stage_durations.push((label, stage_start.elapsed()));
                    continue;
                }
                inject_panic = faults.panic;
            }
            let result = containment::contain(|| {
                if inject_panic {
                    panic!("injected fault: {name} stage panicked");
                }
                run_with_timeout(prover.as_ref(), query, config, timeout, module_deadline)
            });
            stage_durations.push((label, stage_start.elapsed()));
            match result {
                Ok(Outcome::Proved) => return Sweep::Proved(name),
                Ok(_) => {}
                Err(message) => {
                    return Sweep::Crashed {
                        stage: name.to_string(),
                        message,
                    }
                }
            }
        }
        Sweep::Unknown
    }
}

/// Result of one pass over the prover list.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sweep {
    Proved(&'static str),
    Unknown,
    Crashed { stage: String, message: String },
    DeadlineExceeded,
}

fn deadline_passed(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d) || crate::drain::deadline_passed()
}

/// Number of prover invocations currently executing.  With cooperative
/// cancellation every prover runs on its caller's thread, so this is `0`
/// whenever no `Cascade::prove` call is in flight — the regression test for
/// the abandoned-worker leak asserts exactly that after a timed-out cascade.
pub fn live_workers() -> usize {
    LIVE_WORKERS.load(Ordering::Relaxed)
}

static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Runs one prover *on the calling thread* under a cooperative deadline
/// (mirroring the paper's "each prover runs with a timeout — if the prover
/// fails to prove the sequent within the timeout, Jahob terminates it and
/// moves on to the next prover").  The previous implementation spawned a
/// worker thread and abandoned it on timeout; the worker kept consuming CPU
/// until its search ran dry, which leaked threads under parallel load.
/// Provers now poll the [`Cancel`] token inside their loops and return
/// promptly once the deadline passes.
fn run_with_timeout(
    prover: &dyn Prover,
    query: &Query,
    config: &ProverConfig,
    timeout: Duration,
    outer_deadline: Option<Instant>,
) -> Outcome {
    // Drop guard rather than a straight-line decrement: a panicking prover
    // unwinds through here toward the containment boundary, and the counter
    // must not stay pinned (the live-worker regression test would hang).
    struct Live;
    impl Drop for Live {
        fn drop(&mut self) {
            LIVE_WORKERS.fetch_sub(1, Ordering::Relaxed);
        }
    }
    // Clamp to an active drain deadline as well: a SIGTERM arriving
    // mid-request must wind down running provers, not just gate the next
    // dispatch.
    let cancel = Cancel::with_timeout_under(timeout, crate::drain::clamp(outer_deadline));
    LIVE_WORKERS.fetch_add(1, Ordering::Relaxed);
    let _live = Live;
    prover.prove(query, config, &cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;
    use ipl_logic::{Labeled, Sort, SortEnv};

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        for v in ["i", "j", "size", "csize", "x"] {
            e.declare_var(v, Sort::Int);
        }
        for v in ["o", "a", "b", "first"] {
            e.declare_var(v, Sort::Obj);
        }
        e.declare_var("next", Sort::obj_field());
        e.declare_var("content", Sort::int_obj_set());
        e.declare_var("newcontent", Sort::int_obj_set());
        e
    }

    fn query(assumptions: &[&str], goal: &str) -> Query {
        Query::new(
            assumptions
                .iter()
                .enumerate()
                .map(|(i, s)| Labeled::new(format!("A{i}"), parse_form(s).unwrap()))
                .collect(),
            parse_form(goal).unwrap(),
            env(),
        )
    }

    #[test]
    fn cascade_dispatches_to_the_cheapest_sufficient_prover() {
        let cascade = Cascade::default();
        let answer = cascade.prove(&query(&["p"], "p"));
        assert_eq!(answer.outcome, Outcome::Proved);
        assert_eq!(answer.prover.as_deref(), Some("syntactic"));

        let answer = cascade.prove(&query(&["a = b", "b = first"], "a = first"));
        assert_eq!(answer.outcome, Outcome::Proved);
        assert_eq!(answer.prover.as_deref(), Some("smt-ground"));
    }

    #[test]
    fn cascade_uses_instantiation_for_quantified_assumptions() {
        let cascade = Cascade::default();
        let answer = cascade.prove(&query(
            &["forall n:int. 0 <= n --> interesting(n)", "0 <= x"],
            "interesting(x)",
        ));
        assert_eq!(answer.outcome, Outcome::Proved);
        assert_eq!(answer.prover.as_deref(), Some("smt-inst"));
    }

    #[test]
    fn cardinality_goals_close_inside_the_ground_tableau() {
        // With the theory combination on, the BAPA⇄ground exchange closes
        // the cardinality goal inside the ground stage — the standalone BAPA
        // prover is never reached.
        let cascade = Cascade::default();
        let answer = cascade.prove(&query(
            &[
                "~((i, o) in content)",
                "newcontent = content union {(i, o)}",
            ],
            "card(newcontent) = card(content) + 1",
        ));
        assert_eq!(answer.outcome, Outcome::Proved);
        assert_eq!(answer.prover.as_deref(), Some("smt-ground"));
    }

    #[test]
    fn cascade_uses_bapa_for_cardinality_goals_without_exchange() {
        // The ablation configuration falls back to the standalone BAPA stage.
        let cascade = Cascade::standard(ProverConfig::without_exchange());
        let answer = cascade.prove(&query(
            &[
                "~((i, o) in content)",
                "newcontent = content union {(i, o)}",
            ],
            "card(newcontent) = card(content) + 1",
        ));
        assert_eq!(answer.outcome, Outcome::Proved);
        assert_eq!(answer.prover.as_deref(), Some("bapa"));
    }

    #[test]
    fn cascade_uses_shape_prover_for_reachability() {
        let cascade = Cascade::default();
        let answer = cascade.prove(&query(
            &["reach(next, first, a)", "a.next = b"],
            "reach(next, first, b)",
        ));
        assert_eq!(answer.outcome, Outcome::Proved);
        assert_eq!(answer.prover.as_deref(), Some("shape"));
    }

    #[test]
    fn unprovable_queries_report_unknown() {
        let cascade = Cascade::standard(ProverConfig::quick());
        let answer = cascade.prove(&query(&["0 <= x"], "x < 0"));
        assert_eq!(answer.outcome, Outcome::Unknown);
        assert_eq!(answer.prover, None);
    }

    /// A prover that would spin forever if cancellation never fired: the
    /// regression scenario for the abandoned-worker leak.
    #[derive(Debug)]
    struct Spinner {
        observed_cancel: Arc<std::sync::atomic::AtomicBool>,
    }

    impl Prover for Spinner {
        fn name(&self) -> &'static str {
            "spinner"
        }

        fn prove(&self, _query: &Query, _config: &ProverConfig, cancel: &Cancel) -> Outcome {
            while !cancel.is_cancelled() {
                std::hint::spin_loop();
            }
            self.observed_cancel
                .store(true, std::sync::atomic::Ordering::SeqCst);
            Outcome::Unknown
        }
    }

    #[test]
    fn timed_out_cascade_leaves_no_live_workers() {
        let observed_cancel = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let cascade = Cascade::with_provers(
            vec![Arc::new(Spinner {
                observed_cancel: Arc::clone(&observed_cancel),
            })],
            ProverConfig {
                per_prover_timeout_ms: 30,
                use_cache: false,
                ..ProverConfig::default()
            },
        );
        let start = Instant::now();
        let answer = cascade.prove(&query(&["0 <= x"], "x < 0"));
        assert_eq!(answer.outcome, Outcome::Unknown);
        assert!(
            observed_cancel.load(std::sync::atomic::Ordering::SeqCst),
            "the spinner must observe cooperative cancellation"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "cancellation must fire near the 30 ms deadline"
        );
        // Other tests in this binary may be mid-cascade on their own threads,
        // so poll instead of asserting an instantaneous zero; an *abandoned*
        // worker never finishes and would keep the counter pinned.
        let deadline = Instant::now() + Duration::from_secs(30);
        while live_workers() != 0 {
            assert!(
                Instant::now() < deadline,
                "prover execution outlived the cascade call"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn proved_outcomes_are_replayed_from_the_cache() {
        let cascade = Cascade::default();
        let mut env = env();
        for v in ["zz_cache_a", "zz_cache_b", "zz_cache_c"] {
            env.declare_var(v, Sort::Obj);
        }
        let q = Query::new(
            vec![
                Labeled::new("A", parse_form("zz_cache_a = zz_cache_b").unwrap()),
                Labeled::new("B", parse_form("zz_cache_b = zz_cache_c").unwrap()),
            ],
            parse_form("zz_cache_a = zz_cache_c").unwrap(),
            env,
        );
        let first = cascade.prove(&q);
        assert_eq!(first.outcome, Outcome::Proved);
        assert!(!first.cached);
        let second = cascade.prove(&q);
        assert_eq!(second.outcome, Outcome::Proved);
        assert!(second.cached, "identical query must hit the proof cache");
        assert_eq!(
            second.prover, first.prover,
            "hit reports the original prover"
        );
    }

    #[test]
    fn cache_respects_differing_budgets() {
        let q = query(&["p"], "p");
        let default_answer = Cascade::default().prove(&q);
        assert_eq!(default_answer.outcome, Outcome::Proved);
        // A different configuration fingerprint must not see the entry.
        let quick = Cascade::standard(ProverConfig::quick());
        let quick_answer = quick.prove(&q);
        assert_eq!(quick_answer.outcome, Outcome::Proved);
        assert!(
            !quick_answer.cached,
            "budgets are part of the fingerprint; quick() must re-prove"
        );
    }

    #[test]
    fn prover_names_in_order() {
        assert_eq!(
            Cascade::default().prover_names(),
            vec!["syntactic", "smt-ground", "bapa", "shape", "smt-inst"]
        );
    }

    /// A prover that panics on every call: the organic-crash scenario.
    #[derive(Debug)]
    struct Exploder;

    impl Prover for Exploder {
        fn name(&self) -> &'static str {
            "exploder"
        }

        fn prove(&self, _query: &Query, _config: &ProverConfig, _cancel: &Cancel) -> Outcome {
            panic!("index out of bounds: simulated prover bug");
        }
    }

    #[test]
    fn panicking_stage_is_contained_as_crashed() {
        let cascade = Cascade::with_provers(
            vec![Arc::new(Exploder), Arc::new(Syntactic)],
            ProverConfig {
                use_cache: false,
                ..ProverConfig::default()
            },
        );
        let answer = cascade.prove(&query(&["p"], "p"));
        // The crash quarantines the query: the syntactic stage that would
        // have proved it is never consulted, so a fault can only degrade.
        assert_eq!(
            answer.outcome,
            Outcome::Crashed {
                stage: "exploder".to_string(),
                message: "index out of bounds: simulated prover bug".to_string(),
            }
        );
        assert_eq!(answer.prover, None);
        // The live-worker counter must survive the unwind (drop guard).
        let deadline = Instant::now() + Duration::from_secs(30);
        while live_workers() != 0 {
            assert!(Instant::now() < deadline, "panic leaked a live worker");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn expired_module_deadline_skips_without_dispatch() {
        let cascade = Cascade::standard(ProverConfig {
            use_cache: false,
            ..ProverConfig::default()
        });
        let past = Instant::now() - Duration::from_millis(1);
        let answer = cascade.prove_under(&query(&["p"], "p"), Some(past));
        assert_eq!(
            answer.outcome,
            Outcome::Skipped(crate::SkipReason::DeadlineExceeded)
        );
        assert!(
            answer.stage_durations.is_empty(),
            "no stage may run past the module deadline"
        );
    }

    /// Unknown-with-exhaustion until the configured number of calls, then
    /// proved: exercises the escalation ladder end to end.
    #[derive(Debug)]
    struct EventuallyProves {
        calls: AtomicUsize,
        proves_on_call: usize,
    }

    impl Prover for EventuallyProves {
        fn name(&self) -> &'static str {
            "eventually"
        }

        fn prove(&self, _query: &Query, _config: &ProverConfig, _cancel: &Cancel) -> Outcome {
            if self.calls.fetch_add(1, Ordering::SeqCst) + 1 >= self.proves_on_call {
                Outcome::Proved
            } else {
                crate::note_budget_exhausted();
                Outcome::Unknown
            }
        }
    }

    #[test]
    fn budget_exhausted_unknowns_climb_the_retry_ladder() {
        let cascade = Cascade::with_provers(
            vec![Arc::new(EventuallyProves {
                calls: AtomicUsize::new(0),
                proves_on_call: 3,
            })],
            ProverConfig {
                use_cache: false,
                retry: crate::RetryPolicy::enabled(),
                ..ProverConfig::default()
            },
        );
        let answer = cascade.prove(&query(&["0 <= x"], "x < 0"));
        assert_eq!(answer.outcome, Outcome::Proved);
        assert_eq!(answer.retries, 2);
        let labels: Vec<&str> = answer
            .stage_durations
            .iter()
            .map(|(name, _)| name.as_str())
            .collect();
        assert_eq!(
            labels,
            vec!["eventually", "eventually#retry1", "eventually#retry2"]
        );
    }

    /// A saturated Unknown (no exhaustion note) must not be retried even
    /// with the ladder enabled — re-running the same search is pure waste.
    #[derive(Debug)]
    struct Saturates {
        calls: Arc<AtomicUsize>,
    }

    impl Prover for Saturates {
        fn name(&self) -> &'static str {
            "saturates"
        }

        fn prove(&self, _query: &Query, _config: &ProverConfig, _cancel: &Cancel) -> Outcome {
            self.calls.fetch_add(1, Ordering::SeqCst);
            Outcome::Unknown
        }
    }

    #[test]
    fn saturated_unknowns_are_not_retried() {
        let calls = Arc::new(AtomicUsize::new(0));
        let cascade = Cascade::with_provers(
            vec![Arc::new(Saturates {
                calls: Arc::clone(&calls),
            })],
            ProverConfig {
                use_cache: false,
                retry: crate::RetryPolicy::enabled(),
                ..ProverConfig::default()
            },
        );
        let answer = cascade.prove(&query(&["0 <= x"], "x < 0"));
        assert_eq!(answer.outcome, Outcome::Unknown);
        assert_eq!(answer.retries, 0);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn retries_are_off_by_default() {
        assert!(!ProverConfig::default().retry.enabled);
        assert!(!ProverConfig::quick().retry.enabled);
    }
}
