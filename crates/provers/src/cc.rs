//! Incremental congruence closure over ground terms (the EUF theory solver).
//!
//! Terms are interned into integer-keyed nodes (head symbols are interned in a
//! symbol table, so no `format!`-string keys are ever built).  Equalities are
//! merged through a union-find with union-by-size; congruence
//! (`f(a) = f(b)` whenever `a = b`) is propagated with *use-lists* and a
//! *signature table* in the style of Downey–Sethi–Tarjan / Simplify, so only
//! the parents of a merged class are re-examined instead of every node.
//!
//! The engine is **backtrackable**: [`Congruence::push`] opens a scope and
//! [`Congruence::pop`] undoes every intern, merge, disequality and signature
//! update performed since, restoring classes exactly.  This lets the ground
//! tableau thread one persistent engine through its branch exploration
//! instead of rebuilding the closure at every leaf.
//!
//! Conflicts are detected eagerly while merging:
//!
//! * a disequality whose two sides end up in the same class,
//! * two distinct integer literals (or distinct boolean literals) in one
//!   class.

use ipl_logic::Form;
use std::collections::HashMap;

/// Identifier of an interned term.
pub type TermId = usize;

/// Identifier of an interned head symbol or opaque leaf.
type SymId = u32;

/// Head constructor of an application node.  Interpreted and uninterpreted
/// heads are distinguished only by the `Named` payload; congruence treats all
/// of them as free function symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Head {
    /// A named application `f(...)`.
    Named(SymId),
    FieldRead,
    FieldWrite,
    ArrayRead,
    ArrayWrite,
    Tuple,
    Add,
    Sub,
    Mul,
    Neg,
    Card,
    Union,
    Inter,
    Diff,
    FiniteSet,
    Elem,
    Subseteq,
    Eq,
    Lt,
    Le,
    Ite,
}

/// The shape of an interned node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    /// A named variable.
    Var(SymId),
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// The `null` reference.
    Null,
    /// The empty set.
    EmptySet,
    /// Remaining boolean structure or binders, interned structurally.
    Opaque(SymId),
    /// An application of a head to interned children.
    App(Head, Vec<TermId>),
}

/// A congruence signature: head plus the class representatives of the
/// children.
type Sig = (Head, Vec<TermId>);

/// One undoable step on the trail.
#[derive(Debug)]
enum Undo {
    /// `child` was linked under `survivor`; restore sizes, class data and the
    /// lengths of the survivor's use and disequality lists.
    Union {
        child: TermId,
        survivor: TermId,
        survivor_uses_len: usize,
        survivor_diseqs_len: usize,
        survivor_int: Option<i64>,
        survivor_bool: Option<bool>,
    },
    /// A use-list entry was appended to `root`.
    UsePush(TermId),
    /// A disequality partner was appended to `root`'s list.
    DiseqPush(TermId),
    /// A fresh signature was inserted.
    SigInsert(Sig),
}

/// Marks the state at a `push`.
#[derive(Debug)]
struct Scope {
    trail_len: usize,
    terms_len: usize,
    conflict: bool,
}

/// The incremental congruence-closure engine.
#[derive(Debug, Default)]
pub struct Congruence {
    /// Interned head / variable symbols.
    symbols: HashMap<String, SymId>,
    /// Opaque (boolean-structured) leaves, interned structurally.
    opaques: HashMap<Form, SymId>,
    /// Interned term keys, indexed by id.
    terms: Vec<Key>,
    /// Map from structural key to id.
    index: HashMap<Key, TermId>,
    /// Union-find parents (`parent[root] == root`).
    parent: Vec<TermId>,
    /// Class sizes, valid at roots.
    size: Vec<u32>,
    /// Known integer value of the class, valid at roots.
    class_int: Vec<Option<i64>>,
    /// Known boolean value of the class, valid at roots.
    class_bool: Vec<Option<bool>>,
    /// Application parents of each class, valid at roots.
    uses: Vec<Vec<TermId>>,
    /// Disequal partner terms of each class, valid at roots.
    diseqs: Vec<Vec<TermId>>,
    /// Signature table for congruence detection.
    sigs: HashMap<Sig, TermId>,
    /// Queued merges not yet propagated.
    pending: Vec<(TermId, TermId)>,
    /// Sticky conflict flag (until the enclosing scope is popped).
    conflict: bool,
    /// Undo trail.
    trail: Vec<Undo>,
    /// Open backtracking scopes.
    scopes: Vec<Scope>,
}

impl Congruence {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    fn symbol(&mut self, name: &str) -> SymId {
        if let Some(&id) = self.symbols.get(name) {
            return id;
        }
        let id = self.symbols.len() as SymId;
        self.symbols.insert(name.to_string(), id);
        id
    }

    fn opaque(&mut self, form: &Form) -> SymId {
        if let Some(&id) = self.opaques.get(form) {
            return id;
        }
        let id = self.opaques.len() as SymId;
        self.opaques.insert(form.clone(), id);
        id
    }

    /// Interns a term (and all its sub-terms), returning its id.
    pub fn intern(&mut self, term: &Form) -> TermId {
        let key = match term {
            Form::Var(name) => Key::Var(self.symbol(name)),
            Form::Int(value) => Key::Int(*value),
            Form::Bool(value) => Key::Bool(*value),
            Form::Null => Key::Null,
            Form::EmptySet => Key::EmptySet,
            Form::App(name, args) => {
                let head = Head::Named(self.symbol(name));
                let children = args.iter().map(|a| self.intern(a)).collect();
                Key::App(head, children)
            }
            Form::FieldRead(fun, arg) => {
                Key::App(Head::FieldRead, vec![self.intern(fun), self.intern(arg)])
            }
            Form::FieldWrite(base, at, value) => Key::App(
                Head::FieldWrite,
                vec![self.intern(base), self.intern(at), self.intern(value)],
            ),
            Form::ArrayRead(state, arr, idx) => Key::App(
                Head::ArrayRead,
                vec![self.intern(state), self.intern(arr), self.intern(idx)],
            ),
            Form::ArrayWrite(state, arr, idx, value) => Key::App(
                Head::ArrayWrite,
                vec![
                    self.intern(state),
                    self.intern(arr),
                    self.intern(idx),
                    self.intern(value),
                ],
            ),
            Form::Tuple(parts) => {
                Key::App(Head::Tuple, parts.iter().map(|p| self.intern(p)).collect())
            }
            Form::Add(a, b) => Key::App(Head::Add, vec![self.intern(a), self.intern(b)]),
            Form::Sub(a, b) => Key::App(Head::Sub, vec![self.intern(a), self.intern(b)]),
            Form::Mul(a, b) => Key::App(Head::Mul, vec![self.intern(a), self.intern(b)]),
            Form::Neg(a) => Key::App(Head::Neg, vec![self.intern(a)]),
            Form::Card(a) => Key::App(Head::Card, vec![self.intern(a)]),
            Form::Union(a, b) => Key::App(Head::Union, vec![self.intern(a), self.intern(b)]),
            Form::Inter(a, b) => Key::App(Head::Inter, vec![self.intern(a), self.intern(b)]),
            Form::Diff(a, b) => Key::App(Head::Diff, vec![self.intern(a), self.intern(b)]),
            Form::FiniteSet(parts) => Key::App(
                Head::FiniteSet,
                parts.iter().map(|p| self.intern(p)).collect(),
            ),
            Form::Elem(a, b) => Key::App(Head::Elem, vec![self.intern(a), self.intern(b)]),
            Form::Subseteq(a, b) => Key::App(Head::Subseteq, vec![self.intern(a), self.intern(b)]),
            Form::Eq(a, b) => Key::App(Head::Eq, vec![self.intern(a), self.intern(b)]),
            Form::Lt(a, b) => Key::App(Head::Lt, vec![self.intern(a), self.intern(b)]),
            Form::Le(a, b) => Key::App(Head::Le, vec![self.intern(a), self.intern(b)]),
            Form::Ite(c, t, e) => Key::App(
                Head::Ite,
                vec![self.intern(c), self.intern(t), self.intern(e)],
            ),
            // Remaining boolean structure or binders: opaque structural leaf.
            other => Key::Opaque(self.opaque(other)),
        };
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = self.terms.len();
        let int_value = match term {
            Form::Int(value) => Some(*value),
            _ => None,
        };
        let bool_value = match term {
            Form::Bool(value) => Some(*value),
            _ => None,
        };
        self.terms.push(key.clone());
        self.index.insert(key.clone(), id);
        self.parent.push(id);
        self.size.push(1);
        self.class_int.push(int_value);
        self.class_bool.push(bool_value);
        self.uses.push(Vec::new());
        self.diseqs.push(Vec::new());
        // Register the application in its children's use-lists and in the
        // signature table; a signature collision merges the new term into the
        // existing congruent class.
        if let Key::App(head, children) = key {
            let sig: Vec<TermId> = children.iter().map(|&c| self.find(c)).collect();
            for &root in sig.iter() {
                self.uses[root].push(id);
                self.trail.push(Undo::UsePush(root));
            }
            let sig = (head, sig);
            match self.sigs.get(&sig) {
                Some(&existing) => self.pending.push((id, existing)),
                None => {
                    self.sigs.insert(sig.clone(), id);
                    self.trail.push(Undo::SigInsert(sig));
                }
            }
        }
        id
    }

    /// The current representative of a term id (no path compression, so the
    /// structure stays cheap to undo; union-by-size bounds the depth).
    pub fn find(&self, mut id: TermId) -> TermId {
        while self.parent[id] != id {
            id = self.parent[id];
        }
        id
    }

    /// Asserts an equality between two terms.
    pub fn assert_eq(&mut self, a: &Form, b: &Form) {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.pending.push((ia, ib));
    }

    /// Asserts a disequality between two terms.
    pub fn assert_neq(&mut self, a: &Form, b: &Form) {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.close();
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            self.conflict = true;
            return;
        }
        self.diseqs[ra].push(ib);
        self.trail.push(Undo::DiseqPush(ra));
        self.diseqs[rb].push(ia);
        self.trail.push(Undo::DiseqPush(rb));
    }

    /// Returns `true` if the two terms are currently known equal.
    pub fn are_equal(&mut self, a: &Form, b: &Form) -> bool {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.close();
        self.find(ia) == self.find(ib)
    }

    /// Returns `true` if the two terms are currently known disequal (an
    /// asserted disequality separates their classes).
    pub fn are_disequal(&mut self, a: &Form, b: &Form) -> bool {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.close();
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            return false;
        }
        // Distinct known constants are disequal even without an assertion.
        if let (Some(x), Some(y)) = (self.class_int[ra], self.class_int[rb]) {
            if x != y {
                return true;
            }
        }
        let (small, large) = if self.diseqs[ra].len() <= self.diseqs[rb].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        for i in 0..self.diseqs[small].len() {
            let partner = self.diseqs[small][i];
            if self.find(partner) == large {
                return true;
            }
        }
        false
    }

    /// Propagates all pending merges and congruence to a fixpoint, detecting
    /// conflicts along the way.
    pub fn close(&mut self) {
        while let Some((a, b)) = self.pending.pop() {
            if self.conflict {
                self.pending.clear();
                return;
            }
            self.merge(a, b);
        }
    }

    /// Merges the classes of `a` and `b`, propagating congruence through the
    /// use-lists of the absorbed class.
    fn merge(&mut self, a: TermId, b: TermId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Union by size: absorb the smaller class.
        let (child, survivor) = if self.size[ra] <= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        // Disequality check: does any partner of the child live in the
        // survivor's class (or vice versa)?  Checking the smaller list keeps
        // this linear overall.
        let (small, large) = if self.diseqs[child].len() <= self.diseqs[survivor].len() {
            (child, survivor)
        } else {
            (survivor, child)
        };
        for i in 0..self.diseqs[small].len() {
            let partner = self.diseqs[small][i];
            let rp = self.find(partner);
            if rp == large || rp == small {
                self.conflict = true;
                return;
            }
        }
        self.trail.push(Undo::Union {
            child,
            survivor,
            survivor_uses_len: self.uses[survivor].len(),
            survivor_diseqs_len: self.diseqs[survivor].len(),
            survivor_int: self.class_int[survivor],
            survivor_bool: self.class_bool[survivor],
        });
        self.parent[child] = survivor;
        self.size[survivor] += self.size[child];
        // Merge known constants; a clash is a conflict.
        match (self.class_int[survivor], self.class_int[child]) {
            (Some(x), Some(y)) if x != y => {
                self.conflict = true;
                return;
            }
            (None, Some(y)) => self.class_int[survivor] = Some(y),
            _ => {}
        }
        match (self.class_bool[survivor], self.class_bool[child]) {
            (Some(x), Some(y)) if x != y => {
                self.conflict = true;
                return;
            }
            (None, Some(y)) => self.class_bool[survivor] = Some(y),
            _ => {}
        }
        // Move the child's disequalities and uses onto the survivor (by
        // appending copies; `pop` truncates the survivor's lists back).
        for i in 0..self.diseqs[child].len() {
            let partner = self.diseqs[child][i];
            self.diseqs[survivor].push(partner);
        }
        // Congruence: re-sign every application that had the child's class as
        // a child; a signature collision queues a merge.
        for i in 0..self.uses[child].len() {
            let parent_term = self.uses[child][i];
            self.uses[survivor].push(parent_term);
            if let Key::App(head, children) = &self.terms[parent_term] {
                let head = *head;
                let children = children.clone();
                let sig: Vec<TermId> = children.iter().map(|&c| self.find(c)).collect();
                let sig = (head, sig);
                match self.sigs.get(&sig) {
                    Some(&other) => {
                        if self.find(other) != self.find(parent_term) {
                            self.pending.push((other, parent_term));
                        }
                    }
                    None => {
                        self.sigs.insert(sig.clone(), parent_term);
                        self.trail.push(Undo::SigInsert(sig));
                    }
                }
            }
        }
    }

    /// Checks for conflicts.  Returns `true` if the asserted facts are
    /// inconsistent.
    pub fn has_conflict(&mut self) -> bool {
        self.close();
        self.conflict
    }

    /// The representative id of a term, interning it if necessary.
    pub fn class_of(&mut self, term: &Form) -> TermId {
        let id = self.intern(term);
        self.close();
        self.find(id)
    }

    /// Opens a backtracking scope.  All interning, merges and disequalities
    /// performed afterwards are undone by the matching [`Congruence::pop`].
    pub fn push(&mut self) {
        self.close();
        self.scopes.push(Scope {
            trail_len: self.trail.len(),
            terms_len: self.terms.len(),
            conflict: self.conflict,
        });
    }

    /// Closes the innermost scope, restoring classes and disequalities
    /// exactly as they were at the matching [`Congruence::push`].
    pub fn pop(&mut self) {
        let scope = self.scopes.pop().expect("pop without matching push");
        self.pending.clear();
        while self.trail.len() > scope.trail_len {
            match self.trail.pop().expect("len checked") {
                Undo::Union {
                    child,
                    survivor,
                    survivor_uses_len,
                    survivor_diseqs_len,
                    survivor_int,
                    survivor_bool,
                } => {
                    self.parent[child] = child;
                    self.size[survivor] -= self.size[child];
                    self.uses[survivor].truncate(survivor_uses_len);
                    self.diseqs[survivor].truncate(survivor_diseqs_len);
                    self.class_int[survivor] = survivor_int;
                    self.class_bool[survivor] = survivor_bool;
                }
                Undo::UsePush(root) => {
                    self.uses[root].pop();
                }
                Undo::DiseqPush(root) => {
                    self.diseqs[root].pop();
                }
                Undo::SigInsert(sig) => {
                    self.sigs.remove(&sig);
                }
            }
        }
        for id in scope.terms_len..self.terms.len() {
            let key = self.terms[id].clone();
            self.index.remove(&key);
        }
        self.terms.truncate(scope.terms_len);
        self.parent.truncate(scope.terms_len);
        self.size.truncate(scope.terms_len);
        self.class_int.truncate(scope.terms_len);
        self.class_bool.truncate(scope.terms_len);
        self.uses.truncate(scope.terms_len);
        self.diseqs.truncate(scope.terms_len);
        self.conflict = scope.conflict;
    }

    /// Number of interned terms (diagnostics and tests).
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Current scope depth (diagnostics and tests).
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;

    fn f(s: &str) -> Form {
        parse_form(s).unwrap()
    }

    #[test]
    fn transitivity_of_equality() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        cc.assert_eq(&f("b"), &f("c"));
        assert!(cc.are_equal(&f("a"), &f("c")));
        assert!(!cc.are_equal(&f("a"), &f("d")));
    }

    #[test]
    fn congruence_of_function_applications() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        assert!(cc.are_equal(&f("g(a)"), &f("g(b)")));
        assert!(cc.are_equal(&f("x.next"), &f("x.next")));
        assert!(!cc.are_equal(&f("g(a)"), &f("h(a)")));
    }

    #[test]
    fn field_reads_are_congruent_in_the_object() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("x"), &f("y"));
        assert!(cc.are_equal(&f("x.next"), &f("y.next")));
    }

    #[test]
    fn disequality_conflict() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        cc.assert_neq(&f("a"), &f("b"));
        assert!(cc.has_conflict());
    }

    #[test]
    fn disequality_then_merge_conflict() {
        let mut cc = Congruence::new();
        cc.assert_neq(&f("a"), &f("b"));
        assert!(!cc.has_conflict());
        cc.assert_eq(&f("a"), &f("b"));
        assert!(cc.has_conflict());
    }

    #[test]
    fn distinct_integer_literals_conflict() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("x"), &f("1"));
        cc.assert_eq(&f("x"), &f("2"));
        assert!(cc.has_conflict());
    }

    #[test]
    fn no_spurious_conflicts() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        cc.assert_neq(&f("a"), &f("c"));
        cc.assert_eq(&f("x"), &f("1"));
        cc.assert_eq(&f("y"), &f("2"));
        assert!(!cc.has_conflict());
    }

    #[test]
    fn derived_equality_via_congruence_chain() {
        let mut cc = Congruence::new();
        // a = b, f(a) = c, f(b) = d  =>  c = d
        cc.assert_eq(&f("a"), &f("b"));
        cc.assert_eq(&f("g(a)"), &f("c"));
        cc.assert_eq(&f("g(b)"), &f("d"));
        assert!(cc.are_equal(&f("c"), &f("d")));
    }

    #[test]
    fn push_pop_restores_classes_exactly() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        assert!(cc.are_equal(&f("g(a)"), &f("g(b)")));
        let terms_before = cc.term_count();

        cc.push();
        cc.assert_eq(&f("b"), &f("c"));
        cc.assert_eq(&f("g(c)"), &f("d"));
        assert!(cc.are_equal(&f("a"), &f("c")));
        assert!(cc.are_equal(&f("g(a)"), &f("d")));
        cc.pop();

        // The scope's merges and interned terms are gone...
        assert_eq!(cc.term_count(), terms_before);
        assert!(!cc.are_equal(&f("a"), &f("c")));
        assert!(!cc.are_equal(&f("g(a)"), &f("d")));
        // ...but the outer facts survive, including congruence.
        assert!(cc.are_equal(&f("a"), &f("b")));
        assert!(cc.are_equal(&f("g(a)"), &f("g(b)")));
    }

    #[test]
    fn push_pop_restores_disequalities_exactly() {
        let mut cc = Congruence::new();
        cc.assert_neq(&f("a"), &f("b"));
        cc.push();
        cc.assert_neq(&f("a"), &f("c"));
        cc.assert_eq(&f("a"), &f("c"));
        assert!(cc.has_conflict());
        cc.pop();
        // The inner disequality and the conflict are gone; the outer one is
        // still in force.
        assert!(!cc.has_conflict());
        cc.assert_eq(&f("a"), &f("c"));
        assert!(!cc.has_conflict());
        cc.assert_eq(&f("a"), &f("b"));
        assert!(cc.has_conflict());
    }

    #[test]
    fn nested_scopes_unwind_in_order() {
        let mut cc = Congruence::new();
        cc.push();
        cc.assert_eq(&f("a"), &f("b"));
        cc.push();
        cc.assert_eq(&f("b"), &f("c"));
        assert!(cc.are_equal(&f("a"), &f("c")));
        cc.pop();
        assert!(cc.are_equal(&f("a"), &f("b")));
        assert!(!cc.are_equal(&f("a"), &f("c")));
        cc.pop();
        assert!(!cc.are_equal(&f("a"), &f("b")));
        assert_eq!(cc.depth(), 0);
    }

    #[test]
    fn congruence_discovered_at_intern_time() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        cc.close();
        // g(a) is interned only now; its signature collides with g(b)'s.
        cc.assert_eq(&f("g(b)"), &f("c"));
        assert!(cc.are_equal(&f("g(a)"), &f("c")));
    }
}
