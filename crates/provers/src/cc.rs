//! Congruence closure over ground terms (the EUF theory solver).
//!
//! Terms are interned into a union-find structure; asserted equalities are
//! merged and congruence (`f(a) = f(b)` whenever `a = b`) is propagated to a
//! fixpoint.  Conflicts are reported for:
//!
//! * a disequality whose two sides end up in the same class,
//! * two distinct integer literals (or `null` and an integer) in one class,
//! * a predicate atom asserted both true and false (modulo congruence).

use ipl_logic::Form;
use std::collections::HashMap;

/// Identifier of an interned term.
pub type TermId = usize;

/// The congruence-closure engine.
#[derive(Debug, Default)]
pub struct Congruence {
    /// Interned terms, indexed by id.
    terms: Vec<Node>,
    /// Map from structural key to id.
    index: HashMap<Key, TermId>,
    /// Union-find parents.
    parent: Vec<TermId>,
    /// Pending merges.
    pending: Vec<(TermId, TermId)>,
    /// Asserted disequalities.
    disequalities: Vec<(TermId, TermId)>,
}

/// The shape of an interned node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    /// A leaf (variable, literal, `null`, ...) identified by its printed form.
    Leaf(String),
    /// An application of a head symbol to interned children.
    App(String, Vec<TermId>),
}

#[derive(Debug, Clone)]
struct Node {
    key: Key,
    /// For integer literals, the value (used for constant-conflict detection).
    int_value: Option<i64>,
}

impl Congruence {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term (and all its sub-terms), returning its id.
    pub fn intern(&mut self, term: &Form) -> TermId {
        let key = match term {
            Form::Var(name) => Key::Leaf(format!("var:{name}")),
            Form::Int(value) => Key::Leaf(format!("int:{value}")),
            Form::Bool(value) => Key::Leaf(format!("bool:{value}")),
            Form::Null => Key::Leaf("null".to_string()),
            Form::EmptySet => Key::Leaf("emptyset".to_string()),
            Form::App(name, args) => {
                let children = args.iter().map(|a| self.intern(a)).collect();
                Key::App(format!("app:{name}"), children)
            }
            Form::FieldRead(fun, arg) => {
                let children = vec![self.intern(fun), self.intern(arg)];
                Key::App("fieldread".to_string(), children)
            }
            Form::FieldWrite(base, at, value) => {
                let children = vec![self.intern(base), self.intern(at), self.intern(value)];
                Key::App("fieldwrite".to_string(), children)
            }
            Form::ArrayRead(state, arr, idx) => {
                let children = vec![self.intern(state), self.intern(arr), self.intern(idx)];
                Key::App("arrayread".to_string(), children)
            }
            Form::ArrayWrite(state, arr, idx, value) => {
                let children = vec![
                    self.intern(state),
                    self.intern(arr),
                    self.intern(idx),
                    self.intern(value),
                ];
                Key::App("arraywrite".to_string(), children)
            }
            Form::Tuple(parts) => {
                let children = parts.iter().map(|p| self.intern(p)).collect();
                Key::App("tuple".to_string(), children)
            }
            Form::Add(a, b) => Key::App("add".to_string(), vec![self.intern(a), self.intern(b)]),
            Form::Sub(a, b) => Key::App("sub".to_string(), vec![self.intern(a), self.intern(b)]),
            Form::Mul(a, b) => Key::App("mul".to_string(), vec![self.intern(a), self.intern(b)]),
            Form::Neg(a) => Key::App("neg".to_string(), vec![self.intern(a)]),
            Form::Card(a) => Key::App("card".to_string(), vec![self.intern(a)]),
            Form::Union(a, b) => {
                Key::App("union".to_string(), vec![self.intern(a), self.intern(b)])
            }
            Form::Inter(a, b) => {
                Key::App("inter".to_string(), vec![self.intern(a), self.intern(b)])
            }
            Form::Diff(a, b) => Key::App("diff".to_string(), vec![self.intern(a), self.intern(b)]),
            Form::FiniteSet(parts) => {
                let children = parts.iter().map(|p| self.intern(p)).collect();
                Key::App("finiteset".to_string(), children)
            }
            Form::Elem(a, b) => Key::App("elem".to_string(), vec![self.intern(a), self.intern(b)]),
            Form::Ite(c, t, e) => Key::App(
                "ite".to_string(),
                vec![self.intern(c), self.intern(t), self.intern(e)],
            ),
            // Remaining boolean structure or binders: opaque leaf by printed form.
            other => Key::Leaf(format!("opaque:{other}")),
        };
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = self.terms.len();
        let int_value = match term {
            Form::Int(value) => Some(*value),
            _ => None,
        };
        self.terms.push(Node {
            key: key.clone(),
            int_value,
        });
        self.index.insert(key, id);
        self.parent.push(id);
        id
    }

    /// The current representative of a term id.
    pub fn find(&mut self, id: TermId) -> TermId {
        if self.parent[id] == id {
            id
        } else {
            let root = self.find(self.parent[id]);
            self.parent[id] = root;
            root
        }
    }

    /// Asserts an equality between two terms.
    pub fn assert_eq(&mut self, a: &Form, b: &Form) {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.pending.push((ia, ib));
    }

    /// Asserts a disequality between two terms.
    pub fn assert_neq(&mut self, a: &Form, b: &Form) {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.disequalities.push((ia, ib));
    }

    /// Returns `true` if the two terms are currently known equal.
    pub fn are_equal(&mut self, a: &Form, b: &Form) -> bool {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.close();
        self.find(ia) == self.find(ib)
    }

    /// Propagates all pending merges and congruence to a fixpoint.
    pub fn close(&mut self) {
        loop {
            while let Some((a, b)) = self.pending.pop() {
                let (ra, rb) = (self.find(a), self.find(b));
                if ra != rb {
                    self.parent[ra] = rb;
                }
            }
            // Congruence: group application nodes by (head, representative children).
            let mut signature: HashMap<(String, Vec<TermId>), TermId> = HashMap::new();
            let mut new_merges = Vec::new();
            for id in 0..self.terms.len() {
                if let Key::App(head, children) = self.terms[id].key.clone() {
                    let sig: Vec<TermId> = children.iter().map(|&c| self.find(c)).collect();
                    let entry = (head, sig);
                    match signature.get(&entry) {
                        Some(&other) => {
                            if self.find(other) != self.find(id) {
                                new_merges.push((other, id));
                            }
                        }
                        None => {
                            signature.insert(entry, id);
                        }
                    }
                }
            }
            if new_merges.is_empty() {
                return;
            }
            self.pending.extend(new_merges);
        }
    }

    /// Checks for conflicts.  Returns `true` if the asserted facts are
    /// inconsistent.
    pub fn has_conflict(&mut self) -> bool {
        self.close();
        // Disequality conflicts.
        for (a, b) in self.disequalities.clone() {
            if self.find(a) == self.find(b) {
                return true;
            }
        }
        // Distinct integer literals merged into one class.
        let mut class_value: HashMap<TermId, i64> = HashMap::new();
        // Distinct boolean literals merged (can arise through ite reasoning).
        let mut class_bool: HashMap<TermId, bool> = HashMap::new();
        for id in 0..self.terms.len() {
            let root = self.find(id);
            if let Some(value) = self.terms[id].int_value {
                match class_value.get(&root) {
                    Some(&existing) if existing != value => return true,
                    _ => {
                        class_value.insert(root, value);
                    }
                }
            }
            if let Key::Leaf(text) = &self.terms[id].key {
                let flag = match text.as_str() {
                    "bool:true" => Some(true),
                    "bool:false" => Some(false),
                    _ => None,
                };
                if let Some(flag) = flag {
                    match class_bool.get(&root) {
                        Some(&existing) if existing != flag => return true,
                        _ => {
                            class_bool.insert(root, flag);
                        }
                    }
                }
            }
        }
        false
    }

    /// The representative id of a term, interning it if necessary.
    pub fn class_of(&mut self, term: &Form) -> TermId {
        let id = self.intern(term);
        self.close();
        self.find(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;

    fn f(s: &str) -> Form {
        parse_form(s).unwrap()
    }

    #[test]
    fn transitivity_of_equality() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        cc.assert_eq(&f("b"), &f("c"));
        assert!(cc.are_equal(&f("a"), &f("c")));
        assert!(!cc.are_equal(&f("a"), &f("d")));
    }

    #[test]
    fn congruence_of_function_applications() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        assert!(cc.are_equal(&f("g(a)"), &f("g(b)")));
        assert!(cc.are_equal(&f("x.next"), &f("x.next")));
        assert!(!cc.are_equal(&f("g(a)"), &f("h(a)")));
    }

    #[test]
    fn field_reads_are_congruent_in_the_object() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("x"), &f("y"));
        assert!(cc.are_equal(&f("x.next"), &f("y.next")));
    }

    #[test]
    fn disequality_conflict() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        cc.assert_neq(&f("a"), &f("b"));
        assert!(cc.has_conflict());
    }

    #[test]
    fn distinct_integer_literals_conflict() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("x"), &f("1"));
        cc.assert_eq(&f("x"), &f("2"));
        assert!(cc.has_conflict());
    }

    #[test]
    fn no_spurious_conflicts() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        cc.assert_neq(&f("a"), &f("c"));
        cc.assert_eq(&f("x"), &f("1"));
        cc.assert_eq(&f("y"), &f("2"));
        assert!(!cc.has_conflict());
    }

    #[test]
    fn derived_equality_via_congruence_chain() {
        let mut cc = Congruence::new();
        // a = b, f(a) = c, f(b) = d  =>  c = d
        cc.assert_eq(&f("a"), &f("b"));
        cc.assert_eq(&f("g(a)"), &f("c"));
        cc.assert_eq(&f("g(b)"), &f("d"));
        assert!(cc.are_equal(&f("c"), &f("d")));
    }
}
