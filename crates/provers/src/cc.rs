//! Incremental congruence closure over ground terms (the EUF theory solver).
//!
//! Terms are interned into integer-keyed nodes (head symbols are interned in a
//! symbol table, so no `format!`-string keys are ever built).  Equalities are
//! merged through a union-find with union-by-size; congruence
//! (`f(a) = f(b)` whenever `a = b`) is propagated with *use-lists* and a
//! *signature table* in the style of Downey–Sethi–Tarjan / Simplify, so only
//! the parents of a merged class are re-examined instead of every node.
//!
//! The engine is **backtrackable**: [`Congruence::push`] opens a scope and
//! [`Congruence::pop`] undoes every intern, merge, disequality and signature
//! update performed since, restoring classes exactly.  This lets the ground
//! tableau thread one persistent engine through its branch exploration
//! instead of rebuilding the closure at every leaf.
//!
//! The engine is also **explaining**: external assertions carry an opaque
//! [`Tag`] (the CDCL core passes its literal ids), every merge records a
//! *proof-forest* edge labelled with its reason (the tagged assertion, or
//! congruence), and [`Congruence::explain_terms`] recovers the set of tags
//! whose assertions entail a given equality — congruence edges recurse into
//! the child pairs, in the style of Nieuwenhuis–Oliveras.  This is what turns
//! a "branch closed" boolean into a learnable conflict clause.
//!
//! Conflicts are detected eagerly while merging:
//!
//! * a disequality whose two sides end up in the same class,
//! * two distinct integer literals (or distinct boolean literals) in one
//!   class.
//!
//! The cause of the first conflict is recorded so that
//! [`Congruence::explain_conflict`] can name the responsible assertions.

use ipl_logic::Form;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Identifier of an interned term.
pub type TermId = usize;

/// Opaque label attached to an external assertion (the CDCL core passes its
/// literal ids).  Explanations are sets of tags.
pub type Tag = u32;

/// Identifier of an interned head symbol or opaque leaf.
type SymId = u32;

/// Head constructor of an application node.  Interpreted and uninterpreted
/// heads are distinguished only by the `Named` payload; congruence treats all
/// of them as free function symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Head {
    /// A named application `f(...)`.
    Named(SymId),
    FieldRead,
    FieldWrite,
    ArrayRead,
    ArrayWrite,
    Tuple,
    Add,
    Sub,
    Mul,
    Neg,
    Card,
    Union,
    Inter,
    Diff,
    FiniteSet,
    Elem,
    Subseteq,
    Eq,
    Lt,
    Le,
    Ite,
}

/// The shape of an interned node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    /// A named variable.
    Var(SymId),
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// The `null` reference.
    Null,
    /// The empty set.
    EmptySet,
    /// Remaining boolean structure or binders, interned structurally.
    Opaque(SymId),
    /// An application of a head to interned children.
    App(Head, Vec<TermId>),
}

/// A congruence signature: head plus the class representatives of the
/// children.
type Sig = (Head, Vec<TermId>);

/// Why two terms were merged: the label of a proof-forest edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergeReason {
    /// An external assertion carrying an explanation tag.
    Assert(Tag),
    /// An external assertion without a tag (legacy callers): the merge is
    /// real but unexplainable, so explanations crossing it return `None`.
    Untagged,
    /// A congruence-derived merge of two applications; explained by
    /// recursively explaining the child pairs.
    Congruence,
}

/// The cause of the first detected conflict, for explanation.
#[derive(Debug, Clone, Copy)]
enum ConflictCause {
    /// The two sides of this asserted disequality were merged.
    Diseq(TermId, TermId, Option<Tag>),
    /// Two distinct constants (int or bool literals) ended up congruent.
    Constants(TermId, TermId),
}

/// An asserted disequality, recorded in the lists of both end roots.
#[derive(Debug, Clone, Copy)]
struct DiseqEntry {
    /// The partner term (the *other* end, from this root's point of view).
    other: TermId,
    /// The originally asserted pair, for explanation.
    a: TermId,
    b: TermId,
    /// The assertion's tag, if any.
    tag: Option<Tag>,
}

/// One undoable step on the trail.
#[derive(Debug)]
enum Undo {
    /// `child` was linked under `survivor`; restore sizes, class data and the
    /// lengths of the survivor's use and disequality lists.
    Union {
        child: TermId,
        survivor: TermId,
        survivor_uses_len: usize,
        survivor_diseqs_len: usize,
        survivor_int: Option<(i64, TermId)>,
        survivor_bool: Option<(bool, TermId)>,
    },
    /// A use-list entry was appended to `root`.
    UsePush(TermId),
    /// A disequality partner was appended to `root`'s list.
    DiseqPush(TermId),
    /// A fresh signature was inserted.
    SigInsert(Sig),
    /// A proof-forest edge of `node` was overwritten; restore it.
    Proof {
        node: TermId,
        parent: TermId,
        reason: Option<MergeReason>,
    },
}

/// Marks the state at a `push`.
#[derive(Debug)]
struct Scope {
    trail_len: usize,
    terms_len: usize,
    conflict: bool,
    cause: Option<ConflictCause>,
}

/// The incremental congruence-closure engine.
#[derive(Debug, Default)]
pub struct Congruence {
    /// Interned head / variable symbols.
    symbols: HashMap<String, SymId>,
    /// Opaque (boolean-structured) leaves, interned structurally.
    opaques: HashMap<Form, SymId>,
    /// Interned term keys, indexed by id.
    terms: Vec<Key>,
    /// Map from structural key to id.
    index: HashMap<Key, TermId>,
    /// Union-find parents (`parent[root] == root`).
    parent: Vec<TermId>,
    /// Class sizes, valid at roots.
    size: Vec<u32>,
    /// Known integer value of the class and the literal term carrying it,
    /// valid at roots.
    class_int: Vec<Option<(i64, TermId)>>,
    /// Known boolean value of the class and the literal term carrying it,
    /// valid at roots.
    class_bool: Vec<Option<(bool, TermId)>>,
    /// Application parents of each class, valid at roots.
    uses: Vec<Vec<TermId>>,
    /// Disequal partner terms of each class, valid at roots.
    diseqs: Vec<Vec<DiseqEntry>>,
    /// Proof forest: the explanation tree of each class (edge to parent).
    proof_parent: Vec<TermId>,
    /// Reason labelling the edge `node -> proof_parent[node]`.
    proof_reason: Vec<Option<MergeReason>>,
    /// Signature table for congruence detection.
    sigs: HashMap<Sig, TermId>,
    /// Queued merges not yet propagated, with their reasons.
    pending: Vec<(TermId, TermId, MergeReason)>,
    /// Sticky conflict flag (until the enclosing scope is popped).
    conflict: bool,
    /// Cause of the first conflict, for explanation.
    cause: Option<ConflictCause>,
    /// Monotone-per-scope state counter: bumped on every union and every
    /// `pop`, so callers can memoise derived results (the arithmetic stack
    /// keys its Fourier–Motzkin re-checks on this).
    generation: u64,
    /// Counter of disequality assertions, for the theory-propagation stamp:
    /// a new disequality can entail watched negative literals without any
    /// union, so `generation` alone would miss it.
    diseq_stamp: u64,
    /// Candidate index for theory propagation: equality atoms registered by
    /// the solver as `(lhs, rhs, literal tag)`.  Registered once per search,
    /// outside all scopes, and scanned by [`Congruence::implied_literals`].
    watches: Vec<(TermId, TermId, Tag)>,
    /// Undo trail.
    trail: Vec<Undo>,
    /// Open backtracking scopes.
    scopes: Vec<Scope>,
}

/// One entailed candidate atom, reported by [`Congruence::implied_literals`]:
/// the watched pair is now congruent (`equal`) or separated by a disequality
/// (`!equal`).  Everything needed to *lazily* explain the entailment through
/// the proof forest is carried along, so the CDCL core can resolve through
/// the propagation during first-UIP conflict analysis exactly like a clause
/// reason — without paying for an explanation when no conflict ever needs it.
#[derive(Debug, Clone, Copy)]
pub struct Implied {
    /// The tag the pair was registered with (the solver's literal code).
    pub tag: Tag,
    /// `true`: the sides are congruent; `false`: they are disequal.
    pub equal: bool,
    /// The registered sides.
    pub a: TermId,
    pub b: TermId,
    /// For a disequality: witnesses `(via_a, via_b, tag)` with `via_a` in
    /// `a`'s class and `via_b` in `b`'s class, such that `via_a != via_b` was
    /// asserted under `tag` (`None` tag: the witnesses are distinct integer
    /// literals, disequal without any assertion).
    pub via: Option<(TermId, TermId, Option<Tag>)>,
}

impl Congruence {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    fn symbol(&mut self, name: &str) -> SymId {
        if let Some(&id) = self.symbols.get(name) {
            return id;
        }
        let id = self.symbols.len() as SymId;
        self.symbols.insert(name.to_string(), id);
        id
    }

    fn opaque(&mut self, form: &Form) -> SymId {
        if let Some(&id) = self.opaques.get(form) {
            return id;
        }
        let id = self.opaques.len() as SymId;
        self.opaques.insert(form.clone(), id);
        id
    }

    /// Interns a term (and all its sub-terms), returning its id.
    pub fn intern(&mut self, term: &Form) -> TermId {
        let key = match term {
            Form::Var(name) => Key::Var(self.symbol(name)),
            Form::Int(value) => Key::Int(*value),
            Form::Bool(value) => Key::Bool(*value),
            Form::Null => Key::Null,
            Form::EmptySet => Key::EmptySet,
            Form::App(name, args) => {
                let head = Head::Named(self.symbol(name));
                let children = args.iter().map(|a| self.intern(a)).collect();
                Key::App(head, children)
            }
            Form::FieldRead(fun, arg) => {
                Key::App(Head::FieldRead, vec![self.intern(fun), self.intern(arg)])
            }
            Form::FieldWrite(base, at, value) => Key::App(
                Head::FieldWrite,
                vec![self.intern(base), self.intern(at), self.intern(value)],
            ),
            Form::ArrayRead(state, arr, idx) => Key::App(
                Head::ArrayRead,
                vec![self.intern(state), self.intern(arr), self.intern(idx)],
            ),
            Form::ArrayWrite(state, arr, idx, value) => Key::App(
                Head::ArrayWrite,
                vec![
                    self.intern(state),
                    self.intern(arr),
                    self.intern(idx),
                    self.intern(value),
                ],
            ),
            Form::Tuple(parts) => {
                Key::App(Head::Tuple, parts.iter().map(|p| self.intern(p)).collect())
            }
            Form::Add(a, b) => Key::App(Head::Add, vec![self.intern(a), self.intern(b)]),
            Form::Sub(a, b) => Key::App(Head::Sub, vec![self.intern(a), self.intern(b)]),
            Form::Mul(a, b) => Key::App(Head::Mul, vec![self.intern(a), self.intern(b)]),
            Form::Neg(a) => Key::App(Head::Neg, vec![self.intern(a)]),
            Form::Card(a) => Key::App(Head::Card, vec![self.intern(a)]),
            Form::Union(a, b) => Key::App(Head::Union, vec![self.intern(a), self.intern(b)]),
            Form::Inter(a, b) => Key::App(Head::Inter, vec![self.intern(a), self.intern(b)]),
            Form::Diff(a, b) => Key::App(Head::Diff, vec![self.intern(a), self.intern(b)]),
            Form::FiniteSet(parts) => Key::App(
                Head::FiniteSet,
                parts.iter().map(|p| self.intern(p)).collect(),
            ),
            Form::Elem(a, b) => Key::App(Head::Elem, vec![self.intern(a), self.intern(b)]),
            Form::Subseteq(a, b) => Key::App(Head::Subseteq, vec![self.intern(a), self.intern(b)]),
            Form::Eq(a, b) => Key::App(Head::Eq, vec![self.intern(a), self.intern(b)]),
            Form::Lt(a, b) => Key::App(Head::Lt, vec![self.intern(a), self.intern(b)]),
            Form::Le(a, b) => Key::App(Head::Le, vec![self.intern(a), self.intern(b)]),
            Form::Ite(c, t, e) => Key::App(
                Head::Ite,
                vec![self.intern(c), self.intern(t), self.intern(e)],
            ),
            // Remaining boolean structure or binders: opaque structural leaf.
            other => Key::Opaque(self.opaque(other)),
        };
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = self.terms.len();
        let int_value = match term {
            Form::Int(value) => Some((*value, id)),
            _ => None,
        };
        let bool_value = match term {
            Form::Bool(value) => Some((*value, id)),
            _ => None,
        };
        self.terms.push(key.clone());
        self.index.insert(key.clone(), id);
        self.parent.push(id);
        self.size.push(1);
        self.class_int.push(int_value);
        self.class_bool.push(bool_value);
        self.uses.push(Vec::new());
        self.diseqs.push(Vec::new());
        self.proof_parent.push(id);
        self.proof_reason.push(None);
        // Register the application in its children's use-lists and in the
        // signature table; a signature collision merges the new term into the
        // existing congruent class.
        if let Key::App(head, children) = key {
            let sig: Vec<TermId> = children.iter().map(|&c| self.find(c)).collect();
            for &root in sig.iter() {
                self.uses[root].push(id);
                self.trail.push(Undo::UsePush(root));
            }
            let sig = (head, sig);
            match self.sigs.get(&sig) {
                Some(&existing) => self.pending.push((id, existing, MergeReason::Congruence)),
                None => {
                    self.sigs.insert(sig.clone(), id);
                    self.trail.push(Undo::SigInsert(sig));
                }
            }
        }
        id
    }

    /// The current representative of a term id (no path compression, so the
    /// structure stays cheap to undo; union-by-size bounds the depth).
    pub fn find(&self, mut id: TermId) -> TermId {
        while self.parent[id] != id {
            id = self.parent[id];
        }
        id
    }

    /// Asserts an equality between two terms (unexplainable; see
    /// [`Congruence::assert_eq_tagged`]).
    pub fn assert_eq(&mut self, a: &Form, b: &Form) {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.pending.push((ia, ib, MergeReason::Untagged));
    }

    /// Asserts an equality between two terms, labelled with an explanation
    /// tag.  Conflicts and equalities entailed (transitively, congruently)
    /// by tagged assertions can be explained as sets of tags.
    pub fn assert_eq_tagged(&mut self, a: &Form, b: &Form, tag: Tag) {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.pending.push((ia, ib, MergeReason::Assert(tag)));
    }

    /// Asserts a disequality between two terms (unexplainable).
    pub fn assert_neq(&mut self, a: &Form, b: &Form) {
        self.assert_neq_inner(a, b, None);
    }

    /// Asserts a disequality between two terms, labelled with a tag.
    pub fn assert_neq_tagged(&mut self, a: &Form, b: &Form, tag: Tag) {
        self.assert_neq_inner(a, b, Some(tag));
    }

    fn assert_neq_inner(&mut self, a: &Form, b: &Form, tag: Option<Tag>) {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.close();
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            self.set_conflict(ConflictCause::Diseq(ia, ib, tag));
            return;
        }
        let entry = DiseqEntry {
            other: ib,
            a: ia,
            b: ib,
            tag,
        };
        self.diseqs[ra].push(entry);
        self.trail.push(Undo::DiseqPush(ra));
        let entry = DiseqEntry {
            other: ia,
            a: ia,
            b: ib,
            tag,
        };
        self.diseqs[rb].push(entry);
        self.trail.push(Undo::DiseqPush(rb));
        self.diseq_stamp += 1;
    }

    /// Returns `true` if the two terms are currently known equal.
    pub fn are_equal(&mut self, a: &Form, b: &Form) -> bool {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.close();
        self.find(ia) == self.find(ib)
    }

    /// Returns `true` if the two terms are currently known disequal (an
    /// asserted disequality separates their classes).
    pub fn are_disequal(&mut self, a: &Form, b: &Form) -> bool {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.close();
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            return false;
        }
        // Distinct known constants are disequal even without an assertion.
        if let (Some((x, _)), Some((y, _))) = (self.class_int[ra], self.class_int[rb]) {
            if x != y {
                return true;
            }
        }
        let (small, large) = if self.diseqs[ra].len() <= self.diseqs[rb].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        for i in 0..self.diseqs[small].len() {
            let partner = self.diseqs[small][i].other;
            if self.find(partner) == large {
                return true;
            }
        }
        false
    }

    /// Propagates all pending merges and congruence to a fixpoint, detecting
    /// conflicts along the way.
    pub fn close(&mut self) {
        while let Some((a, b, reason)) = self.pending.pop() {
            if self.conflict {
                self.pending.clear();
                return;
            }
            self.merge(a, b, reason);
        }
    }

    fn set_conflict(&mut self, cause: ConflictCause) {
        self.conflict = true;
        if self.cause.is_none() {
            self.cause = Some(cause);
        }
    }

    /// Makes `node` the root of its proof-forest tree by reversing the path
    /// above it, recording every overwritten edge on the undo trail.
    fn reroot_proof(&mut self, node: TermId) {
        let mut chain = vec![node];
        let mut cur = node;
        while self.proof_parent[cur] != cur {
            cur = self.proof_parent[cur];
            chain.push(cur);
        }
        // Flip every edge on the path: `chain[i] -> chain[i+1]` becomes
        // `chain[i+1] -> chain[i]`, keeping its reason (the reason explains
        // the equality of the two endpoints, which is symmetric).
        for i in (0..chain.len() - 1).rev() {
            let child = chain[i];
            let parent = chain[i + 1];
            self.trail.push(Undo::Proof {
                node: parent,
                parent: self.proof_parent[parent],
                reason: self.proof_reason[parent],
            });
            self.proof_parent[parent] = child;
            self.proof_reason[parent] = self.proof_reason[child];
        }
        self.trail.push(Undo::Proof {
            node,
            parent: self.proof_parent[node],
            reason: self.proof_reason[node],
        });
        self.proof_parent[node] = node;
        self.proof_reason[node] = None;
    }

    /// Merges the classes of `a` and `b`, propagating congruence through the
    /// use-lists of the absorbed class.
    fn merge(&mut self, a: TermId, b: TermId, reason: MergeReason) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Union by size: absorb the smaller class.
        let (child, survivor) = if self.size[ra] <= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.trail.push(Undo::Union {
            child,
            survivor,
            survivor_uses_len: self.uses[survivor].len(),
            survivor_diseqs_len: self.diseqs[survivor].len(),
            survivor_int: self.class_int[survivor],
            survivor_bool: self.class_bool[survivor],
        });
        self.parent[child] = survivor;
        self.size[survivor] += self.size[child];
        self.generation += 1;
        // Proof forest: add the edge `a -> b` labelled with the reason (the
        // *original* endpoints, not the roots — explanations recurse through
        // them).  `a` is rerooted first so its tree hangs off the new edge.
        self.reroot_proof(a);
        self.trail.push(Undo::Proof {
            node: a,
            parent: self.proof_parent[a],
            reason: self.proof_reason[a],
        });
        self.proof_parent[a] = b;
        self.proof_reason[a] = Some(reason);
        // Merge known constants; a clash is a conflict.
        match (self.class_int[survivor], self.class_int[child]) {
            (Some((x, tx)), Some((y, ty))) if x != y => {
                self.set_conflict(ConflictCause::Constants(tx, ty));
                return;
            }
            (None, Some(y)) => self.class_int[survivor] = Some(y),
            _ => {}
        }
        match (self.class_bool[survivor], self.class_bool[child]) {
            (Some((x, tx)), Some((y, ty))) if x != y => {
                self.set_conflict(ConflictCause::Constants(tx, ty));
                return;
            }
            (None, Some(y)) => self.class_bool[survivor] = Some(y),
            _ => {}
        }
        // Disequality check (after the union, so a violated entry explains
        // through the new edge): does any partner recorded on either side now
        // live in the merged class?  Checking the smaller list suffices — a
        // disequality between the two classes has a mirror entry in each.
        let (small, large) = if self.diseqs[child].len() <= self.diseqs[survivor].len() {
            (child, survivor)
        } else {
            (survivor, child)
        };
        for i in 0..self.diseqs[small].len() {
            let entry = self.diseqs[small][i];
            let rp = self.find(entry.other);
            if rp == large || rp == small {
                self.set_conflict(ConflictCause::Diseq(entry.a, entry.b, entry.tag));
                return;
            }
        }
        // Move the child's disequalities and uses onto the survivor (by
        // appending copies; `pop` truncates the survivor's lists back).
        for i in 0..self.diseqs[child].len() {
            let entry = self.diseqs[child][i];
            self.diseqs[survivor].push(entry);
        }
        // Congruence: re-sign every application that had the child's class as
        // a child; a signature collision queues a merge.
        for i in 0..self.uses[child].len() {
            let parent_term = self.uses[child][i];
            self.uses[survivor].push(parent_term);
            if let Key::App(head, children) = &self.terms[parent_term] {
                let head = *head;
                let children = children.clone();
                let sig: Vec<TermId> = children.iter().map(|&c| self.find(c)).collect();
                let sig = (head, sig);
                match self.sigs.get(&sig) {
                    Some(&other) => {
                        if self.find(other) != self.find(parent_term) {
                            self.pending
                                .push((other, parent_term, MergeReason::Congruence));
                        }
                    }
                    None => {
                        self.sigs.insert(sig.clone(), parent_term);
                        self.trail.push(Undo::SigInsert(sig));
                    }
                }
            }
        }
    }

    /// Checks for conflicts.  Returns `true` if the asserted facts are
    /// inconsistent.
    pub fn has_conflict(&mut self) -> bool {
        self.close();
        self.conflict
    }

    /// The representative id of a term, interning it if necessary.
    pub fn class_of(&mut self, term: &Form) -> TermId {
        let id = self.intern(term);
        self.close();
        self.find(id)
    }

    /// Explains why the two (currently equal) terms are equal: the set of
    /// tags of the external assertions entailing the equality, recursing
    /// through congruence edges.  Returns `None` when an untagged assertion
    /// is involved (or the terms are not actually equal).
    pub fn explain_terms(&self, a: TermId, b: TermId) -> Option<Vec<Tag>> {
        let mut tags: BTreeSet<Tag> = BTreeSet::new();
        let mut queue: Vec<(TermId, TermId)> = vec![(a, b)];
        let mut seen: HashSet<(TermId, TermId)> = HashSet::new();
        while let Some((a, b)) = queue.pop() {
            if a == b || !seen.insert((a.min(b), a.max(b))) {
                continue;
            }
            let apath = self.proof_path(a);
            let bpath = self.proof_path(b);
            if apath.last() != bpath.last() {
                return None; // different proof trees: not equal
            }
            // Trim the shared suffix down to the nearest common ancestor.
            let (mut i, mut j) = (apath.len(), bpath.len());
            while i > 1 && j > 1 && apath[i - 2] == bpath[j - 2] {
                i -= 1;
                j -= 1;
            }
            for path in [&apath[..i], &bpath[..j]] {
                for k in 0..path.len().saturating_sub(1) {
                    match self.proof_reason[path[k]] {
                        Some(MergeReason::Assert(tag)) => {
                            tags.insert(tag);
                        }
                        Some(MergeReason::Untagged) | None => return None,
                        Some(MergeReason::Congruence) => {
                            let (u, v) = (path[k], path[k + 1]);
                            let (Key::App(hu, cu), Key::App(hv, cv)) =
                                (&self.terms[u], &self.terms[v])
                            else {
                                return None;
                            };
                            if hu != hv || cu.len() != cv.len() {
                                return None;
                            }
                            for (&x, &y) in cu.iter().zip(cv.iter()) {
                                queue.push((x, y));
                            }
                        }
                    }
                }
            }
        }
        Some(tags.into_iter().collect())
    }

    /// The proof-forest path from a node to its tree root, inclusive.
    fn proof_path(&self, mut node: TermId) -> Vec<TermId> {
        let mut path = vec![node];
        while self.proof_parent[node] != node {
            node = self.proof_parent[node];
            path.push(node);
        }
        path
    }

    /// Explains the current conflict as a set of assertion tags, or `None`
    /// when no conflict is recorded or an untagged assertion is involved.
    pub fn explain_conflict(&self) -> Option<Vec<Tag>> {
        match self.cause? {
            ConflictCause::Diseq(a, b, tag) => {
                let mut tags = self.explain_terms(a, b)?;
                let tag = tag?;
                if !tags.contains(&tag) {
                    tags.push(tag);
                }
                Some(tags)
            }
            ConflictCause::Constants(a, b) => self.explain_terms(a, b),
        }
    }

    /// Monotone-per-scope state counter: bumped on every union and every
    /// [`Congruence::pop`].  Two equal generations within one scope imply the
    /// class structure has not changed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Monotone counter of disequality assertions.  Together with
    /// [`Congruence::generation`] it stamps every state change that can make
    /// a watched pair entailed, so the solver re-scans the candidate index
    /// only when something theory-visible actually happened.
    pub fn diseq_stamp(&self) -> u64 {
        self.diseq_stamp
    }

    /// Registers an equality atom for theory propagation: once the two sides
    /// become congruent (or provably disequal), [`Congruence::implied_literals`]
    /// reports `tag` with the appropriate polarity.  Must be called outside
    /// all scopes — the interned ids live as long as the engine, where ids
    /// interned under a scope are truncated by [`Congruence::pop`].
    pub fn watch_pair(&mut self, a: &Form, b: &Form, tag: Tag) -> (TermId, TermId) {
        debug_assert!(
            self.scopes.is_empty(),
            "watched pairs must be registered outside scopes"
        );
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.watches.push((ia, ib, tag));
        (ia, ib)
    }

    /// Appends every watched pair the current classes entail — congruent
    /// sides or an asserted/constant disequality between their classes — to
    /// `out`, with the witnesses a lazy proof-forest explanation needs.  The
    /// caller filters by its own assignment; pairs whose truth is not yet
    /// determined by the classes are simply absent.
    pub fn implied_literals(&mut self, out: &mut Vec<Implied>) {
        self.close();
        if self.conflict {
            return; // the conflict path explains itself
        }
        for w in 0..self.watches.len() {
            let (a, b, tag) = self.watches[w];
            let (ra, rb) = (self.find(a), self.find(b));
            if ra == rb {
                out.push(Implied {
                    tag,
                    equal: true,
                    a,
                    b,
                    via: None,
                });
                continue;
            }
            // Distinct known integer constants are disequal without any
            // asserted disequality.
            if let (Some((x, tx)), Some((y, ty))) = (self.class_int[ra], self.class_int[rb]) {
                if x != y {
                    out.push(Implied {
                        tag,
                        equal: false,
                        a,
                        b,
                        via: Some((tx, ty, None)),
                    });
                    continue;
                }
            }
            // An asserted disequality between the two classes?  Scanning the
            // smaller list suffices: every disequality has an entry at each
            // end root.
            let (small, large) = if self.diseqs[ra].len() <= self.diseqs[rb].len() {
                (ra, rb)
            } else {
                (rb, ra)
            };
            for i in 0..self.diseqs[small].len() {
                let entry = self.diseqs[small][i];
                if self.find(entry.other) != large {
                    continue;
                }
                // `entry.other` lives in `large`'s class, its partner in
                // `small`'s; orient the witnesses onto the watched sides.
                let partner = if entry.other == entry.b {
                    entry.a
                } else {
                    entry.b
                };
                let (via_a, via_b) = if small == ra {
                    (partner, entry.other)
                } else {
                    (entry.other, partner)
                };
                out.push(Implied {
                    tag,
                    equal: false,
                    a,
                    b,
                    via: Some((via_a, via_b, entry.tag)),
                });
                break;
            }
        }
    }

    /// Opens a backtracking scope.  All interning, merges and disequalities
    /// performed afterwards are undone by the matching [`Congruence::pop`].
    pub fn push(&mut self) {
        self.close();
        self.scopes.push(Scope {
            trail_len: self.trail.len(),
            terms_len: self.terms.len(),
            conflict: self.conflict,
            cause: self.cause,
        });
    }

    /// Closes the innermost scope, restoring classes and disequalities
    /// exactly as they were at the matching [`Congruence::push`].
    pub fn pop(&mut self) {
        let scope = self.scopes.pop().expect("pop without matching push");
        self.pending.clear();
        self.generation += 1;
        while self.trail.len() > scope.trail_len {
            match self.trail.pop().expect("len checked") {
                Undo::Union {
                    child,
                    survivor,
                    survivor_uses_len,
                    survivor_diseqs_len,
                    survivor_int,
                    survivor_bool,
                } => {
                    self.parent[child] = child;
                    self.size[survivor] -= self.size[child];
                    self.uses[survivor].truncate(survivor_uses_len);
                    self.diseqs[survivor].truncate(survivor_diseqs_len);
                    self.class_int[survivor] = survivor_int;
                    self.class_bool[survivor] = survivor_bool;
                }
                Undo::UsePush(root) => {
                    self.uses[root].pop();
                }
                Undo::DiseqPush(root) => {
                    self.diseqs[root].pop();
                }
                Undo::SigInsert(sig) => {
                    self.sigs.remove(&sig);
                }
                Undo::Proof {
                    node,
                    parent,
                    reason,
                } => {
                    self.proof_parent[node] = parent;
                    self.proof_reason[node] = reason;
                }
            }
        }
        for id in scope.terms_len..self.terms.len() {
            let key = self.terms[id].clone();
            self.index.remove(&key);
        }
        self.terms.truncate(scope.terms_len);
        self.parent.truncate(scope.terms_len);
        self.size.truncate(scope.terms_len);
        self.class_int.truncate(scope.terms_len);
        self.class_bool.truncate(scope.terms_len);
        self.uses.truncate(scope.terms_len);
        self.diseqs.truncate(scope.terms_len);
        self.proof_parent.truncate(scope.terms_len);
        self.proof_reason.truncate(scope.terms_len);
        self.conflict = scope.conflict;
        self.cause = scope.cause;
    }

    /// Pops scopes until the depth is `depth` (a no-op when already there).
    /// The backjumping CDCL core unwinds several decision levels at once.
    pub fn pop_to(&mut self, depth: usize) {
        while self.scopes.len() > depth {
            self.pop();
        }
    }

    /// Number of interned terms (diagnostics and tests).
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Current scope depth (diagnostics and tests).
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;

    fn f(s: &str) -> Form {
        parse_form(s).unwrap()
    }

    #[test]
    fn transitivity_of_equality() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        cc.assert_eq(&f("b"), &f("c"));
        assert!(cc.are_equal(&f("a"), &f("c")));
        assert!(!cc.are_equal(&f("a"), &f("d")));
    }

    #[test]
    fn congruence_of_function_applications() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        assert!(cc.are_equal(&f("g(a)"), &f("g(b)")));
        assert!(cc.are_equal(&f("x.next"), &f("x.next")));
        assert!(!cc.are_equal(&f("g(a)"), &f("h(a)")));
    }

    #[test]
    fn field_reads_are_congruent_in_the_object() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("x"), &f("y"));
        assert!(cc.are_equal(&f("x.next"), &f("y.next")));
    }

    #[test]
    fn disequality_conflict() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        cc.assert_neq(&f("a"), &f("b"));
        assert!(cc.has_conflict());
    }

    #[test]
    fn disequality_then_merge_conflict() {
        let mut cc = Congruence::new();
        cc.assert_neq(&f("a"), &f("b"));
        assert!(!cc.has_conflict());
        cc.assert_eq(&f("a"), &f("b"));
        assert!(cc.has_conflict());
    }

    #[test]
    fn distinct_integer_literals_conflict() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("x"), &f("1"));
        cc.assert_eq(&f("x"), &f("2"));
        assert!(cc.has_conflict());
    }

    #[test]
    fn no_spurious_conflicts() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        cc.assert_neq(&f("a"), &f("c"));
        cc.assert_eq(&f("x"), &f("1"));
        cc.assert_eq(&f("y"), &f("2"));
        assert!(!cc.has_conflict());
    }

    #[test]
    fn derived_equality_via_congruence_chain() {
        let mut cc = Congruence::new();
        // a = b, f(a) = c, f(b) = d  =>  c = d
        cc.assert_eq(&f("a"), &f("b"));
        cc.assert_eq(&f("g(a)"), &f("c"));
        cc.assert_eq(&f("g(b)"), &f("d"));
        assert!(cc.are_equal(&f("c"), &f("d")));
    }

    #[test]
    fn push_pop_restores_classes_exactly() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        assert!(cc.are_equal(&f("g(a)"), &f("g(b)")));
        let terms_before = cc.term_count();

        cc.push();
        cc.assert_eq(&f("b"), &f("c"));
        cc.assert_eq(&f("g(c)"), &f("d"));
        assert!(cc.are_equal(&f("a"), &f("c")));
        assert!(cc.are_equal(&f("g(a)"), &f("d")));
        cc.pop();

        // The scope's merges and interned terms are gone...
        assert_eq!(cc.term_count(), terms_before);
        assert!(!cc.are_equal(&f("a"), &f("c")));
        assert!(!cc.are_equal(&f("g(a)"), &f("d")));
        // ...but the outer facts survive, including congruence.
        assert!(cc.are_equal(&f("a"), &f("b")));
        assert!(cc.are_equal(&f("g(a)"), &f("g(b)")));
    }

    #[test]
    fn push_pop_restores_disequalities_exactly() {
        let mut cc = Congruence::new();
        cc.assert_neq(&f("a"), &f("b"));
        cc.push();
        cc.assert_neq(&f("a"), &f("c"));
        cc.assert_eq(&f("a"), &f("c"));
        assert!(cc.has_conflict());
        cc.pop();
        // The inner disequality and the conflict are gone; the outer one is
        // still in force.
        assert!(!cc.has_conflict());
        cc.assert_eq(&f("a"), &f("c"));
        assert!(!cc.has_conflict());
        cc.assert_eq(&f("a"), &f("b"));
        assert!(cc.has_conflict());
    }

    #[test]
    fn nested_scopes_unwind_in_order() {
        let mut cc = Congruence::new();
        cc.push();
        cc.assert_eq(&f("a"), &f("b"));
        cc.push();
        cc.assert_eq(&f("b"), &f("c"));
        assert!(cc.are_equal(&f("a"), &f("c")));
        cc.pop();
        assert!(cc.are_equal(&f("a"), &f("b")));
        assert!(!cc.are_equal(&f("a"), &f("c")));
        cc.pop();
        assert!(!cc.are_equal(&f("a"), &f("b")));
        assert_eq!(cc.depth(), 0);
    }

    #[test]
    fn congruence_discovered_at_intern_time() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        cc.close();
        // g(a) is interned only now; its signature collides with g(b)'s.
        cc.assert_eq(&f("g(b)"), &f("c"));
        assert!(cc.are_equal(&f("g(a)"), &f("c")));
    }

    // ----- explanations -----

    #[test]
    fn explains_a_transitive_chain() {
        let mut cc = Congruence::new();
        cc.assert_eq_tagged(&f("a"), &f("b"), 1);
        cc.assert_eq_tagged(&f("b"), &f("c"), 2);
        cc.assert_eq_tagged(&f("x"), &f("y"), 3); // unrelated
        assert!(cc.are_equal(&f("a"), &f("c")));
        let (ia, ic) = (cc.intern(&f("a")), cc.intern(&f("c")));
        let tags = cc.explain_terms(ia, ic).unwrap();
        assert_eq!(tags, vec![1, 2], "only the chain's assertions appear");
    }

    #[test]
    fn explains_through_congruence_edges() {
        let mut cc = Congruence::new();
        cc.assert_eq_tagged(&f("a"), &f("b"), 1);
        cc.assert_eq_tagged(&f("g(a)"), &f("c"), 2);
        cc.assert_eq_tagged(&f("g(b)"), &f("d"), 3);
        assert!(cc.are_equal(&f("c"), &f("d")));
        let (ic, id) = (cc.intern(&f("c")), cc.intern(&f("d")));
        let tags = cc.explain_terms(ic, id).unwrap();
        assert_eq!(tags, vec![1, 2, 3], "congruence recurses into a = b");
    }

    #[test]
    fn explains_disequality_conflicts() {
        let mut cc = Congruence::new();
        cc.assert_neq_tagged(&f("a"), &f("c"), 7);
        cc.assert_eq_tagged(&f("a"), &f("b"), 8);
        cc.assert_eq_tagged(&f("b"), &f("c"), 9);
        assert!(cc.has_conflict());
        let mut tags = cc.explain_conflict().unwrap();
        tags.sort_unstable();
        assert_eq!(tags, vec![7, 8, 9]);
    }

    #[test]
    fn explains_constant_clashes() {
        let mut cc = Congruence::new();
        cc.assert_eq_tagged(&f("x"), &f("1"), 4);
        cc.assert_eq_tagged(&f("y"), &f("2"), 5);
        cc.assert_eq_tagged(&f("x"), &f("y"), 6);
        assert!(cc.has_conflict());
        let mut tags = cc.explain_conflict().unwrap();
        tags.sort_unstable();
        assert_eq!(tags, vec![4, 5, 6]);
    }

    #[test]
    fn untagged_assertions_make_explanations_unavailable() {
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b")); // untagged
        cc.assert_eq_tagged(&f("b"), &f("c"), 2);
        assert!(cc.are_equal(&f("a"), &f("c")));
        let (ia, ic) = (cc.intern(&f("a")), cc.intern(&f("c")));
        assert_eq!(cc.explain_terms(ia, ic), None);
        // But a chain not crossing the untagged edge still explains.
        let (ib, ic) = (cc.intern(&f("b")), cc.intern(&f("c")));
        assert_eq!(cc.explain_terms(ib, ic), Some(vec![2]));
    }

    #[test]
    fn explanations_survive_push_pop() {
        let mut cc = Congruence::new();
        cc.assert_eq_tagged(&f("a"), &f("b"), 1);
        cc.close();
        cc.push();
        cc.assert_eq_tagged(&f("b"), &f("c"), 2);
        let (ia, ic) = (cc.intern(&f("a")), cc.intern(&f("c")));
        cc.close();
        assert_eq!(cc.explain_terms(ia, ic), Some(vec![1, 2]));
        cc.pop();
        let (ia, ib) = (cc.intern(&f("a")), cc.intern(&f("b")));
        assert_eq!(cc.explain_terms(ia, ib), Some(vec![1]));
        // The popped scope's edge is gone: a and c are no longer connected.
        let ic = cc.intern(&f("c"));
        cc.close();
        assert_eq!(cc.explain_terms(ia, ic), None);
    }

    #[test]
    fn generation_advances_on_merge_and_pop() {
        let mut cc = Congruence::new();
        let g0 = cc.generation();
        cc.assert_eq(&f("a"), &f("b"));
        cc.close();
        let g1 = cc.generation();
        assert!(g1 > g0, "a union bumps the generation");
        cc.push();
        cc.assert_eq(&f("b"), &f("c"));
        cc.close();
        cc.pop();
        assert!(cc.generation() > g1, "a pop bumps the generation");
    }

    #[test]
    fn pop_to_unwinds_multiple_scopes() {
        let mut cc = Congruence::new();
        cc.push();
        cc.assert_eq(&f("a"), &f("b"));
        cc.push();
        cc.assert_eq(&f("b"), &f("c"));
        cc.push();
        cc.assert_eq(&f("c"), &f("d"));
        assert_eq!(cc.depth(), 3);
        cc.pop_to(1);
        assert_eq!(cc.depth(), 1);
        assert!(cc.are_equal(&f("a"), &f("b")));
        assert!(!cc.are_equal(&f("b"), &f("c")));
        cc.pop_to(0);
        assert!(!cc.are_equal(&f("a"), &f("b")));
    }

    fn implied_of(cc: &mut Congruence) -> Vec<Implied> {
        let mut out = Vec::new();
        cc.implied_literals(&mut out);
        out
    }

    #[test]
    fn watched_pair_implied_by_a_merge_chain_with_explanation() {
        let mut cc = Congruence::new();
        let (ia, ib) = cc.watch_pair(&f("a"), &f("c"), 40);
        assert!(implied_of(&mut cc).is_empty());
        cc.push();
        cc.assert_eq_tagged(&f("a"), &f("b"), 10);
        cc.assert_eq_tagged(&f("b"), &f("c"), 12);
        let implied = implied_of(&mut cc);
        assert_eq!(implied.len(), 1);
        assert!(implied[0].equal);
        assert_eq!(implied[0].tag, 40);
        assert_eq!(cc.explain_terms(ia, ib), Some(vec![10, 12]));
        cc.pop();
        assert!(
            implied_of(&mut cc).is_empty(),
            "the implication is undone with the scope"
        );
    }

    #[test]
    fn watched_pair_implied_by_congruence() {
        let mut cc = Congruence::new();
        let (ia, ib) = cc.watch_pair(&f("g(a)"), &f("g(b)"), 6);
        cc.push();
        cc.assert_eq_tagged(&f("a"), &f("b"), 8);
        let implied = implied_of(&mut cc);
        assert_eq!(implied.len(), 1);
        assert!(implied[0].equal);
        assert_eq!(cc.explain_terms(ia, ib), Some(vec![8]));
    }

    #[test]
    fn watched_pair_implied_disequal_through_an_asserted_diseq() {
        let mut cc = Congruence::new();
        let (ia, ib) = cc.watch_pair(&f("a"), &f("b"), 20);
        cc.push();
        cc.assert_eq_tagged(&f("a"), &f("c"), 2);
        cc.assert_eq_tagged(&f("b"), &f("d"), 4);
        cc.assert_neq_tagged(&f("c"), &f("d"), 6);
        let implied = implied_of(&mut cc);
        assert_eq!(implied.len(), 1);
        assert!(!implied[0].equal);
        let (via_a, via_b, tag) = implied[0].via.expect("asserted witness");
        assert_eq!(tag, Some(6));
        // The witnesses are oriented onto the watched sides, so the lazy
        // explanation `a ~ via_a`, `b ~ via_b` succeeds.
        assert_eq!(cc.explain_terms(ia, via_a), Some(vec![2]));
        assert_eq!(cc.explain_terms(ib, via_b), Some(vec![4]));
    }

    #[test]
    fn watched_pair_implied_disequal_through_distinct_constants() {
        let mut cc = Congruence::new();
        let (ia, ib) = cc.watch_pair(&f("x"), &f("y"), 30);
        cc.push();
        cc.assert_eq_tagged(&f("x"), &f("1"), 3);
        cc.assert_eq_tagged(&f("y"), &f("2"), 5);
        let implied = implied_of(&mut cc);
        assert_eq!(implied.len(), 1);
        assert!(!implied[0].equal);
        let (via_a, via_b, tag) = implied[0].via.expect("constant witness");
        assert_eq!(tag, None);
        assert_eq!(cc.explain_terms(ia, via_a), Some(vec![3]));
        assert_eq!(cc.explain_terms(ib, via_b), Some(vec![5]));
    }

    #[test]
    fn diseq_stamp_advances_on_disequality_assertions() {
        let mut cc = Congruence::new();
        let s0 = cc.diseq_stamp();
        cc.assert_eq(&f("a"), &f("b"));
        cc.close();
        assert_eq!(cc.diseq_stamp(), s0, "unions leave the diseq stamp alone");
        cc.assert_neq(&f("a"), &f("c"));
        assert!(cc.diseq_stamp() > s0);
    }

    #[test]
    fn implied_literals_reports_nothing_under_a_conflict() {
        let mut cc = Congruence::new();
        cc.watch_pair(&f("a"), &f("b"), 14);
        cc.push();
        cc.assert_eq_tagged(&f("a"), &f("b"), 2);
        cc.assert_neq_tagged(&f("a"), &f("b"), 4);
        assert!(cc.has_conflict());
        assert!(implied_of(&mut cc).is_empty());
    }
}
