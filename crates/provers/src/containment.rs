//! Panic containment for the fault-isolated verification core.
//!
//! A single panicking prover stage used to take the whole `verify_module`
//! run down with it (and, under the parallel driver, to kill one worker
//! thread so `--jobs N` silently degraded to `N-1`).  [`contain`] wraps a
//! dispatch in [`std::panic::catch_unwind`] behind an
//! [`AssertUnwindSafe`](std::panic::AssertUnwindSafe) boundary and converts
//! an escaped panic into an error message, so the caller can quarantine the
//! one faulted sequent and let the rest of the run complete.
//!
//! The boundary is sound to assert: every solver builds its search state
//! fresh per call (the `Solver`, congruence closure, theory stacks all live
//! inside `refute`), and the process-global structures a panic could leave
//! behind — the intern table, the proof cache — are guarded by their own
//! locks.  A panic while *holding* one of those locks poisons it, which
//! surfaces as further contained `Crashed` answers, never as a wrong verdict.
//!
//! While a contained section is on the stack, the default panic hook's
//! backtrace spew is suppressed (a chaos run injects thousands of panics on
//! purpose); panics outside any contained section still reach the previous
//! hook untouched.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    /// Depth of nested contained sections on this thread.
    static CONTAINED: Cell<usize> = const { Cell::new(0) };
}

static INSTALL_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that stays silent for panics
/// unwinding toward a [`contain`] boundary and delegates every other panic to
/// the previously installed hook.
fn install_quiet_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if CONTAINED.with(Cell::get) == 0 {
                previous(info);
            }
        }));
    });
}

/// Runs `f`, converting a panic into `Err(message)` instead of unwinding the
/// caller.  The message is the panic payload when it was a string (the usual
/// `panic!("...")` case), or a placeholder otherwise.
pub fn contain<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_hook();
    CONTAINED.with(|depth| depth.set(depth.get() + 1));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CONTAINED.with(|depth| depth.set(depth.get() - 1));
    result.map_err(|payload| {
        if let Some(message) = payload.downcast_ref::<&'static str>() {
            (*message).to_string()
        } else if let Some(message) = payload.downcast_ref::<String>() {
            message.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_pass_through() {
        assert_eq!(contain(|| 7), Ok(7));
    }

    #[test]
    fn panics_become_messages() {
        assert_eq!(
            contain(|| -> u32 { panic!("injected fault") }),
            Err("injected fault".to_string())
        );
        let msg = format!("formatted {}", 42);
        assert_eq!(
            contain(|| -> u32 { panic!("{msg}") }),
            Err("formatted 42".to_string())
        );
    }

    #[test]
    fn nested_containment_unwinds_to_the_inner_boundary() {
        let outer = contain(|| {
            let inner = contain(|| -> u32 { panic!("inner") });
            assert_eq!(inner, Err("inner".to_string()));
            11
        });
        assert_eq!(outer, Ok(11));
    }
}
