//! Process-global drain deadline.
//!
//! When a daemon receives SIGTERM (or a `shutdown {"drain": true}` op) it
//! stops accepting new work but lets in-flight requests finish — *up to a
//! point*.  The drain deadline is that point: once it passes, every
//! still-running cascade must wind down as if its own module deadline had
//! expired, answering `Skipped(DeadlineExceeded)` partial reports instead
//! of holding the process open indefinitely.
//!
//! A request's module deadline is fixed as an `Instant` when the request
//! starts, so a drain that begins *mid-request* cannot be expressed through
//! it.  Instead the cascade's `deadline_passed` check (consulted before
//! dispatching each sequent, before each retry rung, and before each stage)
//! also consults this module, and each stage's cooperative [`Cancel`]
//! deadline is clamped to the drain deadline via [`clamp`].  The same
//! degrade-only invariant the fault plan obeys holds here: a drain can only
//! turn would-be answers into `Skipped`, never fabricate a `Proved`.
//!
//! Like [`crate::fault`]'s plan, the state is process-global with an atomic
//! fast path: `deadline_passed` is on the per-stage hot path and must cost
//! a single relaxed load when no drain is active (the overwhelmingly common
//! case).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static DEADLINE: Mutex<Option<Instant>> = Mutex::new(None);

/// Starts (or tightens) a drain: in-flight cascades begin answering
/// `Skipped(DeadlineExceeded)` once `deadline` passes.  Calling `begin`
/// again keeps the *earlier* of the two deadlines — a second SIGTERM can
/// only hasten shutdown, never extend it.
pub fn begin(deadline: Instant) {
    let mut slot = DEADLINE.lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(match *slot {
        Some(existing) => existing.min(deadline),
        None => deadline,
    });
    ACTIVE.store(true, Ordering::Release);
}

/// Clears any active drain (used by tests and by daemons that abort a
/// drain after flushing).
pub fn clear() {
    let mut slot = DEADLINE.lock().unwrap_or_else(|e| e.into_inner());
    *slot = None;
    ACTIVE.store(false, Ordering::Release);
}

/// Whether a drain has begun (its deadline may still be in the future).
pub fn active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// The current drain deadline, if a drain is active.
pub fn deadline() -> Option<Instant> {
    if !active() {
        return None;
    }
    *DEADLINE.lock().unwrap_or_else(|e| e.into_inner())
}

/// True once an active drain's deadline has passed.  Single relaxed load
/// when no drain is active.
pub fn deadline_passed() -> bool {
    match deadline() {
        Some(d) => Instant::now() >= d,
        None => false,
    }
}

/// Clamps an optional per-request deadline to the drain deadline, so a
/// stage's cooperative cancel token also observes the drain.
pub fn clamp(deadline: Option<Instant>) -> Option<Instant> {
    match (deadline, self::deadline()) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Serialises tests touching the process-global drain state.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn inactive_drain_is_free_and_clamps_nothing() {
        let _g = guard();
        clear();
        assert!(!active());
        assert!(!deadline_passed());
        assert_eq!(deadline(), None);
        let d = Instant::now() + Duration::from_secs(5);
        assert_eq!(clamp(Some(d)), Some(d));
        assert_eq!(clamp(None), None);
    }

    #[test]
    fn begin_keeps_the_earlier_deadline_and_passes() {
        let _g = guard();
        clear();
        let soon = Instant::now() + Duration::from_millis(1);
        let late = Instant::now() + Duration::from_secs(60);
        begin(late);
        begin(soon);
        assert!(active());
        assert_eq!(deadline(), Some(soon));
        // A later begin() must not extend the drain.
        begin(late);
        assert_eq!(deadline(), Some(soon));
        std::thread::sleep(Duration::from_millis(5));
        assert!(deadline_passed());
        clear();
        assert!(!deadline_passed());
    }

    #[test]
    fn clamp_takes_the_minimum_under_an_active_drain() {
        let _g = guard();
        clear();
        let drain_at = Instant::now() + Duration::from_secs(1);
        begin(drain_at);
        let tighter = Instant::now() + Duration::from_millis(10);
        let looser = Instant::now() + Duration::from_secs(60);
        assert_eq!(clamp(Some(tighter)), Some(tighter));
        assert_eq!(clamp(Some(looser)), Some(drain_at));
        assert_eq!(clamp(None), Some(drain_at));
        clear();
    }
}
