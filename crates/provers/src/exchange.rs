//! Nelson–Oppen-style theory combination for the ground tableau.
//!
//! The ground solver's leaves used to be the end of the line: if neither the
//! congruence closure nor the linear-arithmetic pass closed a saturated
//! branch, the sequent fell through to the next prover in the cascade — which
//! never saw the equalities the branch had accumulated.  This module turns
//! satellite decision procedures into *theories plugged into the tableau*:
//!
//! * every branch literal is offered to each theory as it is asserted
//!   ([`TheoryExchange::assert_literal`]), with [`TheoryExchange::push`] /
//!   [`TheoryExchange::pop`] scoped in lockstep with the branch exploration;
//! * at a saturated, consistent leaf the tableau runs an **equality-exchange
//!   loop** ([`TheoryExchange::check`]): the ground core hands the theory the
//!   congruence-class groupings of its shared variables (plus implied
//!   disequalities), the theory reports either a conflict or a batch of
//!   entailed facts (equalities between shared set/int/element terms,
//!   emptiness and singleton facts), the facts are asserted back into the
//!   branch, and the loop iterates to a fixpoint or until the budget runs
//!   out.
//!
//! [`BapaExchange`] is the first theory behind the interface (the jump the
//! paper's cardinality obligations need); the reachability prover is the
//! natural next tenant.

use crate::cc::Congruence;
use ipl_bapa::incremental::{BapaCheck, IncrementalBapa};
use ipl_bapa::BapaLimits;
use ipl_logic::Form;
use std::sync::Arc;

/// Per-search budgets for the exchange loop, decremented as they are spent.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeBudget {
    /// Saturated leaves still allowed to run the exchange loop.
    pub leaf_checks: usize,
    /// Entailment queries (each one Presburger refutation) still allowed.
    pub entailment_queries: usize,
}

/// What a theory learned at a leaf.
#[derive(Debug)]
pub enum TheoryResult {
    /// The branch literals are unsatisfiable in the theory: close the branch.
    Conflict,
    /// Facts entailed by the theory over shared terms, to be asserted back
    /// into the ground core (empty means nothing new).
    Facts(Vec<Form>),
}

/// A decision procedure cooperating with the ground tableau.
pub trait TheoryExchange: std::fmt::Debug {
    /// Short name used in diagnostics.
    fn name(&self) -> &'static str;

    /// Opens a scope, mirroring `Congruence::push`.
    fn push(&mut self);

    /// Closes the innermost scope, mirroring `Congruence::pop`.
    fn pop(&mut self);

    /// Pops scopes until the depth is `depth` (the CDCL core backjumps over
    /// several decision levels at once).  Implementations with cheaper bulk
    /// unwinding should override the default pop loop.
    fn pop_to(&mut self, depth: usize) {
        while self.depth() > depth {
            self.pop();
        }
    }

    /// Current scope depth.
    fn depth(&self) -> usize;

    /// Offers one branch literal.  Returns `true` if the theory knows it
    /// (newly recorded or already present); `false` when the literal lies
    /// outside the theory's fragment — callers may cache that verdict and
    /// skip re-offering the literal on later branches.
    ///
    /// The ground core offers decisions, input-clause propagations, and
    /// congruence-propagated literals (all facts of the branch a recursive
    /// tableau would also have asserted), but withholds literals propagated
    /// from *learned* clauses: those are implied, the leaf checks stay sound
    /// without them, and offering them would grow the theory's atom set —
    /// for BAPA, the worst-case-exponential Venn translation — beyond the
    /// branch itself.
    fn assert_literal(&mut self, literal: &Form) -> bool;

    /// Cheap activation probe: would [`TheoryExchange::check`] do any work
    /// on the current atom set?  The tableau consults this before spending
    /// leaf-check budget, so saturated leaves the theory has nothing to say
    /// about cannot starve the one that needs it.
    fn is_active(&self) -> bool;

    /// Runs the theory at a saturated leaf: imports the congruence-implied
    /// (dis)equalities over its shared variables, decides its atom set, and
    /// exports entailed facts.
    fn check(&mut self, cc: &mut Congruence, budget: &mut ExchangeBudget) -> TheoryResult;
}

/// The BAPA cardinality procedure as a tableau theory.
#[derive(Debug, Default)]
pub struct BapaExchange {
    bapa: IncrementalBapa,
}

impl BapaExchange {
    /// Creates the theory with the given BAPA limits.
    pub fn new(limits: BapaLimits) -> Self {
        BapaExchange {
            bapa: IncrementalBapa::new(limits),
        }
    }

    /// Asserts a formula into the underlying engine unless it is already
    /// present (keeps re-imported facts from growing the assertion stack).
    /// Returns `false` only for out-of-fragment formulas.
    fn assert_once(&mut self, form: &Form) -> bool {
        if self.bapa.contains(form) {
            return true;
        }
        self.bapa.assert_form(form)
    }
}

/// Is this element identifier a plain variable name (one we can faithfully
/// turn back into a `Form::Var`)?  Extraction identifies elements by their
/// printed form, which for compound terms (`(k, v)`, `x.next`, literals)
/// cannot be reconstructed as a variable.
fn is_var_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '#' | '$'))
        && name != "null"
        && name != "emptyset"
}

impl TheoryExchange for BapaExchange {
    fn name(&self) -> &'static str {
        "bapa"
    }

    fn push(&mut self) {
        self.bapa.push();
    }

    fn pop(&mut self) {
        self.bapa.pop();
    }

    fn pop_to(&mut self, depth: usize) {
        self.bapa.pop_to(depth);
    }

    fn depth(&self) -> usize {
        self.bapa.depth()
    }

    fn assert_literal(&mut self, literal: &Form) -> bool {
        self.assert_once(literal)
    }

    fn is_active(&self) -> bool {
        // BAPA is the *cardinality* procedure.  Branches whose atoms never
        // mention a cardinality are fully covered by the membership-level
        // expansion the other provers work on, and paying the Venn
        // translation at every such leaf would dominate the search.
        self.bapa.has_cardinality()
    }

    fn check(&mut self, cc: &mut Congruence, budget: &mut ExchangeBudget) -> TheoryResult {
        if !self.is_active() {
            return TheoryResult::Facts(Vec::new());
        }
        let (sets, elems, ints) = self.bapa.variables();
        let var_elems: Vec<String> = elems.into_iter().filter(|e| is_var_name(e)).collect();

        // Ground -> BAPA: congruence-implied equalities between the shared
        // variables of each kind, found by grouping per congruence class.
        for kind in [
            sets.iter().cloned().collect::<Vec<_>>(),
            ints.iter().cloned().collect::<Vec<_>>(),
            var_elems.clone(),
        ] {
            let mut by_class: std::collections::HashMap<usize, Vec<String>> =
                std::collections::HashMap::new();
            for name in kind {
                let class = cc.class_of(&Form::var(name.clone()));
                by_class.entry(class).or_default().push(name);
            }
            for group in by_class.into_values() {
                let Some((first, rest)) = group.split_first() else {
                    continue;
                };
                for other in rest {
                    let eq = Form::eq(Form::var(first.clone()), Form::var(other.clone()));
                    self.assert_once(&eq);
                }
            }
        }
        // Ground -> BAPA: implied disequalities between element variables
        // (these give BAPA its cardinality lower bounds).
        if var_elems.len() <= 12 {
            for (i, a) in var_elems.iter().enumerate() {
                for b in var_elems.iter().skip(i + 1) {
                    let (va, vb) = (Form::var(a.clone()), Form::var(b.clone()));
                    if cc.are_disequal(&va, &vb) {
                        self.assert_once(&Form::not(Form::eq(va, vb)));
                    }
                }
            }
        }

        if self.bapa.check() == BapaCheck::Unsat {
            return TheoryResult::Conflict;
        }

        // BAPA -> ground: entailed facts over shared terms, most valuable
        // first.  Every candidate costs one budgeted Presburger refutation;
        // facts the congruence already knows are skipped for free.
        let mut facts = Vec::new();
        let set_list: Vec<String> = sets.into_iter().collect();
        let mut candidates: Vec<Form> = Vec::new();
        for s in &set_list {
            candidates.push(Form::eq(Form::var(s.clone()), Form::EmptySet));
        }
        for (i, s) in set_list.iter().enumerate() {
            for t in set_list.iter().skip(i + 1) {
                candidates.push(Form::eq(Form::var(s.clone()), Form::var(t.clone())));
            }
        }
        for (i, x) in var_elems.iter().enumerate() {
            for y in var_elems.iter().skip(i + 1) {
                candidates.push(Form::eq(Form::var(x.clone()), Form::var(y.clone())));
            }
        }
        for s in &set_list {
            // Singleton facts feed the arithmetic side through the card term.
            candidates.push(Form::eq(
                Form::Card(Arc::new(Form::var(s.clone()))),
                Form::int(1),
            ));
        }
        for candidate in candidates {
            if budget.entailment_queries == 0 {
                break;
            }
            let Form::Eq(lhs, rhs) = &candidate else {
                unreachable!("candidates are equalities");
            };
            if cc.are_equal(lhs, rhs) {
                continue; // the ground core already knows it
            }
            budget.entailment_queries -= 1;
            if self.bapa.entails(&candidate) {
                facts.push(candidate);
            }
        }
        TheoryResult::Facts(facts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;

    fn f(s: &str) -> Form {
        parse_form(s).unwrap()
    }

    fn budget() -> ExchangeBudget {
        ExchangeBudget {
            leaf_checks: 8,
            entailment_queries: 64,
        }
    }

    #[test]
    fn congruence_implied_set_equality_reaches_bapa() {
        // s and t are congruent only through g(a) = s, g(b) = t, a = b — no
        // literal equates them, so only the ground->BAPA import can.
        let mut cc = Congruence::new();
        cc.assert_eq(&f("a"), &f("b"));
        cc.assert_eq(&f("g(a)"), &f("s"));
        cc.assert_eq(&f("g(b)"), &f("t"));
        let mut theory = BapaExchange::default();
        theory.assert_literal(&f("card(s) = 0"));
        theory.assert_literal(&f("x in t"));
        let result = theory.check(&mut cc, &mut budget());
        assert!(matches!(result, TheoryResult::Conflict), "{result:?}");
    }

    #[test]
    fn entailed_emptiness_is_exported_to_the_ground_core() {
        let mut cc = Congruence::new();
        let mut theory = BapaExchange::default();
        theory.assert_literal(&f("card(s) = 0"));
        let TheoryResult::Facts(facts) = theory.check(&mut cc, &mut budget()) else {
            panic!("no conflict expected");
        };
        assert!(
            facts.contains(&f("s = emptyset")),
            "emptiness fact exported: {facts:?}"
        );
    }

    #[test]
    fn entailed_singleton_cardinality_is_exported() {
        let mut cc = Congruence::new();
        let mut theory = BapaExchange::default();
        theory.assert_literal(&f("s = {x}"));
        theory.assert_literal(&f("card(s) <= n"));
        let TheoryResult::Facts(facts) = theory.check(&mut cc, &mut budget()) else {
            panic!("no conflict expected");
        };
        assert!(
            facts.contains(&f("card(s) = 1")),
            "singleton fact exported: {facts:?}"
        );
    }

    #[test]
    fn element_disequalities_are_imported_for_lower_bounds() {
        // x != y comes only from the congruence; with both in s the set has
        // cardinality at least two.
        let mut cc = Congruence::new();
        cc.assert_neq(&f("x"), &f("y"));
        let mut theory = BapaExchange::default();
        theory.assert_literal(&f("x in s"));
        theory.assert_literal(&f("y in s"));
        theory.assert_literal(&f("card(s) <= 1"));
        let result = theory.check(&mut cc, &mut budget());
        assert!(matches!(result, TheoryResult::Conflict), "{result:?}");
    }

    #[test]
    fn budget_exhaustion_stops_entailment_queries() {
        let mut cc = Congruence::new();
        let mut theory = BapaExchange::default();
        theory.assert_literal(&f("card(s) = 0"));
        let mut budget = ExchangeBudget {
            leaf_checks: 1,
            entailment_queries: 0,
        };
        let TheoryResult::Facts(facts) = theory.check(&mut cc, &mut budget) else {
            panic!("no conflict expected");
        };
        assert!(facts.is_empty(), "no queries allowed: {facts:?}");
    }

    #[test]
    fn push_pop_restores_theory_state() {
        let mut cc = Congruence::new();
        let mut theory = BapaExchange::default();
        theory.assert_literal(&f("x in s"));
        theory.push();
        theory.assert_literal(&f("card(s) = 0"));
        assert!(matches!(
            theory.check(&mut cc, &mut budget()),
            TheoryResult::Conflict
        ));
        theory.pop();
        assert!(matches!(
            theory.check(&mut cc, &mut budget()),
            TheoryResult::Facts(_)
        ));
    }
}
