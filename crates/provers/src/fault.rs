//! Deterministic chaos injection for the fault-isolated verification core.
//!
//! A [`FaultPlan`] describes a *seeded, reproducible* storm of infrastructure
//! faults: probabilistic prover-stage panics, injected delays, spurious
//! `Unknown` verdicts, and I/O errors (short writes, disk-full, lock failure)
//! inside the persistent proof store.  The plan is installed process-wide
//! ([`set_plan`]) and consulted at each injection site; every decision is a
//! pure hash of `(seed, fault kind, site key)`, where the site key is derived
//! from the *content* being processed (the query's structural hash, the
//! entry batch's fingerprint) — never from scheduling order — so a plan
//! injects the identical faults at `--jobs 1` and `--jobs N`, and two runs
//! of the same plan fault the same sequents.
//!
//! The load-bearing invariant, enforced by the chaos suite: **faults only
//! degrade**.  Every injection turns a would-be verdict into
//! `Crashed`/`Unknown`/an I/O error; no site can fabricate `Proved`, so a
//! faulted run's proved set is always a subset of the fault-free run's.
//!
//! ## Plan format
//!
//! `ipl verify --fault-plan SPEC` (or `IPL_FAULT_PLAN=SPEC`) parses a
//! comma-separated `key=value` list.  Probabilities are percentages (floats
//! allowed); `default` loads the standard chaos plan (1% panics, 5% delays,
//! seeded store faults) and later keys override it:
//!
//! ```text
//! seed=42,panic=1,delay=5,delay_ms=1,spurious=0.5,short_write=5,disk_full=1,lock_fail=1
//! default,seed=7
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

/// Granularity of the probability space: probabilities are quantized to
/// basis points (1/100 of a percent), so parsed percentages are exact.
const BASIS: u64 = 10_000;

/// A seeded, deterministic fault-injection plan.  All probability fields are
/// in basis points (`100` = 1%); a zero field never fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// Probability that a prover-stage dispatch panics (contained by the
    /// cascade into `Outcome::Crashed`).
    pub stage_panic_bp: u32,
    /// Probability that a stage dispatch is delayed by [`delay_ms`](Self::delay_ms).
    pub delay_bp: u32,
    /// Length of an injected delay, milliseconds.
    pub delay_ms: u64,
    /// Probability that a stage is skipped with a spurious `Unknown` verdict
    /// (models a flaky prover giving up early).
    pub spurious_unknown_bp: u32,
    /// Probability that a store append tears mid-write (a prefix of the
    /// batch reaches disk, then the write errors — the torn-tail recovery
    /// path on the next open).
    pub store_short_write_bp: u32,
    /// Probability that a store append fails with disk-full before writing.
    pub store_disk_full_bp: u32,
    /// Probability that acquiring the store's advisory file lock reports
    /// `Unsupported` (exercises the lock-free degradation path).
    pub store_lock_fail_bp: u32,
    /// Probability that the daemon drops a connection mid-response-frame
    /// (a partial frame reaches the client, then the connection is severed —
    /// models a flaky network or a client vanishing mid-read).
    pub serve_conn_drop_bp: u32,
    /// Probability that handling a serve request stalls for
    /// [`serve_stall_ms`](Self::serve_stall_ms) while holding its admission
    /// slot (models a slow client or a request that hogs a worker).
    pub serve_stall_bp: u32,
    /// Length of an injected serve stall, milliseconds.
    pub serve_stall_ms: u64,
    /// Probability that admission control reports the daemon as overloaded
    /// even when capacity is free (the request is answered with a typed
    /// `overloaded` frame and never dispatched).
    pub serve_overload_bp: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            stage_panic_bp: 0,
            delay_bp: 0,
            delay_ms: 1,
            spurious_unknown_bp: 0,
            store_short_write_bp: 0,
            store_disk_full_bp: 0,
            store_lock_fail_bp: 0,
            serve_conn_drop_bp: 0,
            serve_stall_bp: 0,
            serve_stall_ms: 1,
            serve_overload_bp: 0,
        }
    }
}

/// The standard chaos plan used by CI's `chaos-smoke` job: 1% stage panics,
/// 5% injected delays, 0.5% spurious Unknowns, seeded store faults, and
/// connection-level serve faults (drops, stalls, spurious overload).
pub fn default_chaos(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        stage_panic_bp: 100,
        delay_bp: 500,
        delay_ms: 1,
        spurious_unknown_bp: 50,
        store_short_write_bp: 500,
        store_disk_full_bp: 100,
        store_lock_fail_bp: 100,
        serve_conn_drop_bp: 100,
        serve_stall_bp: 100,
        serve_stall_ms: 1,
        serve_overload_bp: 100,
    }
}

impl FaultPlan {
    /// Parses the `key=value` plan format (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if token == "default" {
                plan = default_chaos(plan.seed);
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("fault plan: `{token}` is not key=value"))?;
            let percent_bp = |v: &str| -> Result<u32, String> {
                let pct: f64 = v
                    .trim_end_matches('%')
                    .parse()
                    .map_err(|_| format!("fault plan: `{key}={v}` is not a percentage"))?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(format!("fault plan: `{key}={v}` out of 0..=100"));
                }
                Ok((pct * 100.0).round() as u32)
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault plan: `seed={value}` is not an integer"))?;
                }
                "delay_ms" => {
                    plan.delay_ms = value
                        .parse()
                        .map_err(|_| format!("fault plan: `delay_ms={value}` is not an integer"))?;
                }
                "panic" => plan.stage_panic_bp = percent_bp(value)?,
                "delay" => plan.delay_bp = percent_bp(value)?,
                "spurious" => plan.spurious_unknown_bp = percent_bp(value)?,
                "short_write" => plan.store_short_write_bp = percent_bp(value)?,
                "disk_full" => plan.store_disk_full_bp = percent_bp(value)?,
                "lock_fail" => plan.store_lock_fail_bp = percent_bp(value)?,
                "conn_drop" => plan.serve_conn_drop_bp = percent_bp(value)?,
                "stall" => plan.serve_stall_bp = percent_bp(value)?,
                "stall_ms" => {
                    plan.serve_stall_ms = value
                        .parse()
                        .map_err(|_| format!("fault plan: `stall_ms={value}` is not an integer"))?;
                }
                "overload" => plan.serve_overload_bp = percent_bp(value)?,
                other => return Err(format!("fault plan: unknown key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// `true` when no fault can ever fire under this plan.
    pub fn is_zero(&self) -> bool {
        self.stage_panic_bp == 0
            && self.delay_bp == 0
            && self.spurious_unknown_bp == 0
            && self.store_short_write_bp == 0
            && self.store_disk_full_bp == 0
            && self.store_lock_fail_bp == 0
            && self.serve_conn_drop_bp == 0
            && self.serve_stall_bp == 0
            && self.serve_overload_bp == 0
    }

    /// The deterministic raw roll for one `(kind, site)` pair: a value in
    /// `0..BASIS` plus extra mixed bits for sites that need a second draw
    /// (e.g. the cut point of a short write).
    fn roll(&self, kind: &str, key: u64) -> u64 {
        // SplitMix64-style finalizer over the seed, the fault kind and the
        // content key; no shared state, so concurrent sites never interact.
        let mut x = self.seed ^ key;
        for byte in kind.bytes() {
            x = x
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(byte));
        }
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn hits(&self, kind: &str, key: u64, bp: u32) -> bool {
        bp > 0 && self.roll(kind, key) % BASIS < u64::from(bp)
    }

    /// The faults to inject around one prover-stage dispatch.
    pub fn stage_faults(&self, stage: &str, key: u64) -> StageFaults {
        let key = key ^ self.roll("stage", hash_str(stage));
        StageFaults {
            delay: self
                .hits("delay", key, self.delay_bp)
                .then_some(std::time::Duration::from_millis(self.delay_ms)),
            spurious_unknown: self.hits("spurious", key, self.spurious_unknown_bp),
            panic: self.hits("panic", key, self.stage_panic_bp),
        }
    }

    /// The fault to inject into one store append of `len` bytes, if any.
    pub fn store_append_fault(&self, key: u64, len: usize) -> Option<StoreFault> {
        if self.hits("disk_full", key, self.store_disk_full_bp) {
            return Some(StoreFault::DiskFull);
        }
        if self.hits("short_write", key, self.store_short_write_bp) {
            let cut = (self.roll("cut", key) as usize) % len.max(1);
            return Some(StoreFault::ShortWrite { cut });
        }
        None
    }

    /// Whether acquiring the store lock should report `Unsupported` for this
    /// site.
    pub fn store_lock_fails(&self, key: u64) -> bool {
        self.hits("lock_fail", key, self.store_lock_fail_bp)
    }

    /// The connection-level faults to inject around one serve request, keyed
    /// on the request's *content* (so the same plan drops/stalls/rejects the
    /// same requests regardless of connection scheduling).  Applied in field
    /// order: an overload rejection pre-empts a stall, which precedes the
    /// verification; the mid-frame drop fires on the response write.
    pub fn serve_faults(&self, key: u64) -> ServeFaults {
        ServeFaults {
            overload: self.hits("serve_overload", key, self.serve_overload_bp),
            stall: self
                .hits("serve_stall", key, self.serve_stall_bp)
                .then_some(std::time::Duration::from_millis(self.serve_stall_ms)),
            drop_mid_frame: self.hits("serve_conn_drop", key, self.serve_conn_drop_bp),
        }
    }
}

/// Decisions for one serve request (see [`FaultPlan::serve_faults`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeFaults {
    /// Answer the request with a typed `overloaded` frame without admitting
    /// it, even when capacity is free.
    pub overload: bool,
    /// Sleep this long while holding the admission slot before dispatching
    /// (models a request that hogs a worker).
    pub stall: Option<std::time::Duration>,
    /// Write only a prefix of the response frame, then sever the connection
    /// (the client sees a mid-frame disconnect; the daemon must tear down
    /// only that connection).
    pub drop_mid_frame: bool,
}

/// Decisions for one stage dispatch, applied in field order: delay first,
/// then a spurious skip, then (inside the containment boundary) a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageFaults {
    /// Sleep this long before dispatching.
    pub delay: Option<std::time::Duration>,
    /// Skip the stage, reporting `Unknown` without running it.
    pub spurious_unknown: bool,
    /// Panic inside the dispatch (exercises the containment boundary).
    pub panic: bool,
}

/// An injected store I/O failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// Write only the first `cut` bytes of the batch, then error — the torn
    /// write a crash or a full disk leaves behind.
    ShortWrite {
        /// Bytes of the batch that reach the file before the tear.
        cut: usize,
    },
    /// Fail before writing anything.
    DiskFull,
}

fn hash_str(s: &str) -> u64 {
    let mut x: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.bytes() {
        x = (x ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
    }
    x
}

// ---------------------------------------------------------------------------
// The installed plan
// ---------------------------------------------------------------------------

/// Fast path: `false` keeps the no-chaos hot path to one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);

/// Installs (or, with `None`, removes) the process-wide fault plan.
/// Injection sites see the new plan on their next decision.
pub fn set_plan(plan: Option<FaultPlan>) {
    let mut slot = PLAN.write().expect("fault plan lock");
    ENABLED.store(plan.is_some(), Ordering::Release);
    *slot = plan;
}

/// The currently installed plan, if any.
pub fn active_plan() -> Option<FaultPlan> {
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    *PLAN.read().expect("fault plan lock")
}

/// Serializes tests (and any other callers) that install a process-global
/// plan: hold the returned guard for the whole faulted section.  Recovers
/// from a poisoned lock — a chaos test that failed an assertion must not
/// cascade into every later chaos test.
pub fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` with `plan` installed, restoring the previous plan afterwards
/// (even on panic).  Chaos tests in one binary must serialize around this —
/// the plan is process-global (see [`serial_guard`]).
pub fn with_plan<R>(plan: Option<FaultPlan>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<FaultPlan>);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_plan(self.0);
        }
    }
    let _restore = Restore(active_plan());
    set_plan(plan);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_default_chaos_plan() {
        let parsed = FaultPlan::parse(
            "seed=42,panic=1,delay=5,delay_ms=1,spurious=0.5,short_write=5,disk_full=1,lock_fail=1,\
             conn_drop=1,stall=1,stall_ms=1,overload=1",
        )
        .unwrap();
        assert_eq!(parsed, default_chaos(42));
        assert_eq!(
            FaultPlan::parse("default,seed=42").unwrap(),
            default_chaos(42)
        );
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert!(FaultPlan::parse("panic=200").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("stall_ms=x").is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = default_chaos(1);
        let a = plan.stage_faults("smt-ground", 0xfeed);
        let b = plan.stage_faults("smt-ground", 0xfeed);
        assert_eq!(a, b, "same seed + site must decide identically");
        let mut differs = false;
        for key in 0..2_000u64 {
            if default_chaos(1).stage_faults("smt-ground", key)
                != default_chaos(2).stage_faults("smt-ground", key)
            {
                differs = true;
                break;
            }
        }
        assert!(differs, "different seeds must produce different storms");
    }

    #[test]
    fn probabilities_are_roughly_honoured() {
        let plan = FaultPlan {
            seed: 9,
            stage_panic_bp: 1_000, // 10%
            ..FaultPlan::default()
        };
        let hits = (0..10_000u64)
            .filter(|&key| plan.stage_faults("stage", key).panic)
            .count();
        assert!(
            (700..=1_300).contains(&hits),
            "10% nominal rate hit {hits}/10000 times"
        );
    }

    #[test]
    fn zero_plan_never_fires() {
        let plan = FaultPlan::default();
        assert!(plan.is_zero());
        for key in 0..500 {
            let faults = plan.stage_faults("any", key);
            assert!(!faults.panic && !faults.spurious_unknown && faults.delay.is_none());
            assert_eq!(plan.store_append_fault(key, 64), None);
            assert!(!plan.store_lock_fails(key));
            let serve = plan.serve_faults(key);
            assert!(!serve.overload && !serve.drop_mid_frame && serve.stall.is_none());
        }
    }

    #[test]
    fn serve_fault_decisions_are_deterministic_and_content_keyed() {
        let plan = FaultPlan {
            seed: 11,
            serve_overload_bp: 2_000,
            serve_conn_drop_bp: 2_000,
            serve_stall_bp: 2_000,
            serve_stall_ms: 3,
            ..FaultPlan::default()
        };
        for key in 0..200u64 {
            assert_eq!(plan.serve_faults(key), plan.serve_faults(key));
        }
        // The three kinds roll independently: over a window some keys must
        // hit exactly one of them.
        let mixed = (0..2_000u64)
            .map(|k| plan.serve_faults(k))
            .filter(|f| f.overload != f.drop_mid_frame)
            .count();
        assert!(mixed > 0, "kinds must not be perfectly correlated");
        let stalled = (0..2_000u64)
            .filter(|&k| plan.serve_faults(k).stall.is_some())
            .count();
        assert!((100..=800).contains(&stalled), "20% nominal hit {stalled}");
    }

    #[test]
    fn with_plan_restores_the_previous_plan() {
        // The plan slot is process-global and this binary's tests run in
        // parallel, so install a plan that can never fire.
        let inner = FaultPlan {
            seed: 3,
            ..FaultPlan::default()
        };
        with_plan(Some(inner), || {
            assert_eq!(active_plan(), Some(inner));
        });
    }
}
