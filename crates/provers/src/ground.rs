//! The ground SMT-lite solver: a tableau over the boolean structure with a
//! combined congruence-closure + linear-integer-arithmetic theory check at
//! the leaves.
//!
//! The solver works by refutation on a set of ground formulas in NNF.  It is
//! deliberately budgeted: when the number of explored branch nodes exceeds
//! the configured limit it gives up and reports "unknown", which is how the
//! paper's observation that large assumption bases defeat the provers is
//! reproduced.

use crate::cc::Congruence;
use crate::ProverConfig;
use ipl_bapa::presburger::{fm_unsatisfiable, LinExpr, PForm};
use ipl_logic::normal::nnf;
use ipl_logic::{Form, Sort, SortEnv};

/// Result of a refutation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroundResult {
    /// The formula set is unsatisfiable (the original sequent is valid).
    Unsat,
    /// Could not refute within budget (possibly satisfiable).
    Unknown,
}

/// Attempts to refute the conjunction of the given ground formulas.
pub fn refute(forms: &[Form], env: &SortEnv, config: &ProverConfig) -> GroundResult {
    let mut budget = config.max_branch_nodes;
    let pending: Vec<Form> = forms.to_vec();
    if search(Vec::new(), pending, env, &mut budget) {
        GroundResult::Unsat
    } else {
        GroundResult::Unknown
    }
}

/// Returns `true` if every branch closes (the formula set is unsatisfiable).
fn search(
    mut literals: Vec<Form>,
    mut pending: Vec<Form>,
    env: &SortEnv,
    budget: &mut usize,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;

    let mut disjunctions: Vec<Vec<Form>> = Vec::new();
    while let Some(form) = pending.pop() {
        match form {
            Form::Bool(true) => {}
            Form::Bool(false) => return true,
            Form::And(parts) => pending.extend(parts),
            Form::Or(parts) => disjunctions.push(parts),
            Form::Implies(..) | Form::Iff(..) | Form::Not(_) if !is_literal(&form) => {
                pending.push(nnf(&form));
            }
            other => {
                // A literal: close immediately on syntactic complementarity.
                let negated = Form::not(other.clone());
                if literals.contains(&negated) {
                    return true;
                }
                if !literals.contains(&other) {
                    literals.push(other);
                }
            }
        }
    }

    // Simplify disjunctions against the current literal set.
    let mut simplified: Vec<Vec<Form>> = Vec::new();
    let mut units: Vec<Form> = Vec::new();
    for disjunction in disjunctions {
        let mut remaining = Vec::new();
        let mut satisfied = false;
        for disjunct in disjunction {
            if literals.contains(&disjunct) {
                satisfied = true;
                break;
            }
            let negated = Form::not(disjunct.clone());
            if literals.contains(&negated) {
                continue; // this disjunct is already false
            }
            remaining.push(disjunct);
        }
        if satisfied {
            continue;
        }
        match remaining.len() {
            0 => return true, // empty clause
            1 => units.push(remaining.pop().expect("len checked")),
            _ => simplified.push(remaining),
        }
    }
    if !units.is_empty() {
        // Unit propagation: re-enter with the forced disjuncts as pending
        // formulas, keeping every remaining disjunction.
        let mut pending: Vec<Form> = simplified.into_iter().map(Form::Or).collect();
        pending.extend(units);
        return search(literals, pending, env, budget);
    }

    if theory_conflict(&literals, env) {
        return true;
    }
    if simplified.is_empty() {
        return false; // saturated, consistent branch: cannot refute
    }

    // Branch on the smallest disjunction.
    simplified.sort_by_key(Vec::len);
    let chosen = simplified.remove(0);
    let rest: Vec<Form> = simplified.into_iter().map(Form::Or).collect();
    for disjunct in chosen {
        let mut pending = rest.clone();
        pending.push(disjunct);
        if !search(literals.clone(), pending, env, budget) {
            return false;
        }
    }
    true
}

/// Returns `true` if the form is a literal (an atom or a negated atom).
fn is_literal(form: &Form) -> bool {
    match form {
        Form::Not(inner) => inner.is_atom(),
        other => other.is_atom(),
    }
}

/// Checks whether a conjunction of ground literals is inconsistent in the
/// combined theory of equality with uninterpreted functions, the free theory
/// of field/array updates (via the eagerly added axioms), and linear integer
/// arithmetic.
pub fn theory_conflict(literals: &[Form], env: &SortEnv) -> bool {
    let mut cc = Congruence::new();
    // Phase 1: equality reasoning.
    for literal in literals {
        match literal {
            Form::Eq(a, b) => cc.assert_eq(a, b),
            Form::Not(inner) => {
                if let Form::Eq(a, b) = inner.as_ref() {
                    cc.assert_neq(a, b);
                } else {
                    // Negative atom: equate it with false.
                    cc.assert_eq(inner, &Form::FALSE);
                }
            }
            Form::Lt(..) | Form::Le(..) => {
                // Arithmetic handled below; also record as a true atom so that
                // p < q together with ~(p < q) conflicts via congruence.
                cc.assert_eq(literal, &Form::TRUE);
            }
            other => cc.assert_eq(other, &Form::TRUE),
        }
    }
    if cc.has_conflict() {
        return true;
    }

    // Phase 2: linear integer arithmetic over congruence classes.
    let mut constraints: Vec<PForm> = Vec::new();
    for literal in literals {
        match literal {
            Form::Le(a, b) => {
                if let Some(expr) = linear_diff(a, b, &mut cc) {
                    constraints.push(PForm::le(expr));
                }
            }
            Form::Lt(a, b) => {
                if let Some(expr) = linear_diff(a, b, &mut cc) {
                    constraints.push(PForm::le(expr.shifted(1)));
                }
            }
            Form::Eq(a, b)
                if env.sort_of(a) == Sort::Int
                    || env.sort_of(b) == Sort::Int
                    || is_arith(a)
                    || is_arith(b) =>
            {
                if let Some(expr) = linear_diff(a, b, &mut cc) {
                    constraints.push(PForm::le(expr.clone()));
                    constraints.push(PForm::le(expr.scaled(-1)));
                }
            }
            Form::Not(inner) => match inner.as_ref() {
                Form::Le(a, b) => {
                    if let Some(expr) = linear_diff(b, a, &mut cc) {
                        constraints.push(PForm::le(expr.shifted(1)));
                    }
                }
                Form::Lt(a, b) => {
                    if let Some(expr) = linear_diff(b, a, &mut cc) {
                        constraints.push(PForm::le(expr));
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }
    // Propagate congruence-derived equalities between integer-classed terms:
    // this happens automatically because terms in the same class share the
    // same arithmetic variable (named after the class representative).
    if constraints.is_empty() {
        return false;
    }
    fm_unsatisfiable(&PForm::and(constraints))
}

/// Linearises `a - b` into a linear expression, mapping non-arithmetic
/// sub-terms to variables named after their congruence class.
fn linear_diff(a: &Form, b: &Form, cc: &mut Congruence) -> Option<LinExpr> {
    let la = linearise(a, cc)?;
    let lb = linearise(b, cc)?;
    Some(la.plus(&lb.scaled(-1)))
}

fn is_arith(form: &Form) -> bool {
    matches!(
        form,
        Form::Add(..) | Form::Sub(..) | Form::Mul(..) | Form::Neg(_) | Form::Int(_)
    )
}

fn linearise(form: &Form, cc: &mut Congruence) -> Option<LinExpr> {
    match form {
        Form::Int(value) => Some(LinExpr::constant(*value)),
        Form::Add(a, b) => Some(linearise(a, cc)?.plus(&linearise(b, cc)?)),
        Form::Sub(a, b) => Some(linearise(a, cc)?.plus(&linearise(b, cc)?.scaled(-1))),
        Form::Neg(a) => Some(linearise(a, cc)?.scaled(-1)),
        Form::Mul(a, b) => match (a.as_ref(), b.as_ref()) {
            (Form::Int(k), other) | (other, Form::Int(k)) => Some(linearise(other, cc)?.scaled(*k)),
            _ => {
                // Non-linear multiplication: abstract the whole product.
                let class = cc.class_of(form);
                Some(LinExpr::variable(&format!("t{class}"), 1))
            }
        },
        _ => {
            let class = cc.class_of(form);
            Some(LinExpr::variable(&format!("t{class}"), 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::build_problem;
    use ipl_logic::parser::parse_form;

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        for v in ["i", "j", "k", "size", "index", "csize", "x", "y", "z"] {
            e.declare_var(v, Sort::Int);
        }
        for v in ["o", "p", "q", "a", "b", "c", "first", "elements"] {
            e.declare_var(v, Sort::Obj);
        }
        e.declare_var("next", Sort::obj_field());
        e.declare_var("content", Sort::int_obj_set());
        e.declare_var("nodes", Sort::obj_set());
        e.declare_var("arrayState", Sort::obj_array_state());
        e
    }

    /// Convenience: does `assumptions |- goal` hold for the ground solver?
    fn proves(assumptions: &[&str], goal: &str) -> bool {
        let env = env();
        let assumptions: Vec<Form> = assumptions.iter().map(|s| parse_form(s).unwrap()).collect();
        let goal = parse_form(goal).unwrap();
        let problem = build_problem(&assumptions, &goal, &env);
        // Ground solver only: ignore quantified assumptions.
        refute(&problem.ground, &env, &ProverConfig::default()) == GroundResult::Unsat
    }

    #[test]
    fn propositional_reasoning() {
        assert!(proves(&["p", "p --> q"], "q"));
        assert!(proves(&["p | q", "~p"], "q"));
        assert!(!proves(&["p | q"], "p"));
        assert!(proves(&["p <-> q", "q"], "p"));
    }

    #[test]
    fn equality_reasoning() {
        assert!(proves(&["a = b", "b = c"], "a = c"));
        assert!(proves(&["a = b"], "g(a) = g(b)"));
        assert!(!proves(&["a = b"], "a = c"));
        assert!(proves(&["a = b", "~(a = c)"], "~(b = c)"));
    }

    #[test]
    fn arithmetic_reasoning() {
        assert!(proves(&["0 <= i", "i < size"], "0 <= i + 1"));
        assert!(proves(&["i < size", "size <= j"], "i < j"));
        assert!(proves(&["x = y + 1"], "y < x"));
        assert!(!proves(&["x <= y"], "x < y"));
        assert!(proves(&["index < size", "~(index < size)"], "false"));
    }

    #[test]
    fn combined_euf_and_arithmetic() {
        // x = f(a), f(a) = 3 |- x >= 3
        assert!(proves(&["x = g(a)", "g(a) = 3"], "3 <= x"));
        // field reads participate: o.next = p, p = q |- o.next = q
        assert!(proves(&["o.next = p", "p = q"], "o.next = q"));
    }

    #[test]
    fn integer_disequality_case_split() {
        assert!(proves(&["0 <= i", "i <= 1", "~(i = 0)"], "i = 1"));
    }

    #[test]
    fn field_update_reasoning() {
        // newnext = next[a := v], b != a |- b.newnext = b.next
        assert!(proves(
            &["newnext = next[a := v]", "~(b = a)"],
            "b.newnext = b.next"
        ));
        // and the written cell reads back the new value
        assert!(proves(&["newnext = next[a := v]"], "a.newnext = v"));
        // but without the disequality the frame fact must not be provable
        assert!(!proves(&["newnext = next[a := v]"], "b.newnext = b.next"));
    }

    #[test]
    fn array_update_reasoning() {
        let env = env();
        let state2 = Form::array_write(
            Form::var("arrayState"),
            Form::var("elements"),
            Form::var("i"),
            Form::var("v"),
        );
        let assumption = Form::eq(Form::var("arrayState2"), state2);
        // arrayState2 = arrayState[(elements,i) := v], j != i |-
        //     arrayState2(elements, j) = arrayState(elements, j)
        let goal = Form::eq(
            Form::array_read(
                Form::var("arrayState2"),
                Form::var("elements"),
                Form::var("j"),
            ),
            Form::array_read(
                Form::var("arrayState"),
                Form::var("elements"),
                Form::var("j"),
            ),
        );
        let problem = build_problem(
            &[assumption.clone(), parse_form("~(j = i)").unwrap()],
            &goal,
            &env,
        );
        assert_eq!(
            refute(&problem.ground, &env, &ProverConfig::default()),
            GroundResult::Unsat
        );
        // Hit case.
        let goal_hit = Form::eq(
            Form::array_read(
                Form::var("arrayState2"),
                Form::var("elements"),
                Form::var("i"),
            ),
            Form::var("v"),
        );
        let problem = build_problem(&[assumption], &goal_hit, &env);
        assert_eq!(
            refute(&problem.ground, &env, &ProverConfig::default()),
            GroundResult::Unsat
        );
    }

    #[test]
    fn membership_after_set_expansion() {
        // (i, o) in {(j, e) | 0 <= j & j < size & e = q} should follow from the
        // component facts.
        assert!(proves(
            &["0 <= i", "i < size", "o = q"],
            "(i, o) in {(j, e) : int * obj | 0 <= j & j < size & e = q}"
        ));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let env = env();
        let config = ProverConfig {
            max_branch_nodes: 1,
            ..ProverConfig::default()
        };
        let assumptions = vec![parse_form("p | q").unwrap(), parse_form("~p | r").unwrap()];
        let goal = parse_form("q | r").unwrap();
        let problem = build_problem(&assumptions, &goal, &env);
        assert_eq!(
            refute(&problem.ground, &env, &config),
            GroundResult::Unknown
        );
    }

    #[test]
    fn theory_conflict_detects_plain_contradictions() {
        let env = env();
        let literals = vec![parse_form("i < 3").unwrap(), parse_form("3 < i").unwrap()];
        assert!(theory_conflict(&literals, &env));
        let literals = vec![parse_form("i < 3").unwrap(), parse_form("i < 5").unwrap()];
        assert!(!theory_conflict(&literals, &env));
    }
}
