//! The ground SMT-lite solver: a tableau over the boolean structure with a
//! combined congruence-closure + linear-integer-arithmetic theory check at
//! the leaves.
//!
//! The solver works by refutation on a set of ground formulas in NNF.  One
//! persistent [`Congruence`] engine is threaded through the whole branch
//! exploration: literals are asserted into it as they are discovered, branch
//! points open a backtracking scope ([`Congruence::push`]) that is popped when
//! the branch is abandoned, and equality conflicts close branches eagerly —
//! the closure is never rebuilt from scratch.  The literal set itself is held
//! in a hash-indexed assertion stack, so complement detection and disjunction
//! simplification are O(1) per lookup instead of linear scans.
//!
//! The search is deliberately budgeted: when the number of explored branch
//! nodes exceeds the configured limit it gives up and reports "unknown",
//! which is how the paper's observation that large assumption bases defeat
//! the provers is reproduced.

use crate::cc::Congruence;
use crate::exchange::{BapaExchange, ExchangeBudget, TheoryExchange, TheoryResult};
use crate::{Cancel, ProverConfig};
use ipl_bapa::presburger::{fm_unsatisfiable, LinExpr, PForm};
use ipl_logic::normal::nnf;
use ipl_logic::{Form, Sort, SortEnv};
use std::collections::HashSet;

/// Result of a refutation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroundResult {
    /// The formula set is unsatisfiable (the original sequent is valid).
    Unsat,
    /// Could not refute within budget (possibly satisfiable).
    Unknown,
}

/// Attempts to refute the conjunction of the given ground formulas.
pub fn refute(
    forms: &[Form],
    env: &SortEnv,
    config: &ProverConfig,
    cancel: &Cancel,
) -> GroundResult {
    let mut tableau = Tableau::new(env, config, cancel);
    if tableau.search(forms.to_vec()) {
        GroundResult::Unsat
    } else {
        GroundResult::Unknown
    }
}

/// The tableau search state: one congruence engine, one literal stack and one
/// set of theory solvers shared across the whole branch exploration.
struct Tableau<'a> {
    env: &'a SortEnv,
    budget: usize,
    /// Cooperative cancellation, polled once per explored branch node.
    cancel: &'a Cancel,
    /// The assertion stack: literals of the current branch, in order.
    literals: Vec<Form>,
    /// Hash index over [`Tableau::literals`] for O(1) membership tests.
    literal_set: HashSet<Form>,
    /// The persistent congruence engine, scoped in lockstep with branching.
    cc: Congruence,
    /// Cooperating theories (the Nelson–Oppen combination), scoped in
    /// lockstep with the congruence engine.
    theories: Vec<Box<dyn TheoryExchange>>,
    /// Fixpoint iterations of the exchange loop per leaf.
    exchange_rounds: usize,
    /// Remaining exchange budgets for this search.
    exchange_budget: ExchangeBudget,
}

/// Outcome of asserting one literal onto the branch.
enum Asserted {
    /// The literal closed the branch (complement present or theory conflict).
    Closed,
    /// The literal is now part of the branch.
    Open,
}

impl<'a> Tableau<'a> {
    fn new(env: &'a SortEnv, config: &ProverConfig, cancel: &'a Cancel) -> Self {
        let theories: Vec<Box<dyn TheoryExchange>> = if config.exchange.enabled {
            vec![Box::new(BapaExchange::default())]
        } else {
            Vec::new()
        };
        Tableau {
            env,
            budget: config.max_branch_nodes,
            cancel,
            literals: Vec::new(),
            literal_set: HashSet::new(),
            cc: Congruence::new(),
            theories,
            exchange_rounds: config.exchange.max_rounds,
            exchange_budget: ExchangeBudget {
                leaf_checks: config.exchange.max_leaf_checks,
                entailment_queries: config.exchange.max_entailment_queries,
            },
        }
    }

    /// Returns `true` if every branch of the pending formula set closes
    /// (together with the literals already on the stack).
    fn search(&mut self, mut pending: Vec<Form>) -> bool {
        if self.budget == 0 {
            return false;
        }
        self.budget -= 1;
        // Poll the deadline once every 64 explored nodes: cheap enough to
        // leave the node loop unaffected, frequent enough that a timed-out
        // search unwinds within microseconds.
        if self.budget.is_multiple_of(64) && self.cancel.is_cancelled() {
            self.budget = 0;
            return false;
        }

        let mut disjunctions: Vec<Vec<Form>> = Vec::new();
        while let Some(form) = pending.pop() {
            match form {
                Form::Bool(true) => {}
                Form::Bool(false) => return true,
                Form::And(parts) => pending.extend(parts),
                Form::Or(parts) => disjunctions.push(parts),
                Form::Implies(..) | Form::Iff(..) | Form::Not(_) if !is_literal(&form) => {
                    pending.push(nnf(&form));
                }
                other => {
                    if let Asserted::Closed = self.assert_literal(other) {
                        return true;
                    }
                }
            }
        }

        // Simplify disjunctions against the current literal set.
        let mut simplified: Vec<Vec<Form>> = Vec::new();
        let mut units: Vec<Form> = Vec::new();
        for disjunction in disjunctions {
            let mut remaining = Vec::new();
            let mut satisfied = false;
            for disjunct in disjunction {
                if self.literal_set.contains(&disjunct) {
                    satisfied = true;
                    break;
                }
                let negated = Form::not(disjunct.clone());
                if self.literal_set.contains(&negated) {
                    continue; // this disjunct is already false
                }
                remaining.push(disjunct);
            }
            if satisfied {
                continue;
            }
            match remaining.len() {
                0 => return true, // empty clause
                1 => units.push(remaining.pop().expect("len checked")),
                _ => simplified.push(remaining),
            }
        }
        if !units.is_empty() {
            // Unit propagation: re-enter with the forced disjuncts as pending
            // formulas, keeping every remaining disjunction.
            let mut pending: Vec<Form> = simplified.into_iter().map(Form::Or).collect();
            pending.extend(units);
            return self.search(pending);
        }

        if self.arith_conflict() {
            return true;
        }
        if simplified.is_empty() {
            // Saturated, consistent branch: the last word goes to the theory
            // combination before the branch is declared open.
            return self.leaf_exchange();
        }

        // Branch on the smallest disjunction.
        simplified.sort_by_key(Vec::len);
        let chosen = simplified.remove(0);
        let rest: Vec<Form> = simplified.into_iter().map(Form::Or).collect();
        for disjunct in chosen {
            let mut pending = rest.clone();
            pending.push(disjunct);
            let mark = self.literals.len();
            self.cc.push();
            self.theories.iter_mut().for_each(|t| t.push());
            let closed = self.search(pending);
            self.cc.pop();
            self.theories.iter_mut().for_each(|t| t.pop());
            for literal in self.literals.drain(mark..) {
                self.literal_set.remove(&literal);
            }
            if !closed {
                return false;
            }
        }
        true
    }

    /// The Nelson–Oppen equality-exchange loop, run at a saturated leaf:
    /// each theory imports the congruence-implied (dis)equalities over its
    /// shared variables and either closes the branch or exports entailed
    /// facts, which are asserted back as branch literals; the loop iterates
    /// until a conflict, a fixpoint, or budget exhaustion.  Returns `true`
    /// when the branch closed.
    fn leaf_exchange(&mut self) -> bool {
        if self.exchange_budget.leaf_checks == 0 || !self.theories.iter().any(|t| t.is_active()) {
            return false;
        }
        self.exchange_budget.leaf_checks -= 1;
        for _ in 0..self.exchange_rounds {
            let mut exported = Vec::new();
            let mut theories = std::mem::take(&mut self.theories);
            let mut closed = false;
            for theory in &mut theories {
                match theory.check(&mut self.cc, &mut self.exchange_budget) {
                    TheoryResult::Conflict => {
                        closed = true;
                        break;
                    }
                    TheoryResult::Facts(facts) => exported.extend(facts),
                }
            }
            self.theories = theories;
            if closed {
                return true;
            }
            let before = self.literals.len();
            for fact in exported {
                if let Asserted::Closed = self.assert_literal(fact) {
                    return true;
                }
            }
            if self.cc.has_conflict() || self.arith_conflict() {
                return true;
            }
            if self.literals.len() == before {
                return false; // fixpoint without a conflict
            }
        }
        false
    }

    /// Pushes one literal onto the assertion stack, feeding it to the
    /// congruence engine and the theory solvers; reports closure on syntactic
    /// complement or eager theory conflict.
    fn assert_literal(&mut self, literal: Form) -> Asserted {
        let mut theories = std::mem::take(&mut self.theories);
        let asserted = self.assert_literal_with(&mut theories, literal);
        self.theories = theories;
        asserted
    }

    /// [`Tableau::assert_literal`] with the theory list borrowed separately,
    /// so the exchange loop can assert facts while iterating the theories.
    fn assert_literal_with(
        &mut self,
        theories: &mut [Box<dyn TheoryExchange>],
        literal: Form,
    ) -> Asserted {
        let negated = Form::not(literal.clone());
        if self.literal_set.contains(&negated) {
            return Asserted::Closed;
        }
        if !self.literal_set.insert(literal.clone()) {
            return Asserted::Open; // already on the branch
        }
        assert_into_cc(&mut self.cc, &literal);
        theories.iter_mut().for_each(|t| {
            t.assert_literal(&literal);
        });
        self.literals.push(literal);
        if self.cc.has_conflict() {
            Asserted::Closed
        } else {
            Asserted::Open
        }
    }

    /// Checks the branch's arithmetic literals for a linear-integer conflict
    /// over the current congruence classes.
    fn arith_conflict(&mut self) -> bool {
        let constraints = arith_constraints(&self.literals, self.env, &mut self.cc);
        if constraints.is_empty() {
            return false;
        }
        fm_unsatisfiable(&PForm::and(constraints))
    }
}

/// Returns `true` if the form is a literal (an atom or a negated atom).
fn is_literal(form: &Form) -> bool {
    match form {
        Form::Not(inner) => inner.is_atom(),
        other => other.is_atom(),
    }
}

/// Feeds one literal to the congruence engine: equalities merge, negated
/// equalities become disequalities, and remaining atoms are equated with the
/// boolean constants so that congruent occurrences conflict.
fn assert_into_cc(cc: &mut Congruence, literal: &Form) {
    match literal {
        Form::Eq(a, b) => cc.assert_eq(a, b),
        Form::Not(inner) => {
            if let Form::Eq(a, b) = inner.as_ref() {
                cc.assert_neq(a, b);
            } else {
                // Negative atom: equate it with false.
                cc.assert_eq(inner, &Form::FALSE);
            }
        }
        Form::Lt(..) | Form::Le(..) => {
            // Arithmetic is handled by the linear pass; also record the atom
            // as true so that p < q together with ~(p < q) conflicts via
            // congruence.
            cc.assert_eq(literal, &Form::TRUE);
        }
        other => cc.assert_eq(other, &Form::TRUE),
    }
}

/// Extracts the linear-arithmetic constraints of a literal set over the
/// congruence classes of `cc`.
fn arith_constraints(literals: &[Form], env: &SortEnv, cc: &mut Congruence) -> Vec<PForm> {
    let mut constraints: Vec<PForm> = Vec::new();
    for literal in literals {
        match literal {
            Form::Le(a, b) => {
                if let Some(expr) = linear_diff(a, b, cc) {
                    constraints.push(PForm::le(expr));
                }
            }
            Form::Lt(a, b) => {
                if let Some(expr) = linear_diff(a, b, cc) {
                    constraints.push(PForm::le(expr.shifted(1)));
                }
            }
            Form::Eq(a, b)
                if env.sort_of(a) == Sort::Int
                    || env.sort_of(b) == Sort::Int
                    || is_arith(a)
                    || is_arith(b) =>
            {
                if let Some(expr) = linear_diff(a, b, cc) {
                    constraints.push(PForm::le(expr.clone()));
                    constraints.push(PForm::le(expr.scaled(-1)));
                }
            }
            Form::Not(inner) => match inner.as_ref() {
                Form::Le(a, b) => {
                    if let Some(expr) = linear_diff(b, a, cc) {
                        constraints.push(PForm::le(expr.shifted(1)));
                    }
                }
                Form::Lt(a, b) => {
                    if let Some(expr) = linear_diff(b, a, cc) {
                        constraints.push(PForm::le(expr));
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }
    constraints
}

/// Checks whether a conjunction of ground literals is inconsistent in the
/// combined theory of equality with uninterpreted functions, the free theory
/// of field/array updates (via the eagerly added axioms), and linear integer
/// arithmetic.  Standalone entry point used by tests and diagnostics; the
/// tableau itself asserts literals incrementally instead.
pub fn theory_conflict(literals: &[Form], env: &SortEnv) -> bool {
    let mut cc = Congruence::new();
    for literal in literals {
        assert_into_cc(&mut cc, literal);
    }
    if cc.has_conflict() {
        return true;
    }
    let constraints = arith_constraints(literals, env, &mut cc);
    if constraints.is_empty() {
        return false;
    }
    fm_unsatisfiable(&PForm::and(constraints))
}

/// Linearises `a - b` into a linear expression, mapping non-arithmetic
/// sub-terms to variables named after their congruence class.
fn linear_diff(a: &Form, b: &Form, cc: &mut Congruence) -> Option<LinExpr> {
    let la = linearise(a, cc)?;
    let lb = linearise(b, cc)?;
    Some(la.plus(&lb.scaled(-1)))
}

fn is_arith(form: &Form) -> bool {
    matches!(
        form,
        Form::Add(..) | Form::Sub(..) | Form::Mul(..) | Form::Neg(_) | Form::Int(_)
    )
}

fn linearise(form: &Form, cc: &mut Congruence) -> Option<LinExpr> {
    match form {
        Form::Int(value) => Some(LinExpr::constant(*value)),
        Form::Add(a, b) => Some(linearise(a, cc)?.plus(&linearise(b, cc)?)),
        Form::Sub(a, b) => Some(linearise(a, cc)?.plus(&linearise(b, cc)?.scaled(-1))),
        Form::Neg(a) => Some(linearise(a, cc)?.scaled(-1)),
        Form::Mul(a, b) => match (a.as_ref(), b.as_ref()) {
            (Form::Int(k), other) | (other, Form::Int(k)) => Some(linearise(other, cc)?.scaled(*k)),
            _ => {
                // Non-linear multiplication: abstract the whole product.
                let class = cc.class_of(form);
                Some(LinExpr::variable(&format!("t{class}"), 1))
            }
        },
        _ => {
            let class = cc.class_of(form);
            Some(LinExpr::variable(&format!("t{class}"), 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::build_problem;
    use ipl_logic::parser::parse_form;

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        for v in ["i", "j", "k", "size", "index", "csize", "x", "y", "z"] {
            e.declare_var(v, Sort::Int);
        }
        for v in ["o", "p", "q", "a", "b", "c", "first", "elements"] {
            e.declare_var(v, Sort::Obj);
        }
        e.declare_var("next", Sort::obj_field());
        e.declare_var("content", Sort::int_obj_set());
        e.declare_var("nodes", Sort::obj_set());
        for v in ["s", "t"] {
            e.declare_var(v, Sort::obj_set());
        }
        e.declare_var("arrayState", Sort::obj_array_state());
        e
    }

    /// Convenience: does `assumptions |- goal` hold for the ground solver?
    fn proves(assumptions: &[&str], goal: &str) -> bool {
        let env = env();
        let assumptions: Vec<Form> = assumptions.iter().map(|s| parse_form(s).unwrap()).collect();
        let goal = parse_form(goal).unwrap();
        let problem = build_problem(&assumptions, &goal, &env);
        // Ground solver only: ignore quantified assumptions.
        refute(
            &problem.ground,
            &env,
            &ProverConfig::default(),
            &Cancel::never(),
        ) == GroundResult::Unsat
    }

    #[test]
    fn propositional_reasoning() {
        assert!(proves(&["p", "p --> q"], "q"));
        assert!(proves(&["p | q", "~p"], "q"));
        assert!(!proves(&["p | q"], "p"));
        assert!(proves(&["p <-> q", "q"], "p"));
    }

    #[test]
    fn equality_reasoning() {
        assert!(proves(&["a = b", "b = c"], "a = c"));
        assert!(proves(&["a = b"], "g(a) = g(b)"));
        assert!(!proves(&["a = b"], "a = c"));
        assert!(proves(&["a = b", "~(a = c)"], "~(b = c)"));
    }

    #[test]
    fn arithmetic_reasoning() {
        assert!(proves(&["0 <= i", "i < size"], "0 <= i + 1"));
        assert!(proves(&["i < size", "size <= j"], "i < j"));
        assert!(proves(&["x = y + 1"], "y < x"));
        assert!(!proves(&["x <= y"], "x < y"));
        assert!(proves(&["index < size", "~(index < size)"], "false"));
    }

    #[test]
    fn combined_euf_and_arithmetic() {
        // x = f(a), f(a) = 3 |- x >= 3
        assert!(proves(&["x = g(a)", "g(a) = 3"], "3 <= x"));
        // field reads participate: o.next = p, p = q |- o.next = q
        assert!(proves(&["o.next = p", "p = q"], "o.next = q"));
    }

    #[test]
    fn integer_disequality_case_split() {
        assert!(proves(&["0 <= i", "i <= 1", "~(i = 0)"], "i = 1"));
    }

    #[test]
    fn field_update_reasoning() {
        // newnext = next[a := v], b != a |- b.newnext = b.next
        assert!(proves(
            &["newnext = next[a := v]", "~(b = a)"],
            "b.newnext = b.next"
        ));
        // and the written cell reads back the new value
        assert!(proves(&["newnext = next[a := v]"], "a.newnext = v"));
        // but without the disequality the frame fact must not be provable
        assert!(!proves(&["newnext = next[a := v]"], "b.newnext = b.next"));
    }

    #[test]
    fn array_update_reasoning() {
        let env = env();
        let state2 = Form::array_write(
            Form::var("arrayState"),
            Form::var("elements"),
            Form::var("i"),
            Form::var("v"),
        );
        let assumption = Form::eq(Form::var("arrayState2"), state2);
        // arrayState2 = arrayState[(elements,i) := v], j != i |-
        //     arrayState2(elements, j) = arrayState(elements, j)
        let goal = Form::eq(
            Form::array_read(
                Form::var("arrayState2"),
                Form::var("elements"),
                Form::var("j"),
            ),
            Form::array_read(
                Form::var("arrayState"),
                Form::var("elements"),
                Form::var("j"),
            ),
        );
        let problem = build_problem(
            &[assumption.clone(), parse_form("~(j = i)").unwrap()],
            &goal,
            &env,
        );
        assert_eq!(
            refute(
                &problem.ground,
                &env,
                &ProverConfig::default(),
                &Cancel::never()
            ),
            GroundResult::Unsat
        );
        // Hit case.
        let goal_hit = Form::eq(
            Form::array_read(
                Form::var("arrayState2"),
                Form::var("elements"),
                Form::var("i"),
            ),
            Form::var("v"),
        );
        let problem = build_problem(&[assumption], &goal_hit, &env);
        assert_eq!(
            refute(
                &problem.ground,
                &env,
                &ProverConfig::default(),
                &Cancel::never()
            ),
            GroundResult::Unsat
        );
    }

    #[test]
    fn membership_after_set_expansion() {
        // (i, o) in {(j, e) | 0 <= j & j < size & e = q} should follow from the
        // component facts.
        assert!(proves(
            &["0 <= i", "i < size", "o = q"],
            "(i, o) in {(j, e) : int * obj | 0 <= j & j < size & e = q}"
        ));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let env = env();
        let config = ProverConfig {
            max_branch_nodes: 1,
            ..ProverConfig::default()
        };
        let assumptions = vec![parse_form("p | q").unwrap(), parse_form("~p | r").unwrap()];
        let goal = parse_form("q | r").unwrap();
        let problem = build_problem(&assumptions, &goal, &env);
        assert_eq!(
            refute(&problem.ground, &env, &config, &Cancel::never()),
            GroundResult::Unknown
        );
    }

    #[test]
    fn theory_conflict_detects_plain_contradictions() {
        let env = env();
        let literals = vec![parse_form("i < 3").unwrap(), parse_form("3 < i").unwrap()];
        assert!(theory_conflict(&literals, &env));
        let literals = vec![parse_form("i < 3").unwrap(), parse_form("i < 5").unwrap()];
        assert!(!theory_conflict(&literals, &env));
    }

    // ----- the Nelson–Oppen BAPA⇄ground exchange -----

    /// Refutes raw ground literals with the given config (bypassing
    /// preprocessing, so the literal set is exactly what the tableau sees).
    fn refute_literals(literals: &[&str], config: &ProverConfig) -> GroundResult {
        let forms: Vec<Form> = literals.iter().map(|s| parse_form(s).unwrap()).collect();
        refute(&forms, &env(), config, &Cancel::never())
    }

    #[test]
    fn exchange_closes_cardinality_branches() {
        let literals = ["card(nodes) = 0", "a in nodes"];
        assert_eq!(
            refute_literals(&literals, &ProverConfig::default()),
            GroundResult::Unsat,
            "the in-tableau BAPA theory closes the branch"
        );
        assert_eq!(
            refute_literals(&literals, &ProverConfig::without_exchange()),
            GroundResult::Unknown,
            "without the exchange the ground solver alone cannot"
        );
    }

    #[test]
    fn congruence_implied_equalities_reach_bapa() {
        // s and t are never equated by a literal — only the congruence
        // closure (via a = b) knows g(a) = g(b); the exchange must hand that
        // equality to BAPA for the conflict to appear.
        assert_eq!(
            refute_literals(
                &["a = b", "g(a) = s", "g(b) = t", "card(s) = 0", "x in t",],
                &ProverConfig::default()
            ),
            GroundResult::Unsat
        );
    }

    #[test]
    fn bapa_entailed_facts_flow_back_to_the_ground_core() {
        // BAPA entails s = emptyset from card(s) = 0; asserting it back lets
        // the congruence close g(s) = g(emptyset), conflicting with the
        // disequality.  Neither side can do this alone.
        let literals = ["card(s) = 0", "g(s) = a", "g(emptyset) = b", "~(a = b)"];
        assert_eq!(
            refute_literals(&literals, &ProverConfig::default()),
            GroundResult::Unsat
        );
        assert_eq!(
            refute_literals(&literals, &ProverConfig::without_exchange()),
            GroundResult::Unknown
        );
    }

    #[test]
    fn exchange_iterates_to_a_fixpoint_across_rounds() {
        // Round one exports s = emptyset; only then does the congruence
        // merge h(s) with h(emptyset), making p and q equal — which clashes
        // with the membership split only on the next exchange round.
        assert_eq!(
            refute_literals(
                &[
                    "card(s) = 0",
                    "h(s) = p",
                    "h(emptyset) = q",
                    "p in nodes",
                    "~(q in nodes)",
                ],
                &ProverConfig::default()
            ),
            GroundResult::Unsat
        );
    }

    #[test]
    fn exchange_facts_do_not_leak_across_branches() {
        // The first disjunct's leaf exports s = emptyset and closes; the
        // second branch is satisfiable and must not inherit that fact.
        assert_eq!(
            refute_literals(
                &["card(s) = 0 | p", "g(s) = a", "g(emptyset) = b", "~(a = b)",],
                &ProverConfig::default()
            ),
            GroundResult::Unknown
        );
    }

    #[test]
    fn exchange_budget_exhaustion_degrades_gracefully() {
        let config = ProverConfig {
            exchange: crate::ExchangeConfig {
                max_leaf_checks: 0,
                ..crate::ExchangeConfig::default()
            },
            ..ProverConfig::default()
        };
        assert_eq!(
            refute_literals(&["card(nodes) = 0", "a in nodes"], &config),
            GroundResult::Unknown,
            "no leaf checks allowed: falls back to plain ground reasoning"
        );
    }

    #[test]
    fn branch_state_is_restored_after_backtracking() {
        // A disjunction whose first branch closes by theory conflict and whose
        // second closes by a different equality: the congruence state of the
        // first branch must not leak into the second.
        assert!(proves(&["a = b | a = c", "~(a = b)", "~(a = c)"], "false"));
        // And a non-theorem exercising the same machinery must still fail.
        assert!(!proves(&["a = b | a = c"], "a = b"));
    }
}
