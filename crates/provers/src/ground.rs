//! The ground SMT-lite solver: an iterative CDCL(T) engine over the boolean
//! structure with a combined congruence-closure + linear-integer-arithmetic
//! theory check, and the Nelson–Oppen exchange loop at full assignments.
//!
//! The solver works by refutation on a set of ground formulas in NNF.  The
//! boolean structure is compiled once into a clause database over small
//! integer literal ids (atoms are interned; nested conjunctions and
//! disjunctions get Plaisted–Greenbaum proxy variables, so no formula is ever
//! re-scanned or cloned during the search).  The search itself is a modern
//! conflict-driven loop:
//!
//! * **two-watched-literal propagation** replaces the per-branch rescan of
//!   every disjunction (and the deep `rest.clone()` the recursive tableau
//!   paid at each branch point);
//! * an explicit **trail with decision levels**, kept in lockstep with
//!   [`Congruence::push`]/[`Congruence::pop`] and the
//!   [`TheoryExchange`] scopes, enables non-chronological backjumping;
//! * **conflict-driven clause learning**: propositional conflicts resolve to
//!   a first-UIP clause, and congruence conflicts are turned into clauses
//!   through the proof-forest explanations of [`crate::cc`]
//!   ([`Congruence::explain_conflict`]) — a closed branch prunes every other
//!   branch that would fail for the same reason, instead of being a bare
//!   boolean;
//! * **incremental arithmetic**: each literal is linearised once when it is
//!   asserted (over interned term ids, not congruence classes, so later
//!   merges are picked up by a cheap re-keying), the constraint stack unwinds
//!   with the trail, and the Fourier–Motzkin refutation re-runs only when the
//!   stack or the congruence generation changed.
//!
//! Theory conflicts that cannot be explained (BAPA exchange verdicts,
//! arithmetic) fall back to learning the negation of the current decisions,
//! which still prunes re-exploration and backjumps soundly.
//!
//! The search is deliberately budgeted: when the number of decisions and
//! conflicts exceeds the configured limit it gives up and reports "unknown",
//! which is how the paper's observation that large assumption bases defeat
//! the provers is reproduced.

use crate::cc::{Congruence, Implied, TermId};
use crate::exchange::{BapaExchange, ExchangeBudget, TheoryExchange, TheoryResult};
use crate::{Cancel, GroundConfig, ProverConfig};
use ipl_bapa::presburger::{id_conjunction_infeasible, IdLinExpr};
use ipl_logic::hashed::Hashed;
use ipl_logic::normal::nnf;
use ipl_logic::{Form, Sort, SortEnv};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Constraint-count give-up cap of the Fourier–Motzkin refutation, matching
/// the cap `fm_unsatisfiable` applies per DNF conjunct so the id-keyed path
/// gives the same verdicts as the string-keyed one it replaced.
const FM_MAX_CONSTRAINTS: usize = 20_000;

/// Base interval (in conflicts) of the Luby restart sequence.
const RESTART_BASE: u64 = 64;

/// Result of a refutation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroundResult {
    /// The formula set is unsatisfiable (the original sequent is valid).
    Unsat,
    /// Could not refute within budget (possibly satisfiable).
    Unknown,
}

// ---------------------------------------------------------------------------
// Search statistics
// ---------------------------------------------------------------------------

static DECISIONS: AtomicU64 = AtomicU64::new(0);
static BOOL_PROPAGATIONS: AtomicU64 = AtomicU64::new(0);
static THEORY_PROPAGATIONS: AtomicU64 = AtomicU64::new(0);
static CONFLICTS: AtomicU64 = AtomicU64::new(0);
static LEARNED: AtomicU64 = AtomicU64::new(0);
/// Cumulative CDCL search counters, process-global (flushed once per
/// [`refute`] call, so they are cheap to keep and safe under the parallel
/// verification driver).  Benchmark harnesses snapshot them around a run and
/// report the delta.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroundStats {
    /// Branching decisions taken.
    pub decisions: u64,
    /// Literals propagated by boolean unit propagation.
    pub bool_propagations: u64,
    /// Literals propagated eagerly by the congruence closure (cc-implied
    /// watched equality atoms entering the trail with proof-forest reasons).
    pub theory_propagations: u64,
    /// Conflicts analysed (propositional, congruence, arithmetic, exchange).
    pub conflicts: u64,
    /// Clauses learned and recorded in the clause database.
    pub learned_clauses: u64,
}

impl GroundStats {
    /// The counters accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &GroundStats) -> GroundStats {
        GroundStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            bool_propagations: self
                .bool_propagations
                .saturating_sub(earlier.bool_propagations),
            theory_propagations: self
                .theory_propagations
                .saturating_sub(earlier.theory_propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            learned_clauses: self.learned_clauses.saturating_sub(earlier.learned_clauses),
        }
    }

    /// All propagations, boolean and theory.
    pub fn propagations(&self) -> u64 {
        self.bool_propagations + self.theory_propagations
    }
}

/// The current process-global counters.
pub fn stats_snapshot() -> GroundStats {
    GroundStats {
        decisions: DECISIONS.load(Ordering::Relaxed),
        bool_propagations: BOOL_PROPAGATIONS.load(Ordering::Relaxed),
        theory_propagations: THEORY_PROPAGATIONS.load(Ordering::Relaxed),
        conflicts: CONFLICTS.load(Ordering::Relaxed),
        learned_clauses: LEARNED.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Attempts to refute the conjunction of the given ground formulas.
pub fn refute(
    forms: &[Form],
    env: &SortEnv,
    config: &ProverConfig,
    cancel: &Cancel,
) -> GroundResult {
    let mut solver = Solver::new(env, config, cancel);
    for form in forms {
        solver.add_form(form);
    }
    let result = solver.solve();
    DECISIONS.fetch_add(solver.n_decisions, Ordering::Relaxed);
    BOOL_PROPAGATIONS.fetch_add(solver.n_bool_propagations, Ordering::Relaxed);
    THEORY_PROPAGATIONS.fetch_add(solver.n_theory_propagations, Ordering::Relaxed);
    CONFLICTS.fetch_add(solver.n_conflicts, Ordering::Relaxed);
    LEARNED.fetch_add(solver.n_learned, Ordering::Relaxed);
    result
}

// ---------------------------------------------------------------------------
// The CDCL(T) solver
// ---------------------------------------------------------------------------

/// A literal: variable index shifted left, low bit set when negated.
type Lit = u32;

/// Truth value of a literal under the current assignment (`0` = unassigned).
fn lit_val(value: &[i8], lit: Lit) -> i8 {
    let v = value[(lit >> 1) as usize];
    if lit & 1 == 1 {
        -v
    } else {
        v
    }
}

/// The encoding of a subformula: a constant, or a literal.
enum ELit {
    True,
    False,
    L(Lit),
}

/// Why a variable is assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// Unassigned (or a root-level unit, which is never resolved).
    Undef,
    /// A branching decision.
    Decision,
    /// Propagated by this clause (its first literal is the propagated one).
    Clause(u32),
    /// Asserted by a theory (an exchange fact): unexplainable, so conflict
    /// analysis crossing it falls back to the decision clause.
    Theory,
    /// Theory-propagated: the congruence closure entailed the watched
    /// equality `a = b`.  Conflict analysis resolves through the lazy
    /// proof-forest explanation ([`Congruence::explain_terms`]), which is
    /// stable until the literal itself is popped (the explaining path was in
    /// place when the literal entered the trail, and the forest never
    /// re-routes a connected pair).
    CcEq { a: TermId, b: TermId },
    /// Theory-propagated: the watched equality `a = b` is refuted because
    /// `a ~ via_a`, `b ~ via_b` and `via_a ≠ via_b` — either an asserted
    /// disequality (`tag` is its literal) or distinct integer constants
    /// (`tag` is `None`).  The witnesses are captured at propagation time so
    /// a disequality asserted *later* between the same classes can never
    /// sneak into the explanation.
    CcNeq {
        a: TermId,
        b: TermId,
        via_a: TermId,
        via_b: TermId,
        tag: Option<Lit>,
    },
}

/// A conflict to analyse.
enum Conflict {
    /// A clause of the database is falsified.
    Clause(u32),
    /// A theory conflict explained as a set of (currently false) literals.
    Lits(Vec<Lit>),
    /// A theory conflict without an explanation: learn the decision clause.
    Opaque,
}

/// What the theory layer knows about an atom variable (proxies carry `None`).
#[derive(Debug)]
struct AtomInfo {
    /// The positive atom.
    form: Form,
    /// Its cached negation (built once, not per assertion).
    neg: Form,
    /// Arithmetic shape, decided once at interning time.
    kind: AtomKind,
}

/// Arithmetic classification of an atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AtomKind {
    /// `a <= b`.
    Le,
    /// `a < b`.
    Lt,
    /// An equality with at least one integer-sorted or arithmetic side.
    IntEq,
    /// No arithmetic content.
    Plain,
}

/// A clause over literals; `lits[0]` and `lits[1]` are watched.
#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    /// For a Plaisted–Greenbaum definition clause `[~p, e1, ..]`: the proxy
    /// `p`.  The branch/leaf test considers the clause only while `p` is
    /// assigned true — otherwise the subformula was not chosen and the
    /// clause is vacuously satisfiable, exactly like a disjunct the
    /// recursive tableau never expanded.  `None` for top-level clauses.
    relevance: Option<Lit>,
    /// Tombstone set by the learned-clause reduction sweep.  The literals are
    /// kept (an in-flight conflict may still reference them) but the clause
    /// stops watching: `bool_propagate` drops its watch entries lazily.
    deleted: bool,
}

/// One entry of the arithmetic constraint stack, unwound with the trail:
/// `(trail position of the contributing literal, end index of its constraints
/// in the pooled `arith_exprs` storage)`.  The expressions themselves live in
/// the pool so a backjump truncates a length instead of freeing buffers.
type ArithEntry = (usize, usize);

struct Solver<'a> {
    env: &'a SortEnv,
    gconf: GroundConfig,
    cancel: &'a Cancel,
    /// Remaining decisions + conflicts before the search gives up.
    budget: usize,

    // ----- the SAT core -----
    /// Atom form -> variable.
    atoms: HashMap<Hashed, usize>,
    /// Encoded non-literal subformulas -> their proxy literal.
    proxy_cache: HashMap<Hashed, Lit>,
    /// Per-variable atom data (`None` for Plaisted–Greenbaum proxies).
    infos: Vec<Option<AtomInfo>>,
    /// Assignment: `0` unassigned, `1` true, `-1` false.
    value: Vec<i8>,
    /// Decision level of the assignment.
    level: Vec<u32>,
    /// Reason of the assignment.
    reason: Vec<Reason>,
    /// VSIDS-style activity (integer: bumped on conflict, halved periodically).
    activity: Vec<u64>,
    /// Scratch marks for conflict analysis.
    seen: Vec<bool>,
    /// The clause database (input first, then learned).
    clauses: Vec<Clause>,
    /// Per-clause activity (bumped when a clause participates in conflict
    /// analysis, halved with the variable activities); drives the
    /// lowest-activity-half deletion sweeps.
    clause_activity: Vec<u64>,
    /// Number of input clauses (the prefix of `clauses`); the branch/leaf
    /// test ranges over these only — learned clauses are implied and never
    /// need satisfying.
    input_clauses: usize,
    /// Number of live (non-tombstoned) learned clauses; kept under the
    /// config cap by the reduction sweeps.
    learned_count: usize,
    /// Watch lists, indexed by literal code.
    watches: Vec<Vec<u32>>,
    /// The assignment trail.
    trail: Vec<Lit>,
    /// Trail marks at each decision.
    trail_lim: Vec<usize>,
    /// Boolean propagation cursor into the trail.
    bool_qhead: usize,
    /// Theory assertion cursor into the trail.
    theory_qhead: usize,
    /// A contradiction among the root units / clauses.
    root_conflict: bool,

    // ----- the theory layer -----
    cc: Congruence,
    theories: Vec<Box<dyn TheoryExchange>>,
    /// Per-variable bitmask: bit `2t` (`2t+1`) set when theory `t` rejected
    /// the positive (negative) literal as out-of-fragment — the probe is
    /// never repeated on later branches.
    theory_reject: Vec<u64>,
    /// The incremental arithmetic constraint stack (indices into the pool).
    arith: Vec<ArithEntry>,
    /// Pooled constraint storage: slots past `arith_exprs_len` are retired
    /// but keep their buffers, so re-use is a `clear()`, not an allocation.
    arith_exprs: Vec<IdLinExpr>,
    /// Logical length of `arith_exprs` (the live constraints).
    arith_exprs_len: usize,
    /// Pooled scratch for the class-rep re-keyed constraints of an FM check.
    rekey_buf: Vec<IdLinExpr>,
    /// `(stack length, congruence generation)` of the last clean FM check.
    arith_memo: Option<(usize, u64)>,
    /// Whether any equality atoms are registered in the congruence watch
    /// index (theory propagation is a no-op otherwise).
    tp_active: bool,
    /// `(generation, diseq stamp)` of the last theory-propagation scan; the
    /// candidate index is re-scanned only when one of them moved.
    tp_memo: Option<(u64, u64)>,
    /// Pooled scratch for [`Congruence::implied_literals`].
    implied_scratch: Vec<Implied>,
    /// Conflicts since the last restart, and the Luby-scheduled limit that
    /// triggers the next one.
    conflicts_since_restart: u64,
    restart_count: u64,
    restart_limit: u64,
    /// Fixpoint iterations of the exchange loop per leaf.
    exchange_rounds: usize,
    /// Remaining exchange budgets for this search.
    exchange_budget: ExchangeBudget,

    // ----- statistics -----
    n_decisions: u64,
    n_bool_propagations: u64,
    n_theory_propagations: u64,
    n_conflicts: u64,
    n_learned: u64,
}

impl<'a> Solver<'a> {
    fn new(env: &'a SortEnv, config: &ProverConfig, cancel: &'a Cancel) -> Self {
        let theories: Vec<Box<dyn TheoryExchange>> = if config.exchange.enabled {
            vec![Box::new(BapaExchange::default())]
        } else {
            Vec::new()
        };
        Solver {
            env,
            gconf: config.ground,
            cancel,
            budget: config.max_branch_nodes,
            atoms: HashMap::new(),
            proxy_cache: HashMap::new(),
            infos: Vec::new(),
            value: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            activity: Vec::new(),
            seen: Vec::new(),
            clauses: Vec::new(),
            clause_activity: Vec::new(),
            input_clauses: 0,
            learned_count: 0,
            watches: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            bool_qhead: 0,
            theory_qhead: 0,
            root_conflict: false,
            cc: Congruence::new(),
            theories,
            theory_reject: Vec::new(),
            arith: Vec::new(),
            arith_exprs: Vec::new(),
            arith_exprs_len: 0,
            rekey_buf: Vec::new(),
            arith_memo: None,
            tp_active: false,
            tp_memo: None,
            implied_scratch: Vec::new(),
            conflicts_since_restart: 0,
            restart_count: 0,
            restart_limit: RESTART_BASE,
            exchange_rounds: config.exchange.max_rounds,
            exchange_budget: ExchangeBudget {
                leaf_checks: config.exchange.max_leaf_checks,
                entailment_queries: config.exchange.max_entailment_queries,
            },
            n_decisions: 0,
            n_bool_propagations: 0,
            n_theory_propagations: 0,
            n_conflicts: 0,
            n_learned: 0,
        }
    }

    // ----- variables and encoding -----

    fn new_var(&mut self, info: Option<AtomInfo>) -> usize {
        let v = self.value.len();
        self.infos.push(info);
        self.value.push(0);
        self.level.push(0);
        self.reason.push(Reason::Undef);
        self.activity.push(0);
        self.seen.push(false);
        self.theory_reject.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// The positive literal of an atom, interning it on first sight.
    fn atom_lit(&mut self, form: &Form) -> Lit {
        debug_assert!(!matches!(form, Form::Bool(_) | Form::Not(_)));
        let key = Hashed::new(form.clone());
        if let Some(&v) = self.atoms.get(&key) {
            return (v as Lit) << 1;
        }
        let kind = match form {
            Form::Le(..) => AtomKind::Le,
            Form::Lt(..) => AtomKind::Lt,
            Form::Eq(a, b)
                if self.env.sort_of(a) == Sort::Int
                    || self.env.sort_of(b) == Sort::Int
                    || is_arith(a)
                    || is_arith(b) =>
            {
                AtomKind::IntEq
            }
            _ => AtomKind::Plain,
        };
        let info = AtomInfo {
            form: form.clone(),
            neg: Form::not(form.clone()),
            kind,
        };
        let v = self.new_var(Some(info));
        self.atoms.insert(key, v);
        (v as Lit) << 1
    }

    /// Compiles a subformula (in positive polarity) into a literal, creating
    /// Plaisted–Greenbaum proxies for nested boolean structure.
    fn encode(&mut self, form: &Form) -> ELit {
        match form {
            Form::Bool(b) => {
                if *b {
                    ELit::True
                } else {
                    ELit::False
                }
            }
            Form::Not(inner) => match inner.as_ref() {
                Form::Bool(b) => {
                    if *b {
                        ELit::False
                    } else {
                        ELit::True
                    }
                }
                atom if atom.is_atom() => ELit::L(self.atom_lit(atom) ^ 1),
                _ => self.encode(&nnf(form)),
            },
            Form::And(parts) => self.encode_junction(form, parts, true),
            Form::Or(parts) => self.encode_junction(form, parts, false),
            Form::Implies(..) | Form::Iff(..) => self.encode(&nnf(form)),
            atom => ELit::L(self.atom_lit(atom)),
        }
    }

    /// Encodes an `And`/`Or` node: one proxy variable defined (in the
    /// polarity that occurs) by clauses over the encoded children.  Shared
    /// subtrees reuse their proxy through the cache.
    fn encode_junction(&mut self, whole: &Form, parts: &[Form], conj: bool) -> ELit {
        let key = Hashed::new(whole.clone());
        if let Some(&lit) = self.proxy_cache.get(&key) {
            return ELit::L(lit);
        }
        let mut lits: Vec<Lit> = Vec::with_capacity(parts.len());
        for part in parts {
            match self.encode(part) {
                ELit::True => {
                    if !conj {
                        return ELit::True;
                    }
                }
                ELit::False => {
                    if conj {
                        return ELit::False;
                    }
                }
                ELit::L(l) => lits.push(l),
            }
        }
        match lits.len() {
            0 => {
                if conj {
                    ELit::True
                } else {
                    ELit::False
                }
            }
            1 => ELit::L(lits[0]),
            _ => {
                let p = (self.new_var(None) as Lit) << 1;
                if conj {
                    for &l in &lits {
                        self.add_clause_guarded(vec![p ^ 1, l], Some(p));
                    }
                } else {
                    let mut clause = Vec::with_capacity(lits.len() + 1);
                    clause.push(p ^ 1);
                    clause.extend(lits);
                    self.add_clause_guarded(clause, Some(p));
                }
                self.proxy_cache.insert(key, p);
                ELit::L(p)
            }
        }
    }

    /// Adds one input formula: conjunctions split into units, top-level
    /// disjunctions become clauses directly, everything else encodes.
    fn add_form(&mut self, form: &Form) {
        match form {
            Form::Bool(true) => {}
            Form::Bool(false) => self.root_conflict = true,
            Form::And(parts) => {
                for part in parts {
                    self.add_form(part);
                }
            }
            Form::Or(parts) => {
                let mut clause: Vec<Lit> = Vec::with_capacity(parts.len());
                for part in parts {
                    match self.encode(part) {
                        ELit::True => return, // satisfied clause
                        ELit::False => {}
                        ELit::L(l) => {
                            if clause.contains(&(l ^ 1)) {
                                return; // tautology
                            }
                            if !clause.contains(&l) {
                                clause.push(l);
                            }
                        }
                    }
                }
                match clause.len() {
                    0 => self.root_conflict = true,
                    1 => {
                        if !self.enqueue(clause[0], Reason::Undef) {
                            self.root_conflict = true;
                        }
                    }
                    _ => self.add_clause(clause),
                }
            }
            Form::Implies(..) | Form::Iff(..) => self.add_form(&nnf(form)),
            Form::Not(inner) if !inner.is_atom() => self.add_form(&nnf(form)),
            literal => match self.encode(literal) {
                ELit::True => {}
                ELit::False => self.root_conflict = true,
                ELit::L(l) => {
                    if !self.enqueue(l, Reason::Undef) {
                        self.root_conflict = true;
                    }
                }
            },
        }
    }

    fn add_clause(&mut self, lits: Vec<Lit>) {
        self.add_clause_guarded(lits, None);
    }

    fn add_clause_guarded(&mut self, lits: Vec<Lit>, relevance: Option<Lit>) {
        debug_assert!(lits.len() >= 2);
        let ci = self.clauses.len() as u32;
        self.watches[lits[0] as usize].push(ci);
        self.watches[lits[1] as usize].push(ci);
        self.clauses.push(Clause {
            lits,
            relevance,
            deleted: false,
        });
        self.clause_activity.push(0);
    }

    // ----- assignment and propagation -----

    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Assigns a literal true.  Returns `false` when it is already false.
    fn enqueue(&mut self, lit: Lit, reason: Reason) -> bool {
        match lit_val(&self.value, lit) {
            1 => true,
            -1 => false,
            _ => {
                let v = (lit >> 1) as usize;
                self.value[v] = if lit & 1 == 0 { 1 } else { -1 };
                self.level[v] = self.current_level();
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Boolean and theory propagation to a fixpoint: watched-literal unit
    /// propagation, theory assertion of each new trail literal, and — once
    /// both are quiescent — the eager congruence scan that enqueues watched
    /// equality atoms the current classes already decide.
    fn propagate(&mut self) -> Option<Conflict> {
        loop {
            if let Some(conflict) = self.bool_propagate() {
                return Some(conflict);
            }
            if self.theory_qhead < self.trail.len() {
                let lit = self.trail[self.theory_qhead];
                let pos = self.theory_qhead;
                self.theory_qhead += 1;
                if let Some(conflict) = self.theory_assert(lit, pos) {
                    return Some(conflict);
                }
                continue;
            }
            if self.theory_propagate() {
                continue;
            }
            return None;
        }
    }

    /// Eager theory propagation: asks the congruence closure which watched
    /// equality atoms its classes now entail and enqueues them with
    /// proof-forest reasons, so first-UIP learning resolves through them like
    /// clause propagations instead of rediscovering the equalities at
    /// conflicts.  Returns `true` when any literal entered the trail.
    fn theory_propagate(&mut self) -> bool {
        if !self.tp_active {
            return false;
        }
        let stamp = (self.cc.generation(), self.cc.diseq_stamp());
        if self.tp_memo == Some(stamp) {
            return false;
        }
        self.tp_memo = Some(stamp);
        let mut implied = std::mem::take(&mut self.implied_scratch);
        implied.clear();
        self.cc.implied_literals(&mut implied);
        let mut progress = false;
        for imp in &implied {
            let lit = if imp.equal { imp.tag } else { imp.tag ^ 1 };
            if lit_val(&self.value, lit) != 0 {
                continue; // already assigned (either way: a false one is a
                          // conflict the theory assertion path will raise)
            }
            let reason = if imp.equal {
                Reason::CcEq { a: imp.a, b: imp.b }
            } else {
                let (via_a, via_b, tag) = imp.via.expect("disequal implications carry witnesses");
                Reason::CcNeq {
                    a: imp.a,
                    b: imp.b,
                    via_a,
                    via_b,
                    tag,
                }
            };
            self.enqueue(lit, reason);
            self.n_theory_propagations += 1;
            progress = true;
        }
        self.implied_scratch = implied;
        progress
    }

    /// Two-watched-literal unit propagation.
    fn bool_propagate(&mut self) -> Option<Conflict> {
        while self.bool_qhead < self.trail.len() {
            let lit = self.trail[self.bool_qhead];
            self.bool_qhead += 1;
            let false_lit = lit ^ 1;
            let mut ws = std::mem::take(&mut self.watches[false_lit as usize]);
            let mut i = 0;
            'clauses: while i < ws.len() {
                let ci = ws[i] as usize;
                if self.clauses[ci].deleted {
                    ws.swap_remove(i); // lazy watch removal of a tombstone
                    continue;
                }
                // Make sure the false literal sits at index 1.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if lit_val(&self.value, first) == 1 {
                    i += 1; // satisfied: keep watching
                    continue;
                }
                // Look for a non-false replacement watch.
                for k in 2..self.clauses[ci].lits.len() {
                    if lit_val(&self.value, self.clauses[ci].lits[k]) != -1 {
                        self.clauses[ci].lits.swap(1, k);
                        let new_watch = self.clauses[ci].lits[1];
                        self.watches[new_watch as usize].push(ci as u32);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                // Unit or conflict.
                if lit_val(&self.value, first) == -1 {
                    self.watches[false_lit as usize] = ws;
                    return Some(Conflict::Clause(ci as u32));
                }
                self.enqueue(first, Reason::Clause(ci as u32));
                self.n_bool_propagations += 1;
                i += 1;
            }
            self.watches[false_lit as usize] = ws;
        }
        None
    }

    /// Feeds one newly assigned literal to the theory layer: the congruence
    /// engine (tagged for explanations), the arithmetic stack, and the
    /// exchange theories.
    fn theory_assert(&mut self, lit: Lit, trail_pos: usize) -> Option<Conflict> {
        let v = (lit >> 1) as usize;
        let Some(info) = &self.infos[v] else {
            return None; // proxy: no theory content
        };
        let positive = lit & 1 == 0;
        let form = info.form.clone();
        let neg = info.neg.clone();
        let kind = info.kind;
        // Congruence: equalities merge, negated equalities become
        // disequalities, and remaining atoms are equated with the boolean
        // constants so that congruent occurrences conflict.  A literal the
        // congruence closure itself propagated is *not* re-asserted: the fact
        // is already entailed, and re-asserting a propagated disequality
        // would record a disequality entry tagged with the literal's own id —
        // a self-explanation a later lazy scan could pick up.
        let cc_propagated = matches!(self.reason[v], Reason::CcEq { .. } | Reason::CcNeq { .. });
        if !cc_propagated {
            match (&form, positive) {
                (Form::Eq(a, b), true) => self.cc.assert_eq_tagged(a, b, lit),
                (Form::Eq(a, b), false) => self.cc.assert_neq_tagged(a, b, lit),
                (_, true) => self.cc.assert_eq_tagged(&form, &Form::TRUE, lit),
                (_, false) => self.cc.assert_eq_tagged(&form, &Form::FALSE, lit),
            }
        }
        // Arithmetic: linearise once, now, into the pooled constraint
        // storage; the stack unwinds with the trail by truncating lengths.
        let exprs_start = self.arith_exprs_len;
        self.push_arith_exprs(&form, kind, positive);
        if self.arith_exprs_len > exprs_start {
            self.arith.push((trail_pos, self.arith_exprs_len));
        }
        // Exchange theories, with the out-of-fragment verdict cached per
        // polarity so the probe happens once per atom, not once per branch.
        // Literals propagated from *learned* clauses are withheld: they are
        // implied, so the leaf checks stay sound without them, and offering
        // them would hand the (worst-case exponential) Venn translation a
        // strictly larger atom set than the branch the recursive tableau
        // would have explored.
        let from_learned =
            matches!(self.reason[v], Reason::Clause(ci) if ci as usize >= self.input_clauses);
        if !from_learned {
            let bit = if positive { 1u64 } else { 2u64 };
            for t in 0..self.theories.len() {
                let mask = bit << (2 * t);
                if self.theory_reject[v] & mask != 0 {
                    continue;
                }
                let offered = if positive { &form } else { &neg };
                if !self.theories[t].assert_literal(offered) {
                    self.theory_reject[v] |= mask;
                }
            }
        }
        if self.cc.has_conflict() {
            return Some(match self.cc.explain_conflict() {
                Some(tags) => Conflict::Lits(tags.into_iter().map(|t| t ^ 1).collect()),
                None => Conflict::Opaque,
            });
        }
        None
    }

    // ----- arithmetic -----

    /// Claims the next pooled constraint slot (cleared, allocation reused)
    /// and returns its index.
    fn arith_slot(&mut self) -> usize {
        let i = self.arith_exprs_len;
        if i == self.arith_exprs.len() {
            self.arith_exprs.push(IdLinExpr::default());
        } else {
            self.arith_exprs[i].clear();
        }
        self.arith_exprs_len = i + 1;
        i
    }

    /// Fills a fresh pooled slot with the canonicalised `x - y + shift`.
    fn arith_diff_into(&mut self, x: &Form, y: &Form, shift: i64) -> usize {
        let slot = self.arith_slot();
        let mut out = std::mem::take(&mut self.arith_exprs[slot]);
        self.lin_into(x, 1, &mut out);
        self.lin_into(y, -1, &mut out);
        out.canonicalize();
        out.shift(shift);
        self.arith_exprs[slot] = out;
        slot
    }

    /// Appends the `expr <= 0` constraints an atom contributes at a polarity
    /// to the pooled storage.
    fn push_arith_exprs(&mut self, form: &Form, kind: AtomKind, positive: bool) {
        let (a, b) = match form {
            Form::Le(a, b) | Form::Lt(a, b) | Form::Eq(a, b) => (a.clone(), b.clone()),
            _ => return,
        };
        match (kind, positive) {
            (AtomKind::Le, true) => {
                self.arith_diff_into(&a, &b, 0);
            }
            (AtomKind::Le, false) => {
                self.arith_diff_into(&b, &a, 1);
            }
            (AtomKind::Lt, true) => {
                self.arith_diff_into(&a, &b, 1);
            }
            (AtomKind::Lt, false) => {
                self.arith_diff_into(&b, &a, 0);
            }
            (AtomKind::IntEq, true) => {
                let first = self.arith_diff_into(&a, &b, 0);
                let second = self.arith_slot(); // always > first
                let (head, tail) = self.arith_exprs.split_at_mut(second);
                tail[0].clone_from(&head[first]);
                tail[0].scale(-1);
            }
            _ => {}
        }
    }

    /// Accumulates `k * form` into a linear expression over term ids (the
    /// caller canonicalises once at the end).  Total: every non-arithmetic
    /// subterm (including non-linear products) is abstracted by its interned
    /// id, so linearisation cannot fail.
    fn lin_into(&mut self, form: &Form, k: i64, out: &mut IdLinExpr) {
        match form {
            Form::Int(value) => out.constant += k * value,
            Form::Add(a, b) => {
                self.lin_into(a, k, out);
                self.lin_into(b, k, out);
            }
            Form::Sub(a, b) => {
                self.lin_into(a, k, out);
                self.lin_into(b, -k, out);
            }
            Form::Neg(a) => self.lin_into(a, -k, out),
            Form::Mul(a, b) => match (a.as_ref(), b.as_ref()) {
                (Form::Int(c), other) | (other, Form::Int(c)) => self.lin_into(other, k * c, out),
                // Non-linear multiplication: abstract the whole product.
                _ => out.push_term(self.cc.intern(form), k),
            },
            other => out.push_term(self.cc.intern(other), k),
        }
    }

    /// Checks the asserted arithmetic constraints for a linear-integer
    /// conflict over the current congruence classes.  Re-runs only when the
    /// constraint stack or the class structure changed since the last check.
    /// Re-keying an assert-time id onto its class representative is a
    /// `find` + integer push into a pooled buffer — no strings, no hashing,
    /// no allocation once the pools are warm.
    fn arith_conflict(&mut self) -> bool {
        if self.arith.is_empty() {
            return false;
        }
        self.cc.close();
        let state = (self.arith.len(), self.cc.generation());
        if self.arith_memo == Some(state) {
            return false;
        }
        let n = self.arith_exprs_len;
        while self.rekey_buf.len() < n {
            self.rekey_buf.push(IdLinExpr::default());
        }
        for i in 0..n {
            self.rekey_buf[i].clear();
            self.rekey_buf[i].constant = self.arith_exprs[i].constant;
            for &(id, k) in self.arith_exprs[i].terms() {
                self.rekey_buf[i].push_term(self.cc.find(id), k);
            }
            self.rekey_buf[i].canonicalize();
        }
        if id_conjunction_infeasible(&self.rekey_buf[..n], FM_MAX_CONSTRAINTS) {
            true
        } else {
            self.arith_memo = Some(state);
            false
        }
    }

    // ----- branching, backjumping, learning -----

    /// Picks the next decision: the highest-activity unassigned literal of
    /// the first input clause no current literal satisfies.  When every
    /// input clause is satisfied the partial assignment is a saturated
    /// branch in the old tableau's sense — the remaining atoms are don't-
    /// cares and are *not* forced onto the theories, which keeps the leaf
    /// checks as small as the recursive engine's.
    fn pick_branch(&self) -> Option<Lit> {
        // The most constrained clause first (the recursive tableau branched
        // on the smallest simplified disjunction — the ordering matters for
        // tree size), then its highest-activity unassigned literal.
        let mut best: Option<(usize, Lit)> = None;
        for clause in &self.clauses[..self.input_clauses] {
            if let Some(p) = clause.relevance {
                if lit_val(&self.value, p) != 1 {
                    continue; // unchosen subformula: vacuously satisfiable
                }
            }
            let mut open = 0usize;
            let mut candidate: Option<Lit> = None;
            let mut satisfied = false;
            for &l in &clause.lits {
                match lit_val(&self.value, l) {
                    1 => {
                        satisfied = true;
                        break;
                    }
                    -1 => {}
                    _ => {
                        open += 1;
                        match candidate {
                            Some(b)
                                if self.activity[(l >> 1) as usize]
                                    <= self.activity[(b >> 1) as usize] => {}
                            _ => candidate = Some(l),
                        }
                    }
                }
            }
            if satisfied {
                continue;
            }
            debug_assert!(
                candidate.is_some(),
                "an all-false clause survived propagation"
            );
            if best.is_none_or(|(width, _)| open < width) {
                let lit = candidate.expect("non-false literal present");
                if open == 2 {
                    return Some(lit); // no unsatisfied clause can be smaller
                }
                best = Some((open, lit));
            }
        }
        best.map(|(_, lit)| lit)
    }

    fn decide(&mut self, lit: Lit) {
        self.n_decisions += 1;
        self.trail_lim.push(self.trail.len());
        self.cc.push();
        for t in &mut self.theories {
            t.push();
        }
        let ok = self.enqueue(lit, Reason::Decision);
        debug_assert!(ok, "decision literals are unassigned");
    }

    /// Unassigns everything above the given decision level, restoring the
    /// congruence, theory and arithmetic state in lockstep.
    fn backtrack(&mut self, target: u32) {
        let target = target as usize;
        if self.trail_lim.len() <= target {
            return;
        }
        let mark = self.trail_lim[target];
        for &lit in &self.trail[mark..] {
            let v = (lit >> 1) as usize;
            self.value[v] = 0;
            self.reason[v] = Reason::Undef;
        }
        self.trail.truncate(mark);
        self.trail_lim.truncate(target);
        self.bool_qhead = mark;
        self.theory_qhead = mark;
        while self.arith.last().is_some_and(|&(pos, _)| pos >= mark) {
            self.arith.pop();
        }
        // Retire the popped entries' constraints: the pool keeps the buffers,
        // only the logical length rewinds.
        self.arith_exprs_len = self.arith.last().map_or(0, |&(_, end)| end);
        self.cc.pop_to(target);
        for t in &mut self.theories {
            t.pop_to(target);
        }
    }

    /// Learns from a conflict and backjumps.  Returns `false` when the
    /// contradiction holds at the root (the refutation succeeded).
    fn resolve_conflict(&mut self, conflict: Conflict) -> bool {
        self.n_conflicts += 1;
        self.conflicts_since_restart += 1;
        if self.gconf.activity_decay_interval > 0
            && self
                .n_conflicts
                .is_multiple_of(self.gconf.activity_decay_interval as u64)
        {
            for a in &mut self.activity {
                *a >>= 1;
            }
            for a in &mut self.clause_activity {
                *a >>= 1;
            }
        }
        if self.gconf.learning
            && self.gconf.deletion_interval > 0
            && self
                .n_conflicts
                .is_multiple_of(self.gconf.deletion_interval as u64)
        {
            self.reduce_learned();
        }
        if self.current_level() == 0 {
            return false;
        }
        if self.gconf.learning {
            match self.analyze(conflict) {
                Analyzed::Root => return false,
                Analyzed::Learned(learnt, backjump) => {
                    self.backtrack(backjump);
                    let reason = self.record_learnt(&learnt);
                    let ok = self.enqueue(learnt[0], reason);
                    debug_assert!(ok, "the asserting literal is unassigned after backjump");
                    return true;
                }
                Analyzed::Fallback => {}
            }
        }
        // Decision-negation fallback (also the no-learning ablation): under
        // d1 .. d_{L-1} the decision d_L is contradictory, so flip it.
        let decisions: Vec<Lit> = self.trail_lim.iter().map(|&pos| self.trail[pos]).collect();
        let mut learnt = Vec::with_capacity(decisions.len());
        learnt.push(decisions[decisions.len() - 1] ^ 1);
        for &d in decisions[..decisions.len() - 1].iter().rev() {
            learnt.push(d ^ 1);
        }
        self.backtrack(self.current_level() - 1);
        let reason = if self.gconf.learning {
            self.record_learnt(&learnt)
        } else {
            Reason::Theory
        };
        let ok = self.enqueue(learnt[0], reason);
        debug_assert!(ok, "the flipped decision is unassigned after backtracking");
        true
    }

    /// Records a learned clause and returns the reason to attach to its
    /// asserting literal.  The clause cap is live: reaching it triggers a
    /// reduction sweep, and only if the sweep frees nothing (everything
    /// locked) is the clause dropped.
    fn record_learnt(&mut self, learnt: &[Lit]) -> Reason {
        if learnt.len() < 2 {
            return Reason::Theory;
        }
        if self.learned_count >= self.gconf.max_learned_clauses {
            self.reduce_learned();
            if self.learned_count >= self.gconf.max_learned_clauses {
                return Reason::Theory;
            }
        }
        let ci = self.clauses.len() as u32;
        self.watches[learnt[0] as usize].push(ci);
        self.watches[learnt[1] as usize].push(ci);
        self.clauses.push(Clause {
            lits: learnt.to_vec(),
            relevance: None,
            deleted: false,
        });
        // A fresh clause starts at the current maximum so it survives the
        // next sweep long enough to prove itself.
        let start = self
            .clause_activity
            .iter()
            .skip(self.input_clauses)
            .copied()
            .max()
            .unwrap_or(0);
        self.clause_activity.push(start);
        self.learned_count += 1;
        self.n_learned += 1;
        Reason::Clause(ci)
    }

    /// Activity-based learned-clause deletion: tombstones the lower-activity
    /// half of the unlocked learned clauses.  Locked clauses (the reason of a
    /// trail literal) are untouchable — analysis may still resolve through
    /// them.  Watch entries of tombstones are dropped lazily by
    /// `bool_propagate`; the literals stay so an in-flight conflict reference
    /// remains readable.
    fn reduce_learned(&mut self) {
        let mut candidates: Vec<u32> = (self.input_clauses..self.clauses.len())
            .filter(|&ci| !self.clauses[ci].deleted)
            .map(|ci| ci as u32)
            .collect();
        if candidates.len() < 2 {
            return;
        }
        let locked: std::collections::HashSet<u32> = self
            .trail
            .iter()
            .filter_map(|&lit| match self.reason[(lit >> 1) as usize] {
                Reason::Clause(ci) if ci as usize >= self.input_clauses => Some(ci),
                _ => None,
            })
            .collect();
        candidates.retain(|ci| !locked.contains(ci));
        candidates.sort_by_key(|&ci| self.clause_activity[ci as usize]);
        for &ci in &candidates[..candidates.len() / 2] {
            self.clauses[ci as usize].deleted = true;
            self.learned_count -= 1;
        }
    }

    /// First-UIP conflict analysis.  Theory-propagated literals resolve
    /// through their lazy congruence explanations exactly like clause
    /// reasons: the explaining literals were all on the trail before the
    /// propagated one, so the backwards walk stays well-founded.
    fn analyze(&mut self, conflict: Conflict) -> Analyzed {
        let mut src: Vec<Lit> = match conflict {
            Conflict::Clause(ci) => {
                self.clause_activity[ci as usize] += 1;
                self.clauses[ci as usize].lits.clone()
            }
            Conflict::Lits(lits) => lits,
            Conflict::Opaque => return Analyzed::Fallback,
        };
        // A theory conflict may live entirely below the current level (e.g. a
        // congruence discovered while interning): move down to its level
        // first — the clause is still falsified there.
        let conflict_level = src
            .iter()
            .map(|&l| self.level[(l >> 1) as usize])
            .max()
            .unwrap_or(0);
        if conflict_level == 0 {
            return Analyzed::Root;
        }
        if conflict_level < self.current_level() {
            self.backtrack(conflict_level);
        }
        let current = self.current_level();
        let mut learnt: Vec<Lit> = vec![0];
        let mut to_clear: Vec<usize> = Vec::new();
        let mut counter = 0usize;
        let mut idx = self.trail.len();
        let mut aborted = false;
        loop {
            for &q in &src {
                let v = (q >> 1) as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    to_clear.push(v);
                    self.activity[v] += 1;
                    if self.level[v] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk back to the next marked literal of the current level.
            loop {
                idx -= 1;
                if self.seen[(self.trail[idx] >> 1) as usize] {
                    break;
                }
            }
            let p = self.trail[idx];
            let pv = (p >> 1) as usize;
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p ^ 1;
                break;
            }
            match self.reason[pv] {
                Reason::Clause(ci) => {
                    // The propagated literal is lits[0]; resolve on the rest.
                    self.clause_activity[ci as usize] += 1;
                    src = self.clauses[ci as usize].lits[1..].to_vec();
                }
                Reason::CcEq { a, b } => match self.cc.explain_terms(a, b) {
                    // The explanation is the set of asserted literals whose
                    // merges connected the pair; they are false in the
                    // implicit clause `tags -> p`, i.e. negated in `src`.
                    Some(tags) => src = tags.into_iter().map(|t| t ^ 1).collect(),
                    None => {
                        aborted = true;
                        break;
                    }
                },
                Reason::CcNeq {
                    a,
                    b,
                    via_a,
                    via_b,
                    tag,
                } => {
                    let mut explained = false;
                    if let Some(mut tags) = self.cc.explain_terms(a, via_a) {
                        if let Some(more) = self.cc.explain_terms(b, via_b) {
                            tags.extend(more);
                            if let Some(t) = tag {
                                if !tags.contains(&t) {
                                    tags.push(t);
                                }
                            }
                            src = tags.into_iter().map(|t| t ^ 1).collect();
                            explained = true;
                        }
                    }
                    if !explained {
                        aborted = true;
                        break;
                    }
                }
                _ => {
                    // A theory-asserted fact (or a decision, which cannot
                    // happen while counter > 0): no clause to resolve on.
                    aborted = true;
                    break;
                }
            }
        }
        for v in to_clear {
            self.seen[v] = false;
        }
        if aborted {
            return Analyzed::Fallback;
        }
        // Backjump to the deepest level among the remaining literals, which
        // must sit at index 1 to satisfy the watch invariant.
        let mut backjump = 0u32;
        let mut pos = 1usize;
        for (i, &l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[(l >> 1) as usize];
            if lv > backjump {
                backjump = lv;
                pos = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, pos);
        }
        Analyzed::Learned(learnt, backjump)
    }

    // ----- the saturated leaf: theory exchange -----

    /// The Nelson–Oppen equality-exchange loop, run at a full assignment:
    /// each theory imports the congruence-implied (dis)equalities over its
    /// shared variables and either closes the branch or exports entailed
    /// facts, which enter the trail as theory-asserted literals; the loop
    /// iterates until a conflict, a fixpoint, or budget exhaustion.
    fn leaf_exchange(&mut self) -> Option<Conflict> {
        if self.exchange_budget.leaf_checks == 0 || !self.theories.iter().any(|t| t.is_active()) {
            return None;
        }
        self.exchange_budget.leaf_checks -= 1;
        for _ in 0..self.exchange_rounds {
            let mut exported = Vec::new();
            let mut theories = std::mem::take(&mut self.theories);
            let mut closed = false;
            for theory in &mut theories {
                match theory.check(&mut self.cc, &mut self.exchange_budget) {
                    TheoryResult::Conflict => {
                        closed = true;
                        break;
                    }
                    TheoryResult::Facts(facts) => exported.extend(facts),
                }
            }
            self.theories = theories;
            if closed {
                return Some(Conflict::Opaque);
            }
            let before = self.trail.len();
            for fact in exported {
                if let Some(conflict) = self.assert_fact(fact) {
                    return Some(conflict);
                }
            }
            if let Some(conflict) = self.propagate() {
                return Some(conflict);
            }
            if self.arith_conflict() {
                return Some(Conflict::Opaque);
            }
            if self.trail.len() == before {
                return None; // fixpoint without a conflict
            }
        }
        None
    }

    /// Asserts one exchange-exported fact as a theory-reasoned literal.
    fn assert_fact(&mut self, fact: Form) -> Option<Conflict> {
        let lit = match self.encode(&fact) {
            ELit::True => return None,
            ELit::False => return Some(Conflict::Opaque),
            ELit::L(l) => l,
        };
        if !self.enqueue(lit, Reason::Theory) {
            // The fact contradicts the current assignment: the branch closes,
            // but no clause-level explanation is available.
            return Some(Conflict::Opaque);
        }
        None
    }

    // ----- the main loop -----

    fn solve(&mut self) -> GroundResult {
        self.input_clauses = self.clauses.len();
        // Register every equality atom in the congruence watch index, at
        // depth 0 so the interned ids outlive every backjump.  Atoms created
        // mid-search (exchange facts) are not watched: their terms would be
        // truncated by `pop`, and the exchange path handles them already.
        if self.gconf.theory_propagation {
            for v in 0..self.infos.len() {
                if let Some(info) = &self.infos[v] {
                    if let Form::Eq(a, b) = &info.form {
                        let (a, b) = (a.clone(), b.clone());
                        self.cc.watch_pair(&a, &b, (v as Lit) << 1);
                        self.tp_active = true;
                    }
                }
            }
        }
        loop {
            if self.budget == 0 {
                // Budget exhaustion, not saturation: this Unknown could flip
                // with a bigger budget, which is what the retry ladder keys on.
                crate::note_budget_exhausted();
                return GroundResult::Unknown;
            }
            self.budget -= 1;
            // Poll the deadline once every 64 steps: cheap enough to leave
            // the loop unaffected, frequent enough that a timed-out search
            // unwinds within microseconds.
            if self.budget.is_multiple_of(64) && self.cancel.is_cancelled() {
                crate::note_budget_exhausted();
                return GroundResult::Unknown;
            }
            if self.root_conflict {
                return GroundResult::Unsat;
            }
            if let Some(conflict) = self.propagate() {
                if !self.resolve_conflict(conflict) {
                    return GroundResult::Unsat;
                }
                continue;
            }
            // Eager arithmetic at every quiescent point (the recursive
            // tableau ran Fourier–Motzkin at every branch node); the memo
            // makes unchanged re-checks free.
            if self.arith_conflict() {
                if !self.resolve_conflict(Conflict::Opaque) {
                    return GroundResult::Unsat;
                }
                continue;
            }
            // Luby-scheduled restart: back to the root, keeping the learned
            // clauses and activities (checked only at quiescent points, so a
            // restart never abandons an in-flight propagation).
            if self.gconf.restarts
                && self.conflicts_since_restart >= self.restart_limit
                && self.current_level() > 0
            {
                self.conflicts_since_restart = 0;
                self.restart_count += 1;
                self.restart_limit = RESTART_BASE * luby(self.restart_count);
                self.backtrack(0);
                continue;
            }
            match self.pick_branch() {
                Some(lit) => self.decide(lit),
                None => {
                    // Every input clause is satisfied: the saturated leaf.
                    // The last word goes to the theory combination before
                    // the branch is declared open.
                    match self.leaf_exchange() {
                        Some(conflict) => {
                            if !self.resolve_conflict(conflict) {
                                return GroundResult::Unsat;
                            }
                        }
                        None => return GroundResult::Unknown,
                    }
                }
            }
        }
    }
}

/// Outcome of first-UIP analysis.
enum Analyzed {
    /// The learned clause and the level to backjump to.
    Learned(Vec<Lit>, u32),
    /// The conflict holds at the root: the refutation succeeded.
    Root,
    /// No clause derivable (an unexplained theory step): learn the decision
    /// clause instead.
    Fallback,
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...): the value at
/// 0-based index `x`, computed the classic MiniSat way.
fn luby(mut x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

// ---------------------------------------------------------------------------
// Shared literal-level helpers (also used by the standalone checker)
// ---------------------------------------------------------------------------

/// Returns `true` if the form is a literal (an atom or a negated atom).
fn is_literal(form: &Form) -> bool {
    match form {
        Form::Not(inner) => inner.is_atom(),
        other => other.is_atom(),
    }
}

/// Feeds one literal to the congruence engine: equalities merge, negated
/// equalities become disequalities, and remaining atoms are equated with the
/// boolean constants so that congruent occurrences conflict.
fn assert_into_cc(cc: &mut Congruence, literal: &Form) {
    match literal {
        Form::Eq(a, b) => cc.assert_eq(a, b),
        Form::Not(inner) => {
            if let Form::Eq(a, b) = inner.as_ref() {
                cc.assert_neq(a, b);
            } else {
                // Negative atom: equate it with false.
                cc.assert_eq(inner, &Form::FALSE);
            }
        }
        Form::Lt(..) | Form::Le(..) => {
            // Arithmetic is handled by the linear pass; also record the atom
            // as true so that p < q together with ~(p < q) conflicts via
            // congruence.
            cc.assert_eq(literal, &Form::TRUE);
        }
        other => cc.assert_eq(other, &Form::TRUE),
    }
}

/// Extracts the linear-arithmetic constraints (`expr <= 0` each) of a
/// literal set over the congruence classes of `cc`, keyed by class id.
fn arith_constraints(literals: &[Form], env: &SortEnv, cc: &mut Congruence) -> Vec<IdLinExpr> {
    let mut constraints: Vec<IdLinExpr> = Vec::new();
    for literal in literals {
        match literal {
            Form::Le(a, b) => constraints.push(linear_diff(a, b, 0, cc)),
            Form::Lt(a, b) => constraints.push(linear_diff(a, b, 1, cc)),
            Form::Eq(a, b)
                if env.sort_of(a) == Sort::Int
                    || env.sort_of(b) == Sort::Int
                    || is_arith(a)
                    || is_arith(b) =>
            {
                let expr = linear_diff(a, b, 0, cc);
                let mut neg = expr.clone();
                neg.scale(-1);
                constraints.push(expr);
                constraints.push(neg);
            }
            Form::Not(inner) => match inner.as_ref() {
                Form::Le(a, b) => constraints.push(linear_diff(b, a, 1, cc)),
                Form::Lt(a, b) => constraints.push(linear_diff(b, a, 0, cc)),
                _ => {}
            },
            _ => {}
        }
    }
    constraints
}

/// Checks whether a conjunction of ground literals is inconsistent in the
/// combined theory of equality with uninterpreted functions, the free theory
/// of field/array updates (via the eagerly added axioms), and linear integer
/// arithmetic.  Standalone entry point used by tests, diagnostics and the
/// naive reference solver; the CDCL engine asserts literals incrementally
/// instead.
pub fn theory_conflict(literals: &[Form], env: &SortEnv) -> bool {
    let mut cc = Congruence::new();
    for literal in literals {
        assert_into_cc(&mut cc, literal);
    }
    if cc.has_conflict() {
        return true;
    }
    let constraints = arith_constraints(literals, env, &mut cc);
    if constraints.is_empty() {
        return false;
    }
    id_conjunction_infeasible(&constraints, FM_MAX_CONSTRAINTS)
}

/// Linearises `a - b + shift` into a canonical id-keyed expression, mapping
/// non-arithmetic sub-terms to their congruence class ids (no string names,
/// no per-coefficient allocation).
fn linear_diff(a: &Form, b: &Form, shift: i64, cc: &mut Congruence) -> IdLinExpr {
    let mut out = IdLinExpr::default();
    linearise(a, 1, cc, &mut out);
    linearise(b, -1, cc, &mut out);
    out.canonicalize();
    out.shift(shift);
    out
}

fn is_arith(form: &Form) -> bool {
    matches!(
        form,
        Form::Add(..) | Form::Sub(..) | Form::Mul(..) | Form::Neg(_) | Form::Int(_)
    )
}

/// Accumulates `k * form` over congruence-class ids.  Total: every
/// non-arithmetic subterm (including non-linear products) is abstracted by
/// its class id, so linearisation cannot fail.
fn linearise(form: &Form, k: i64, cc: &mut Congruence, out: &mut IdLinExpr) {
    match form {
        Form::Int(value) => out.constant += k * value,
        Form::Add(a, b) => {
            linearise(a, k, cc, out);
            linearise(b, k, cc, out);
        }
        Form::Sub(a, b) => {
            linearise(a, k, cc, out);
            linearise(b, -k, cc, out);
        }
        Form::Neg(a) => linearise(a, -k, cc, out),
        Form::Mul(a, b) => match (a.as_ref(), b.as_ref()) {
            (Form::Int(c), other) | (other, Form::Int(c)) => linearise(other, k * c, cc, out),
            // Non-linear multiplication: abstract the whole product.
            _ => out.push_term(cc.class_of(form), k),
        },
        other => out.push_term(cc.class_of(other), k),
    }
}

// ---------------------------------------------------------------------------
// The retained naive DPLL reference
// ---------------------------------------------------------------------------

/// The retained naive recursive DPLL: the pre-CDCL tableau search (minus the
/// theory exchange and the incremental theory engines), kept as the
/// differential-testing oracle for the CDCL engine (see `tests/cdcl.rs`) and
/// as the "before" side of the allocation benchmark.  Note the per-disjunct
/// `rest.clone()` and `Form::Or` re-wrap at every branch point, and the
/// whole-branch theory re-check at every node — exactly the costs the clause
/// database and the incremental constraint stack removed.
pub mod reference {
    use super::{is_literal, theory_conflict, GroundResult};
    use ipl_logic::normal::nnf;
    use ipl_logic::{Form, SortEnv};
    use std::collections::HashSet;

    /// Attempts to refute the conjunction of the given ground formulas with
    /// the naive search, within `max_nodes` branch nodes.
    pub fn refute_naive(forms: &[Form], env: &SortEnv, max_nodes: usize) -> GroundResult {
        let mut state = Naive {
            env,
            nodes: max_nodes,
            literals: Vec::new(),
            literal_set: HashSet::new(),
        };
        if state.search(forms.to_vec()) {
            GroundResult::Unsat
        } else {
            GroundResult::Unknown
        }
    }

    /// The pigeonhole principle with `holes + 1` pigeons as a ground
    /// formula set: every pigeon sits in some hole, no two pigeons share a
    /// hole.  The classic hard instance for chronological backtracking —
    /// the learning-ablation test and the allocation benchmark both import
    /// it from here, so the two pins cannot drift apart.
    pub fn pigeonhole(holes: usize) -> Vec<Form> {
        let pigeons = holes + 1;
        let p = |i: usize, j: usize| Form::var(format!("p_{i}_{j}"));
        let mut forms = Vec::new();
        for i in 0..pigeons {
            forms.push(Form::Or((0..holes).map(|j| p(i, j)).collect()));
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in i1 + 1..pigeons {
                    forms.push(Form::Or(vec![Form::not(p(i1, j)), Form::not(p(i2, j))]));
                }
            }
        }
        forms
    }

    struct Naive<'a> {
        env: &'a SortEnv,
        nodes: usize,
        literals: Vec<Form>,
        literal_set: HashSet<Form>,
    }

    impl Naive<'_> {
        fn search(&mut self, mut pending: Vec<Form>) -> bool {
            if self.nodes == 0 {
                return false;
            }
            self.nodes -= 1;
            let mut disjunctions: Vec<Vec<Form>> = Vec::new();
            while let Some(form) = pending.pop() {
                match form {
                    Form::Bool(true) => {}
                    Form::Bool(false) => return true,
                    Form::And(parts) => pending.extend(parts),
                    Form::Or(parts) => disjunctions.push(parts),
                    Form::Implies(..) | Form::Iff(..) | Form::Not(_) if !is_literal(&form) => {
                        pending.push(nnf(&form));
                    }
                    other => {
                        if self.literal_set.contains(&Form::not(other.clone())) {
                            return true;
                        }
                        if self.literal_set.insert(other.clone()) {
                            self.literals.push(other);
                        }
                    }
                }
            }

            // Simplify disjunctions against the current literal set.
            let mut simplified: Vec<Vec<Form>> = Vec::new();
            let mut units: Vec<Form> = Vec::new();
            for disjunction in disjunctions {
                let mut remaining = Vec::new();
                let mut satisfied = false;
                for disjunct in disjunction {
                    if self.literal_set.contains(&disjunct) {
                        satisfied = true;
                        break;
                    }
                    if self.literal_set.contains(&Form::not(disjunct.clone())) {
                        continue; // this disjunct is already false
                    }
                    remaining.push(disjunct);
                }
                if satisfied {
                    continue;
                }
                match remaining.len() {
                    0 => return true, // empty clause
                    1 => units.push(remaining.pop().expect("len checked")),
                    _ => simplified.push(remaining),
                }
            }
            if !units.is_empty() {
                let mut pending: Vec<Form> = simplified.into_iter().map(Form::Or).collect();
                pending.extend(units);
                return self.search(pending);
            }

            if theory_conflict(&self.literals, self.env) {
                return true;
            }
            if simplified.is_empty() {
                return false; // saturated, consistent branch
            }

            // Branch on the smallest disjunction, cloning the rest each time.
            simplified.sort_by_key(Vec::len);
            let chosen = simplified.remove(0);
            let rest: Vec<Form> = simplified.into_iter().map(Form::Or).collect();
            let mark = self.literals.len();
            for disjunct in chosen {
                let mut pending = rest.clone();
                pending.push(disjunct);
                let closed = self.search(pending);
                for literal in self.literals.drain(mark..) {
                    self.literal_set.remove(&literal);
                }
                if !closed {
                    return false;
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::build_problem;
    use ipl_logic::parser::parse_form;

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        for v in ["i", "j", "k", "size", "index", "csize", "x", "y", "z"] {
            e.declare_var(v, Sort::Int);
        }
        for v in ["o", "p", "q", "a", "b", "c", "first", "elements"] {
            e.declare_var(v, Sort::Obj);
        }
        e.declare_var("next", Sort::obj_field());
        e.declare_var("content", Sort::int_obj_set());
        e.declare_var("nodes", Sort::obj_set());
        for v in ["s", "t"] {
            e.declare_var(v, Sort::obj_set());
        }
        e.declare_var("arrayState", Sort::obj_array_state());
        e
    }

    /// Convenience: does `assumptions |- goal` hold for the ground solver?
    fn proves(assumptions: &[&str], goal: &str) -> bool {
        let env = env();
        let assumptions: Vec<Form> = assumptions.iter().map(|s| parse_form(s).unwrap()).collect();
        let goal = parse_form(goal).unwrap();
        let problem = build_problem(&assumptions, &goal, &env);
        // Ground solver only: ignore quantified assumptions.
        refute(
            &problem.ground,
            &env,
            &ProverConfig::default(),
            &Cancel::never(),
        ) == GroundResult::Unsat
    }

    #[test]
    fn propositional_reasoning() {
        assert!(proves(&["p", "p --> q"], "q"));
        assert!(proves(&["p | q", "~p"], "q"));
        assert!(!proves(&["p | q"], "p"));
        assert!(proves(&["p <-> q", "q"], "p"));
    }

    #[test]
    fn equality_reasoning() {
        assert!(proves(&["a = b", "b = c"], "a = c"));
        assert!(proves(&["a = b"], "g(a) = g(b)"));
        assert!(!proves(&["a = b"], "a = c"));
        assert!(proves(&["a = b", "~(a = c)"], "~(b = c)"));
    }

    #[test]
    fn arithmetic_reasoning() {
        assert!(proves(&["0 <= i", "i < size"], "0 <= i + 1"));
        assert!(proves(&["i < size", "size <= j"], "i < j"));
        assert!(proves(&["x = y + 1"], "y < x"));
        assert!(!proves(&["x <= y"], "x < y"));
        assert!(proves(&["index < size", "~(index < size)"], "false"));
    }

    #[test]
    fn combined_euf_and_arithmetic() {
        // x = f(a), f(a) = 3 |- x >= 3
        assert!(proves(&["x = g(a)", "g(a) = 3"], "3 <= x"));
        // field reads participate: o.next = p, p = q |- o.next = q
        assert!(proves(&["o.next = p", "p = q"], "o.next = q"));
    }

    #[test]
    fn integer_disequality_case_split() {
        assert!(proves(&["0 <= i", "i <= 1", "~(i = 0)"], "i = 1"));
    }

    #[test]
    fn late_equality_reaches_earlier_arithmetic() {
        // The arithmetic facts are asserted before the equality that makes
        // their abstracted terms congruent; the id-based re-keying must still
        // find the conflict (the assert-time linearisation is over term ids,
        // not over class representatives frozen at assert time).
        assert!(proves(&["g(a) <= 3", "5 <= g(b)", "a = b"], "false"));
    }

    #[test]
    fn field_update_reasoning() {
        // newnext = next[a := v], b != a |- b.newnext = b.next
        assert!(proves(
            &["newnext = next[a := v]", "~(b = a)"],
            "b.newnext = b.next"
        ));
        // and the written cell reads back the new value
        assert!(proves(&["newnext = next[a := v]"], "a.newnext = v"));
        // but without the disequality the frame fact must not be provable
        assert!(!proves(&["newnext = next[a := v]"], "b.newnext = b.next"));
    }

    #[test]
    fn array_update_reasoning() {
        let env = env();
        let state2 = Form::array_write(
            Form::var("arrayState"),
            Form::var("elements"),
            Form::var("i"),
            Form::var("v"),
        );
        let assumption = Form::eq(Form::var("arrayState2"), state2);
        // arrayState2 = arrayState[(elements,i) := v], j != i |-
        //     arrayState2(elements, j) = arrayState(elements, j)
        let goal = Form::eq(
            Form::array_read(
                Form::var("arrayState2"),
                Form::var("elements"),
                Form::var("j"),
            ),
            Form::array_read(
                Form::var("arrayState"),
                Form::var("elements"),
                Form::var("j"),
            ),
        );
        let problem = build_problem(
            &[assumption.clone(), parse_form("~(j = i)").unwrap()],
            &goal,
            &env,
        );
        assert_eq!(
            refute(
                &problem.ground,
                &env,
                &ProverConfig::default(),
                &Cancel::never()
            ),
            GroundResult::Unsat
        );
        // Hit case.
        let goal_hit = Form::eq(
            Form::array_read(
                Form::var("arrayState2"),
                Form::var("elements"),
                Form::var("i"),
            ),
            Form::var("v"),
        );
        let problem = build_problem(&[assumption], &goal_hit, &env);
        assert_eq!(
            refute(
                &problem.ground,
                &env,
                &ProverConfig::default(),
                &Cancel::never()
            ),
            GroundResult::Unsat
        );
    }

    #[test]
    fn membership_after_set_expansion() {
        // (i, o) in {(j, e) | 0 <= j & j < size & e = q} should follow from the
        // component facts.
        assert!(proves(
            &["0 <= i", "i < size", "o = q"],
            "(i, o) in {(j, e) : int * obj | 0 <= j & j < size & e = q}"
        ));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let env = env();
        // A zero budget refuses to search at all (the CDCL engine charges
        // its budget per decision/conflict/propagation round, so a trivially
        // refutable set needs at least one unit of budget).
        let config = ProverConfig {
            max_branch_nodes: 0,
            ..ProverConfig::default()
        };
        let assumptions = vec![parse_form("p | q").unwrap(), parse_form("~p | r").unwrap()];
        let goal = parse_form("q | r").unwrap();
        let problem = build_problem(&assumptions, &goal, &env);
        assert_eq!(
            refute(&problem.ground, &env, &config, &Cancel::never()),
            GroundResult::Unknown
        );
    }

    #[test]
    fn theory_conflict_detects_plain_contradictions() {
        let env = env();
        let literals = vec![parse_form("i < 3").unwrap(), parse_form("3 < i").unwrap()];
        assert!(theory_conflict(&literals, &env));
        let literals = vec![parse_form("i < 3").unwrap(), parse_form("i < 5").unwrap()];
        assert!(!theory_conflict(&literals, &env));
    }

    #[test]
    fn search_statistics_are_recorded() {
        let before = stats_snapshot();
        assert_eq!(
            refute(
                &reference::pigeonhole(2),
                &env(),
                &ProverConfig::without_exchange(),
                &Cancel::never(),
            ),
            GroundResult::Unsat
        );
        let delta = stats_snapshot().since(&before);
        assert!(delta.decisions > 0, "branching must happen: {delta:?}");
        assert!(
            delta.bool_propagations > 0,
            "unit propagation must run: {delta:?}"
        );
        assert!(delta.conflicts > 0, "conflicts must be analysed: {delta:?}");
    }

    // ----- the Nelson–Oppen BAPA⇄ground exchange -----

    /// Refutes raw ground literals with the given config (bypassing
    /// preprocessing, so the literal set is exactly what the tableau sees).
    fn refute_literals(literals: &[&str], config: &ProverConfig) -> GroundResult {
        let forms: Vec<Form> = literals.iter().map(|s| parse_form(s).unwrap()).collect();
        refute(&forms, &env(), config, &Cancel::never())
    }

    #[test]
    fn exchange_closes_cardinality_branches() {
        let literals = ["card(nodes) = 0", "a in nodes"];
        assert_eq!(
            refute_literals(&literals, &ProverConfig::default()),
            GroundResult::Unsat,
            "the in-tableau BAPA theory closes the branch"
        );
        assert_eq!(
            refute_literals(&literals, &ProverConfig::without_exchange()),
            GroundResult::Unknown,
            "without the exchange the ground solver alone cannot"
        );
    }

    #[test]
    fn congruence_implied_equalities_reach_bapa() {
        // s and t are never equated by a literal — only the congruence
        // closure (via a = b) knows g(a) = g(b); the exchange must hand that
        // equality to BAPA for the conflict to appear.
        assert_eq!(
            refute_literals(
                &["a = b", "g(a) = s", "g(b) = t", "card(s) = 0", "x in t",],
                &ProverConfig::default()
            ),
            GroundResult::Unsat
        );
    }

    #[test]
    fn bapa_entailed_facts_flow_back_to_the_ground_core() {
        // BAPA entails s = emptyset from card(s) = 0; asserting it back lets
        // the congruence close g(s) = g(emptyset), conflicting with the
        // disequality.  Neither side can do this alone.
        let literals = ["card(s) = 0", "g(s) = a", "g(emptyset) = b", "~(a = b)"];
        assert_eq!(
            refute_literals(&literals, &ProverConfig::default()),
            GroundResult::Unsat
        );
        assert_eq!(
            refute_literals(&literals, &ProverConfig::without_exchange()),
            GroundResult::Unknown
        );
    }

    #[test]
    fn exchange_iterates_to_a_fixpoint_across_rounds() {
        // Round one exports s = emptyset; only then does the congruence
        // merge h(s) with h(emptyset), making p and q equal — which clashes
        // with the membership split only on the next exchange round.
        assert_eq!(
            refute_literals(
                &[
                    "card(s) = 0",
                    "h(s) = p",
                    "h(emptyset) = q",
                    "p in nodes",
                    "~(q in nodes)",
                ],
                &ProverConfig::default()
            ),
            GroundResult::Unsat
        );
    }

    #[test]
    fn exchange_facts_do_not_leak_across_branches() {
        // The first disjunct's leaf exports s = emptyset and closes; the
        // second branch is satisfiable and must not inherit that fact.
        assert_eq!(
            refute_literals(
                &["card(s) = 0 | p", "g(s) = a", "g(emptyset) = b", "~(a = b)",],
                &ProverConfig::default()
            ),
            GroundResult::Unknown
        );
    }

    #[test]
    fn exchange_budget_exhaustion_degrades_gracefully() {
        let config = ProverConfig {
            exchange: crate::ExchangeConfig {
                max_leaf_checks: 0,
                ..crate::ExchangeConfig::default()
            },
            ..ProverConfig::default()
        };
        assert_eq!(
            refute_literals(&["card(nodes) = 0", "a in nodes"], &config),
            GroundResult::Unknown,
            "no leaf checks allowed: falls back to plain ground reasoning"
        );
    }

    /// A probe theory recording every literal the ground core offers it, so
    /// the exchange-visibility contract can be asserted directly: which
    /// assignments reach the theories, and which are withheld.
    #[derive(Debug, Default)]
    struct RecordingTheory {
        depth: usize,
        offered: std::rc::Rc<std::cell::RefCell<Vec<Form>>>,
    }

    impl TheoryExchange for RecordingTheory {
        fn name(&self) -> &'static str {
            "recording"
        }
        fn push(&mut self) {
            self.depth += 1;
        }
        fn pop(&mut self) {
            self.depth -= 1;
        }
        fn depth(&self) -> usize {
            self.depth
        }
        fn assert_literal(&mut self, literal: &Form) -> bool {
            self.offered.borrow_mut().push(literal.clone());
            true
        }
        fn is_active(&self) -> bool {
            false // never claims leaf-check budget
        }
        fn check(&mut self, _cc: &mut Congruence, _budget: &mut ExchangeBudget) -> TheoryResult {
            TheoryResult::Facts(Vec::new())
        }
    }

    /// Runs the given literals through a solver with a [`RecordingTheory`]
    /// attached and returns the verdict, the offered literals, and the
    /// solver's (theory propagation, learned clause) counts.
    fn solve_with_recorder(literals: &[&str]) -> (GroundResult, Vec<Form>, (u64, u64)) {
        let env = env();
        let forms: Vec<Form> = literals.iter().map(|s| parse_form(s).unwrap()).collect();
        let offered = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let cancel = Cancel::never();
        let mut solver = Solver::new(&env, &ProverConfig::without_exchange(), &cancel);
        for form in &forms {
            solver.add_form(form);
        }
        solver.theories.push(Box::new(RecordingTheory {
            depth: 0,
            offered: offered.clone(),
        }));
        let result = solver.solve();
        let offered = offered.borrow().clone();
        (
            result,
            offered,
            (solver.n_theory_propagations, solver.n_learned),
        )
    }

    #[test]
    fn theory_propagated_literals_are_visible_to_the_exchange() {
        // The root units merge a ~ b ~ c, so the congruence closure
        // propagates the watched atom `a = c` onto the trail with a
        // `Reason::CcEq`.  Unlike learned-clause propagations, such literals
        // are branch facts the recursive tableau would also have asserted —
        // they MUST be offered to the exchange theories.
        let (result, offered, (theory_propagations, _)) =
            solve_with_recorder(&["a = b", "b = c", "a = c | p"]);
        assert_eq!(result, GroundResult::Unknown, "the sequent is satisfiable");
        assert!(theory_propagations > 0, "a = c must be theory-propagated");
        let atom = parse_form("a = c").unwrap();
        assert!(
            offered.contains(&atom),
            "the cc-propagated literal must reach the exchange: {offered:?}"
        );
    }

    #[test]
    fn learned_clause_propagations_stay_withheld_from_the_exchange() {
        // Deciding p then r forces both `c = d` and its negation, so
        // first-UIP analysis learns the binary clause (~r | ~p), backjumps to
        // the p level, and re-propagates ~r from the learned clause.
        // Learned-clause propagations are implied facts the recursive tableau
        // never asserted — they must NOT be offered to the theories (the leaf
        // checks stay sound without them, and offering them would grow the
        // Venn translation's atom set).
        let (result, offered, (_, learned)) =
            solve_with_recorder(&["p | q", "r | s", "~p | ~r | c = d", "~p | ~r | ~(c = d)"]);
        assert_eq!(result, GroundResult::Unknown, "the sequent is satisfiable");
        assert!(learned > 0, "the conflict must learn a clause");
        // The final model keeps p (decision) and s (input-clause propagation
        // after the backjump): both are branch facts and both are offered.
        // (The decision on r conflicts inside the boolean fixpoint, before
        // the theory queue ever sees it.)
        let r = parse_form("r").unwrap();
        assert!(
            offered.contains(&parse_form("p").unwrap())
                && offered.contains(&parse_form("s").unwrap()),
            "decisions and input-clause propagations are offered: {offered:?}"
        );
        assert!(
            !offered.contains(&Form::not(r)),
            "~r enters the trail only via the learned clause and must be withheld: {offered:?}"
        );
    }

    #[test]
    fn branch_state_is_restored_after_backtracking() {
        // A disjunction whose first branch closes by theory conflict and whose
        // second closes by a different equality: the congruence state of the
        // first branch must not leak into the second.
        assert!(proves(&["a = b | a = c", "~(a = b)", "~(a = c)"], "false"));
        // And a non-theorem exercising the same machinery must still fail.
        assert!(!proves(&["a = b | a = c"], "a = b"));
    }

    // ----- the learning machinery -----

    #[test]
    fn learning_ablation_still_proves_the_basics() {
        let config = ProverConfig::without_learning();
        assert_eq!(
            refute_literals(&["p | q", "~p | r", "~q", "~r"], &config),
            GroundResult::Unsat
        );
        assert_eq!(
            refute_literals(&["a = b", "b = c", "~(a = c)"], &config),
            GroundResult::Unsat
        );
        assert_eq!(refute_literals(&["p | q"], &config), GroundResult::Unknown);
    }

    #[test]
    fn congruence_conflicts_produce_learned_clauses() {
        // Each disjunct of the case split re-derives the same congruence
        // conflict; with learning the second branch is pruned by the clause
        // learned in the first.
        let before = stats_snapshot();
        assert_eq!(
            refute_literals(
                &[
                    "p | q",
                    "a = b | a = c",
                    "g(a) = x",
                    "g(b) = y",
                    "g(c) = y",
                    "~(x = y)"
                ],
                &ProverConfig::default()
            ),
            GroundResult::Unsat
        );
        let delta = stats_snapshot().since(&before);
        assert!(delta.conflicts > 0, "{delta:?}");
    }

    #[test]
    fn naive_reference_agrees_on_simple_sequents() {
        let env = env();
        for (assumptions, goal, expected) in [
            (vec!["p", "p --> q"], "q", true),
            (vec!["p | q", "~p"], "q", true),
            (vec!["p | q"], "p", false),
            (vec!["a = b", "b = c"], "a = c", true),
            (vec!["0 <= i", "i < size"], "0 <= i + 1", true),
        ] {
            let assumptions: Vec<Form> =
                assumptions.iter().map(|s| parse_form(s).unwrap()).collect();
            let goal = parse_form(goal).unwrap();
            let problem = build_problem(&assumptions, &goal, &env);
            let naive = reference::refute_naive(&problem.ground, &env, 100_000);
            assert_eq!(
                naive == GroundResult::Unsat,
                expected,
                "naive on {problem:?}"
            );
            let cdcl = refute(
                &problem.ground,
                &env,
                &ProverConfig::without_exchange(),
                &Cancel::never(),
            );
            assert_eq!(cdcl, naive, "CDCL and naive disagree on {problem:?}");
        }
    }
}
