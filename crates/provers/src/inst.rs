//! Bounded quantifier instantiation on top of the ground solver.
//!
//! Universally quantified assumptions are instantiated with ground terms of
//! matching sorts drawn from the problem itself, in rounds, interleaved with
//! ground refutation attempts.  The search is budgeted: the number of rounds,
//! the instances per quantifier and the total number of instances are all
//! capped.  This mirrors the behaviour of the paper's automated provers —
//! powerful, but defeated by large assumption bases and by existential goals
//! whose witness term does not already occur in the problem.  The integrated
//! proof language exists precisely to remove those obstacles (`from` clauses
//! shrink the assumption base, `witness`/`instantiate` supply the terms).

use crate::ground::{refute, GroundResult};
use crate::preprocess::Problem;
use crate::ProverConfig;
use ipl_logic::simplify::simplify;
use ipl_logic::subst::substitute;
use ipl_logic::{Form, Sort, SortEnv};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Attempts to refute the problem using ground reasoning plus bounded
/// quantifier instantiation.
pub fn refute_with_instantiation(
    problem: &Problem,
    env: &SortEnv,
    config: &ProverConfig,
    assumption_count: usize,
) -> GroundResult {
    // Extend the environment with the skolem symbols introduced during
    // preprocessing so they can serve as instantiation candidates.
    let mut env = env.clone();
    for (name, sort) in &problem.skolems {
        env.declare_var(name.clone(), sort.clone());
        env.declare_fun(name.clone(), Vec::new(), sort.clone());
    }
    let env = &env;
    let mut ground: Vec<Form> = problem.ground.clone();
    let mut quantified: Vec<Form> = problem.quantified.clone();
    let mut seen_instances: BTreeSet<Form> = BTreeSet::new();
    let instance_budget = config.effective_instances(assumption_count);
    let mut total_instances = 0usize;

    for round in 0..=config.instantiation_rounds {
        if refute(&ground, env, config) == GroundResult::Unsat {
            return GroundResult::Unsat;
        }
        if round == config.instantiation_rounds {
            break;
        }
        let pool = term_pool(ground.iter().chain(quantified.iter()), env);
        let mut new_ground = Vec::new();
        let mut new_quantified = Vec::new();
        for quantifier in &quantified {
            let instances = instantiate_one(quantifier, &pool, env, config);
            for instance in instances {
                if total_instances >= instance_budget {
                    break;
                }
                if seen_instances.insert(instance.clone()) {
                    total_instances += 1;
                    match instance {
                        Form::Forall(..) => new_quantified.push(instance),
                        other => new_ground.push(other),
                    }
                }
            }
        }
        if new_ground.is_empty() && new_quantified.is_empty() {
            break; // nothing new to try
        }
        ground.extend(new_ground);
        quantified.extend(new_quantified);
    }
    GroundResult::Unknown
}

/// A pool of ground terms grouped by sort, used as instantiation candidates.
#[derive(Debug, Default)]
pub struct TermPool {
    by_sort: BTreeMap<Sort, Vec<Form>>,
}

impl TermPool {
    /// Candidate terms for a binder of the given sort, smallest first.
    pub fn candidates(&self, sort: &Sort) -> Vec<Form> {
        let mut out = match sort {
            Sort::Unknown => {
                let mut all: Vec<Form> = Vec::new();
                for terms in self.by_sort.values() {
                    all.extend(terms.iter().cloned());
                }
                all
            }
            known => self.by_sort.get(known).cloned().unwrap_or_default(),
        };
        out.sort_by_key(Form::size);
        out.dedup();
        out
    }

    fn insert(&mut self, sort: Sort, term: Form) {
        let entry = self.by_sort.entry(sort).or_default();
        if !entry.contains(&term) {
            entry.push(term);
        }
    }

    /// Total number of pooled terms (for diagnostics).
    pub fn len(&self) -> usize {
        self.by_sort.values().map(Vec::len).sum()
    }

    /// Returns `true` if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Collects the ground instantiation candidates occurring in the given
/// formulas.
pub fn term_pool<'a>(forms: impl Iterator<Item = &'a Form>, env: &SortEnv) -> TermPool {
    let mut pool = TermPool::default();
    // Seed with the obvious constants.
    pool.insert(Sort::Int, Form::int(0));
    pool.insert(Sort::Obj, Form::Null);
    for form in forms {
        collect_terms(form, env, &mut pool, &mut Vec::new());
    }
    pool
}

fn collect_terms(form: &Form, env: &SortEnv, pool: &mut TermPool, bound: &mut Vec<String>) {
    match form {
        Form::Forall(bs, body) | Form::Exists(bs, body) | Form::Compr(bs, body) => {
            let n = bound.len();
            bound.extend(bs.iter().map(|(v, _)| v.clone()));
            collect_terms(body, env, pool, bound);
            bound.truncate(n);
            return;
        }
        _ => {}
    }
    // Consider this node itself as a candidate if it is a non-boolean term
    // that does not mention bound variables and is not too large.
    let sort = env.sort_of(form);
    let is_candidate = matches!(sort, Sort::Int | Sort::Obj)
        && form.size() <= 9
        && !mentions(form, bound)
        && !matches!(form, Form::Bool(_));
    if is_candidate {
        pool.insert(sort, form.clone());
    }
    form.for_each_child(|c| collect_terms(c, env, pool, bound));
}

fn mentions(form: &Form, names: &[String]) -> bool {
    if names.is_empty() {
        return false;
    }
    let fv = ipl_logic::free_vars(form);
    names.iter().any(|n| fv.contains(n))
}

/// Generates instances of one universally quantified assumption.
fn instantiate_one(
    quantifier: &Form,
    pool: &TermPool,
    env: &SortEnv,
    config: &ProverConfig,
) -> Vec<Form> {
    let (bindings, body) = match quantifier {
        Form::Forall(bs, body) => (bs.clone(), (**body).clone()),
        _ => return Vec::new(),
    };
    // Resolve unknown binder sorts from usage before picking candidates.
    let resolved = env.annotate_binders(quantifier);
    let bindings = match &resolved {
        Form::Forall(bs, _) => bs.clone(),
        _ => bindings,
    };
    let candidate_lists: Vec<Vec<Form>> = bindings
        .iter()
        .map(|(_, sort)| pool.candidates(sort))
        .collect();
    if candidate_lists.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut indices = vec![0usize; bindings.len()];
    let limit = config.max_instances_per_quantifier;
    'outer: loop {
        let mut map = HashMap::new();
        for (slot, (name, _)) in bindings.iter().enumerate() {
            map.insert(name.clone(), candidate_lists[slot][indices[slot]].clone());
        }
        let instance = simplify(&substitute(&body, &map));
        if !instance.is_true() {
            out.push(instance);
        }
        if out.len() >= limit {
            break;
        }
        // Advance the odometer.
        let mut slot = bindings.len();
        loop {
            if slot == 0 {
                break 'outer;
            }
            slot -= 1;
            indices[slot] += 1;
            if indices[slot] < candidate_lists[slot].len() {
                break;
            }
            indices[slot] = 0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::build_problem;
    use ipl_logic::parser::parse_form;

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        for v in ["i", "j", "k", "size", "index", "x", "y"] {
            e.declare_var(v, Sort::Int);
        }
        for v in ["o", "a", "b", "c", "first"] {
            e.declare_var(v, Sort::Obj);
        }
        e.declare_var("next", Sort::obj_field());
        e.declare_var("nodes", Sort::obj_set());
        e.declare_var("content", Sort::int_obj_set());
        e.declare_fun("p", vec![Sort::Int], Sort::Bool);
        e.declare_fun("member", vec![Sort::Obj], Sort::Bool);
        e
    }

    fn proves(assumptions: &[&str], goal: &str) -> bool {
        proves_with(assumptions, goal, &ProverConfig::default())
    }

    fn proves_with(assumptions: &[&str], goal: &str, config: &ProverConfig) -> bool {
        let env = env();
        let assumptions: Vec<Form> = assumptions.iter().map(|s| parse_form(s).unwrap()).collect();
        let goal = parse_form(goal).unwrap();
        let count = assumptions.len();
        let problem = build_problem(&assumptions, &goal, &env);
        refute_with_instantiation(&problem, &env, config, count) == GroundResult::Unsat
    }

    #[test]
    fn universal_modus_ponens() {
        assert!(proves(&["forall n:int. 0 <= n --> p(n)", "0 <= x"], "p(x)"));
        assert!(!proves(&["forall n:int. 0 <= n --> p(n)"], "p(x)"));
    }

    #[test]
    fn existential_goal_with_present_witness() {
        // The witness `a` occurs in the assumptions, so instantiating the
        // negated goal (a universal) with it succeeds.
        assert!(proves(&["member(a)"], "exists w:obj. member(w)"));
    }

    #[test]
    fn existential_goal_without_witness_fails() {
        // No obj-sorted candidate matches: the bounded search cannot invent a
        // witness (the situation the `witness` construct is for).
        assert!(!proves(&["0 <= x"], "exists w:obj. member(w)"));
    }

    #[test]
    fn quantified_invariant_applied_to_specific_index() {
        assert!(proves(
            &[
                "forall j:int. 0 <= j & j < size --> p(j)",
                "0 <= index",
                "index < size"
            ],
            "p(index)"
        ));
    }

    #[test]
    fn universal_goal_via_fresh_constant() {
        // Proving forall x. member(x) --> member(x) requires instantiating
        // nothing; the negated goal is skolemised to a fresh constant.
        assert!(proves(&[], "forall x:obj. member(x) --> member(x)"));
        assert!(proves(
            &["forall x:obj. member(x) --> interesting(x)"],
            "forall y:obj. member(y) --> interesting(y)"
        ));
    }

    #[test]
    fn set_extensionality_with_instantiation() {
        // content = old_content (as sets of pairs) implies a specific
        // membership transfers.
        assert!(proves(
            &["content = old_content", "(i, o) in old_content"],
            "(i, o) in content"
        ));
    }

    #[test]
    fn two_variable_quantifier() {
        assert!(proves(
            &[
                "forall j:int, e:obj. (j, e) in content --> 0 <= j",
                "(index, o) in content"
            ],
            "0 <= index"
        ));
    }

    #[test]
    fn budget_zero_rounds_cannot_use_quantifiers() {
        let config = ProverConfig {
            instantiation_rounds: 0,
            ..ProverConfig::default()
        };
        assert!(!proves_with(
            &["forall n:int. 0 <= n --> p(n)", "0 <= x"],
            "p(x)",
            &config
        ));
    }

    #[test]
    fn term_pool_collects_sorted_candidates() {
        let env = env();
        let forms = [
            parse_form("0 <= index & index < size").unwrap(),
            parse_form("first.next = a").unwrap(),
        ];
        let pool = term_pool(forms.iter(), &env);
        assert!(!pool.is_empty());
        let ints = pool.candidates(&Sort::Int);
        assert!(ints.contains(&Form::var("index")));
        assert!(ints.contains(&Form::var("size")));
        let objs = pool.candidates(&Sort::Obj);
        assert!(objs.contains(&Form::var("first")));
        assert!(objs.iter().any(|t| t.to_string() == "first.next"));
    }
}
