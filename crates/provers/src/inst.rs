//! Trigger-driven quantifier instantiation (E-matching) on top of the ground
//! solver.
//!
//! Universally quantified assumptions are instantiated in rounds, interleaved
//! with ground refutation attempts.  For each quantifier the engine selects
//! *triggers* — multi-patterns of uninterpreted applications, field reads,
//! array reads and membership atoms that together cover every binder — and
//! matches them against a term index built from the congruence classes of the
//! current ground set ([`Matcher`]).  Instances are therefore generated only
//! for terms that actually occur in the problem, in the style of Simplify's
//! E-matching, instead of the sort-indexed cross product the engine used to
//! enumerate.  Quantifiers for which no trigger can be selected (purely
//! arithmetic bodies, say) fall back to the bounded sort-pool enumeration
//! ([`TermPool`]).
//!
//! Rounds keep an *instance frontier*: after the first round a quantifier is
//! only matched against candidate terms added since it was last processed,
//! so the engine never rescans the full (growing) ground set.  The frontier
//! rewinds when completeness demands it: a match scan truncated by the
//! per-quantifier budget keeps its watermark, and newly learned unit
//! equalities (which can make old terms match) rewind every quantifier.
//!
//! The search remains budgeted — rounds, matches per quantifier and total
//! instances are all capped.  This mirrors the behaviour of the paper's
//! automated provers: powerful, but defeated by large assumption bases and by
//! existential goals whose witness term does not already occur in the
//! problem.  The integrated proof language exists precisely to remove those
//! obstacles (`from` clauses shrink the assumption base,
//! `witness`/`instantiate` supply the terms).

use crate::cc::Congruence;
use crate::ground::{refute, GroundResult};
use crate::preprocess::{axioms_for, Accesses, Problem};
use crate::{Cancel, ProverConfig, TriggerConfig};
use ipl_logic::hashed::Hashed;
use ipl_logic::simplify::simplify;
use ipl_logic::subst::substitute;
use ipl_logic::{free_vars, Form, Sort, SortEnv};
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Attempts to refute the problem using ground reasoning plus trigger-driven
/// quantifier instantiation.
pub fn refute_with_instantiation(
    problem: &Problem,
    env: &SortEnv,
    config: &ProverConfig,
    assumption_count: usize,
    cancel: &Cancel,
) -> GroundResult {
    // Extend the environment with the skolem symbols introduced during
    // preprocessing so they can serve as instantiation candidates.
    let mut env = env.clone();
    for (name, sort) in &problem.skolems {
        env.declare_var(name.clone(), sort.clone());
        env.declare_fun(name.clone(), Vec::new(), sort.clone());
    }
    let env = &env;
    let mut ground: Vec<Form> = problem.ground.clone();
    let mut quantifiers: Vec<Quantifier> = problem
        .quantified
        .iter()
        .map(|q| Quantifier::new(q, env, &config.triggers))
        .collect();
    // Seeded with the initial ground set so that neither re-derived axioms
    // nor instances duplicating an existing formula are added twice.
    let mut seen_instances: HashSet<Hashed> =
        ground.iter().map(|f| Hashed::new(f.clone())).collect();
    let instance_budget = config.effective_instances(assumption_count);
    let mut total_instances = 0usize;

    let mut matcher = Matcher::new();
    matcher.index_forms(&ground, 0);

    // Accesses of the problem and its instances (the initial ground set
    // already carries its axioms from `build_problem`), plus every equality
    // occurring *anywhere* in the ground set — including under disjunctions,
    // where a write equality is only branch-locally satisfiable and thus
    // invisible to the matcher's unit-equality congruence.
    let mut accesses = Accesses::default();
    let mut ground_equalities: HashSet<Hashed> = HashSet::new();
    for form in problem.all_forms() {
        accesses.collect(form);
    }
    for form in &ground {
        collect_equalities(form, &mut ground_equalities);
    }
    let mut ground_scanned = ground.len();

    for round in 0..=config.instantiation_rounds {
        if refute(&ground, env, config, cancel) == GroundResult::Unsat {
            return GroundResult::Unsat;
        }
        if round == config.instantiation_rounds || cancel.is_cancelled() {
            // Running out of rounds while instances were still being produced
            // (or being cut off by the clock) is budget exhaustion, not
            // saturation — an escalated retry gets more rounds.
            if total_instances > 0 {
                crate::note_budget_exhausted();
            }
            break;
        }
        // The sort pool is only needed for quantifiers without usable
        // triggers (or, as a fallback, for quantifiers whose triggers have
        // never matched anything).  Snapshot the quantifier forms now (the
        // loop below borrows `quantifiers` mutably) but build the pool lazily
        // — in the common all-triggers-match case it is never built at all.
        let quantifier_forms: Vec<Form> = quantifiers.iter().map(|q| q.form.clone()).collect();
        let mut pool: Option<TermPool> = None;

        let mut new_ground = Vec::new();
        let mut new_quantified = Vec::new();
        'quantifiers: for quantifier in &mut quantifiers {
            let use_triggers = config.triggers.enabled && !quantifier.triggers.is_empty();
            let mut instances = Vec::new();
            if use_triggers {
                let limit = config.triggers.max_matches_per_quantifier;
                let assignments = matcher.match_quantifier(
                    &quantifier.triggers,
                    &quantifier.binder_names,
                    quantifier.frontier,
                    limit,
                );
                quantifier.matched_total += assignments.len();
                // Advance the frontier only when this round's matching was
                // exhaustive: a truncated scan must be allowed to revisit old
                // candidates next round (duplicates are cheap — the instance
                // set deduplicates).
                if assignments.len() < limit {
                    quantifier.frontier = round + 1;
                }
                for assignment in &assignments {
                    let instance = simplify(&substitute(&quantifier.body, assignment));
                    if !instance.is_true() {
                        instances.push(instance);
                    }
                }
            }
            let pool_eligible =
                !use_triggers || (config.triggers.pool_fallback && quantifier.matched_total == 0);
            if pool_eligible {
                let pool = pool.get_or_insert_with(|| {
                    term_pool(ground.iter().chain(quantifier_forms.iter()), env)
                });
                instances.extend(instantiate_from_pool(quantifier, pool, config));
            }
            if cancel.is_cancelled() {
                break 'quantifiers;
            }
            for instance in instances {
                if total_instances >= instance_budget {
                    crate::note_budget_exhausted();
                    break 'quantifiers; // budget is global: stop all quantifiers
                }
                if seen_instances.insert(Hashed::new(instance.clone())) {
                    total_instances += 1;
                    match instance {
                        Form::Forall(..) => new_quantified.push(instance),
                        other => new_ground.push(other),
                    }
                }
            }
        }
        if new_ground.is_empty() && new_quantified.is_empty() {
            break; // nothing new to try
        }
        // New unit equalities can merge old congruence classes and thereby
        // enable matches among terms indexed in earlier rounds; the frontier
        // would suppress those forever, so rewind it for every quantifier.
        let learned_equalities = new_ground.iter().any(|f| matches!(f, Form::Eq(..)));
        if learned_equalities {
            for quantifier in &mut quantifiers {
                quantifier.frontier = 0;
            }
        }
        matcher.index_forms(&new_ground, round + 1);
        ground.extend(new_ground);
        for form in new_quantified {
            quantifiers.push(Quantifier::new(&form, env, &config.triggers));
        }
        // Instances can introduce field/array reads that did not exist when
        // the read-over-write axioms were first generated; re-derive the
        // axiom set over the grown access set so those reads get their
        // select/store semantics too.  Accesses are collected from the
        // problem and its instances only — never from generated axioms,
        // whose miss branches mention base-state reads that would otherwise
        // breed further axioms each round.
        let accesses_before = accesses.len();
        for form in &ground[ground_scanned..] {
            accesses.collect(form);
            collect_equalities(form, &mut ground_equalities);
        }
        ground_scanned = ground.len();
        // Re-derive when the access set grew — and also when equalities were
        // learned, which can entail the guard of a previously skipped axiom
        // (the filter below) without introducing any new access.
        if accesses.len() > accesses_before || learned_equalities {
            let mut new_axioms = Vec::new();
            for axiom in axioms_for(&accesses) {
                // Keep a *guarded* axiom only when its guard equality is
                // entailed by the asserted unit equalities or at least
                // occurs somewhere in the ground set (possibly under a
                // disjunction, where it is branch-locally assertable): a
                // guard no branch can ever satisfy would still double the
                // tableau's branching for nothing.  (The initial axiom set
                // from `build_problem` is not filtered — only the per-round
                // additions, which exist purely to give instance-introduced
                // reads their select/store semantics.)
                if let Form::Implies(guard, _) = &axiom {
                    if let Form::Eq(a, b) = guard.as_ref() {
                        if !ground_equalities.contains(&Hashed::new((**guard).clone()))
                            && !matcher.knows_equal(a, b)
                        {
                            continue;
                        }
                    }
                }
                if seen_instances.insert(Hashed::new(axiom.clone())) {
                    new_axioms.push(axiom);
                }
            }
            if !new_axioms.is_empty() {
                matcher.index_forms(&new_axioms, round + 1);
                ground.extend(new_axioms);
                ground_scanned = ground.len(); // axioms are not re-scanned
            }
        }
    }
    GroundResult::Unknown
}

/// Collects the equality subformulas a tableau branch could assert
/// *positively* (for the per-round axiom guard filter): equalities under
/// conjunctions and disjunctions count, equalities under negation or in an
/// implication antecedent do not — in particular the guards of existing
/// read-over-write axioms, which only ever occur negated in a branch, must
/// not readmit themselves.
fn collect_equalities(form: &Form, out: &mut HashSet<Hashed>) {
    fn rec(form: &Form, positive: bool, out: &mut HashSet<Hashed>) {
        match form {
            Form::Eq(..) => {
                if positive {
                    out.insert(Hashed::new(form.clone()));
                }
            }
            Form::Not(inner) => rec(inner, !positive, out),
            Form::Implies(antecedent, consequent) => {
                rec(antecedent, !positive, out);
                rec(consequent, positive, out);
            }
            Form::Iff(a, b) => {
                for side in [a, b] {
                    rec(side, true, out);
                    rec(side, false, out);
                }
            }
            other => other.for_each_child(|c| rec(c, positive, out)),
        }
    }
    rec(form, true, out);
}

/// A universally quantified assumption prepared for matching.
#[derive(Debug)]
struct Quantifier {
    /// The original formula (used when seeding the sort pool).
    form: Form,
    /// Binder names, for fast membership tests during matching.
    binder_names: HashSet<String>,
    /// Binders with sorts resolved from usage.
    bindings: Vec<(String, Sort)>,
    /// The quantifier body.
    body: Form,
    /// Selected triggers; each trigger is a multi-pattern whose patterns
    /// together cover every binder.
    triggers: Vec<Vec<Form>>,
    /// Candidate-stamp watermark: only candidates stamped at or after this
    /// value produce new matches (the instance frontier).
    frontier: usize,
    /// Total matches produced so far (decides the pool fallback).
    matched_total: usize,
}

impl Quantifier {
    fn new(form: &Form, env: &SortEnv, config: &TriggerConfig) -> Self {
        // Resolve unknown binder sorts from usage before anything else.
        let resolved = env.annotate_binders(form);
        let (bindings, body) = match &resolved {
            Form::Forall(bs, body) => (bs.clone(), (**body).clone()),
            other => (Vec::new(), other.clone()),
        };
        let binder_names: HashSet<String> = bindings.iter().map(|(n, _)| n.clone()).collect();
        let triggers = if config.enabled {
            select_triggers(&bindings, &body, config)
        } else {
            Vec::new()
        };
        Quantifier {
            form: form.clone(),
            binder_names,
            bindings,
            body,
            triggers,
            frontier: 0,
            matched_total: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Trigger selection
// ---------------------------------------------------------------------------

/// Selects triggers for a quantifier body: multi-patterns of indexable terms
/// (uninterpreted applications, field/array reads, membership atoms) that
/// together mention every binder.
///
/// Preference order: single patterns covering all binders (up to the
/// configured limit, smallest first), then one greedily assembled
/// multi-pattern.  Returns an empty list when the binders cannot be covered —
/// the caller then falls back to sort-pool enumeration.
pub fn select_triggers(
    bindings: &[(String, Sort)],
    body: &Form,
    config: &TriggerConfig,
) -> Vec<Vec<Form>> {
    let binders: HashSet<String> = bindings.iter().map(|(n, _)| n.clone()).collect();
    if binders.is_empty() {
        return Vec::new();
    }
    let mut candidates: Vec<PatternCandidate> = Vec::new();
    let mut seen: HashSet<Hashed> = HashSet::new();
    collect_patterns(
        body,
        &binders,
        config,
        &mut Vec::new(),
        &mut seen,
        &mut candidates,
    );

    // Single patterns covering every binder, smallest first.
    let mut singles: Vec<&PatternCandidate> = candidates
        .iter()
        .filter(|c| c.coverage.len() == binders.len())
        .collect();
    singles.sort_by_key(|c| c.size);
    if !singles.is_empty() {
        return singles
            .iter()
            .take(config.max_triggers_per_quantifier)
            .map(|c| vec![c.pattern.clone()])
            .collect();
    }

    // Greedy multi-pattern: widest coverage first, then smallest.
    candidates.sort_by(|a, b| {
        b.coverage
            .len()
            .cmp(&a.coverage.len())
            .then(a.size.cmp(&b.size))
    });
    let mut covered: HashSet<String> = HashSet::new();
    let mut multi: Vec<Form> = Vec::new();
    for candidate in &candidates {
        if candidate.coverage.iter().any(|v| !covered.contains(v)) {
            covered.extend(candidate.coverage.iter().cloned());
            multi.push(candidate.pattern.clone());
            if covered.len() == binders.len() {
                return vec![multi];
            }
        }
    }
    Vec::new() // binders not coverable: no trigger
}

#[derive(Debug)]
struct PatternCandidate {
    pattern: Form,
    size: usize,
    coverage: Vec<String>,
}

/// Collects indexable subterms of `form` that mention at least one binder and
/// no binder of a nested quantifier or comprehension.
fn collect_patterns(
    form: &Form,
    binders: &HashSet<String>,
    config: &TriggerConfig,
    nested: &mut Vec<String>,
    seen: &mut HashSet<Hashed>,
    out: &mut Vec<PatternCandidate>,
) {
    if let Form::Forall(bs, body) | Form::Exists(bs, body) | Form::Compr(bs, body) = form {
        let depth = nested.len();
        nested.extend(bs.iter().map(|(n, _)| n.clone()));
        collect_patterns(body, binders, config, nested, seen, out);
        nested.truncate(depth);
        return;
    }
    if index_key(form).is_some() {
        let hashed = Hashed::new(form.clone());
        if hashed.size() <= config.max_pattern_size && !seen.contains(&hashed) {
            let fv = free_vars(form);
            let coverage: Vec<String> = fv
                .iter()
                .filter(|v| binders.contains(*v))
                .cloned()
                .collect();
            if !coverage.is_empty() && !fv.iter().any(|v| nested.contains(v)) {
                let size = hashed.size();
                seen.insert(hashed);
                out.push(PatternCandidate {
                    pattern: form.clone(),
                    size,
                    coverage,
                });
            }
        }
    }
    form.for_each_child(|c| collect_patterns(c, binders, config, nested, seen, out));
}

// ---------------------------------------------------------------------------
// The term index and the E-matcher
// ---------------------------------------------------------------------------

/// Index key of a matchable term: the head symbol shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum IndexKey {
    /// Named application `f(...)` with its arity.
    App(String, usize),
    FieldRead,
    ArrayRead,
    Elem,
}

/// Returns the index key of a term if its root is matchable.
fn index_key(form: &Form) -> Option<IndexKey> {
    match form {
        Form::App(name, args) => Some(IndexKey::App(name.clone(), args.len())),
        Form::FieldRead(..) => Some(IndexKey::FieldRead),
        Form::ArrayRead(..) => Some(IndexKey::ArrayRead),
        Form::Elem(..) => Some(IndexKey::Elem),
        _ => None,
    }
}

/// One indexed ground term.
#[derive(Debug, Clone)]
struct Candidate {
    form: Form,
    /// The round in which the term entered the index (for the frontier).
    stamp: usize,
}

/// A term index over the ground set, grouped by head symbol, together with a
/// congruence engine tracking the asserted unit equalities so that matching
/// works modulo the known congruence classes.
#[derive(Debug, Default)]
pub struct Matcher {
    cc: Congruence,
    index: HashMap<IndexKey, Vec<Candidate>>,
    indexed: HashSet<Hashed>,
}

impl Matcher {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes every matchable subterm of the given ground formulas with the
    /// given frontier stamp, and asserts their top-level unit equalities into
    /// the congruence engine.
    fn index_forms(&mut self, forms: &[Form], stamp: usize) {
        for form in forms {
            if let Form::Eq(a, b) = form {
                self.cc.assert_eq(a, b);
            }
            self.index_term(form, &mut Vec::new(), stamp);
        }
    }

    fn index_term(&mut self, form: &Form, bound: &mut Vec<String>, stamp: usize) {
        if let Form::Forall(bs, body) | Form::Exists(bs, body) | Form::Compr(bs, body) = form {
            let depth = bound.len();
            bound.extend(bs.iter().map(|(n, _)| n.clone()));
            self.index_term(body, bound, stamp);
            bound.truncate(depth);
            return;
        }
        if let Some(key) = index_key(form) {
            let ground = bound.is_empty() || !free_vars(form).iter().any(|v| bound.contains(v));
            if ground && self.indexed.insert(Hashed::new(form.clone())) {
                self.cc.intern(form);
                self.index.entry(key).or_default().push(Candidate {
                    form: form.clone(),
                    stamp,
                });
            }
        }
        form.for_each_child(|c| self.index_term(c, bound, stamp));
    }

    /// Matches a quantifier's triggers against the index, returning complete
    /// binder assignments.  Only assignments in which at least one matched
    /// candidate carries a stamp at or past `frontier` are returned (the
    /// instance frontier); `frontier == 0` accepts everything.
    fn match_quantifier(
        &mut self,
        triggers: &[Vec<Form>],
        binders: &HashSet<String>,
        frontier: usize,
        limit: usize,
    ) -> Vec<HashMap<String, Form>> {
        let mut out = Vec::new();
        // Detach the index so matching can borrow the engine mutably while
        // iterating candidate lists.
        let index = std::mem::take(&mut self.index);
        for trigger in triggers {
            let mut assignment = HashMap::new();
            self.match_multi(
                &index,
                trigger,
                binders,
                frontier,
                frontier == 0,
                &mut assignment,
                &mut out,
                limit,
            );
            if out.len() >= limit {
                break;
            }
        }
        self.index = index;
        out
    }

    /// Backtracking search over the patterns of one multi-pattern trigger.
    #[allow(clippy::too_many_arguments)]
    fn match_multi(
        &mut self,
        index: &HashMap<IndexKey, Vec<Candidate>>,
        patterns: &[Form],
        binders: &HashSet<String>,
        frontier: usize,
        any_new: bool,
        assignment: &mut HashMap<String, Form>,
        out: &mut Vec<HashMap<String, Form>>,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        let Some((pattern, rest)) = patterns.split_first() else {
            if any_new {
                out.push(assignment.clone());
            }
            return;
        };
        let key = index_key(pattern).expect("trigger patterns have indexable roots");
        let Some(candidates) = index.get(&key) else {
            return;
        };
        for candidate in candidates {
            let mut trail = Vec::new();
            if self.match_term(pattern, &candidate.form, binders, assignment, &mut trail) {
                self.match_multi(
                    index,
                    rest,
                    binders,
                    frontier,
                    any_new || candidate.stamp >= frontier,
                    assignment,
                    out,
                    limit,
                );
            }
            for name in trail {
                assignment.remove(&name);
            }
            if out.len() >= limit {
                return;
            }
        }
    }

    /// Matches one pattern against one ground term, extending the assignment.
    /// Newly bound binders are recorded on `trail` so the caller can undo.
    fn match_term(
        &mut self,
        pattern: &Form,
        target: &Form,
        binders: &HashSet<String>,
        assignment: &mut HashMap<String, Form>,
        trail: &mut Vec<String>,
    ) -> bool {
        if let Form::Var(name) = pattern {
            if binders.contains(name) {
                return match assignment.get(name) {
                    Some(bound) => {
                        let bound = bound.clone();
                        self.cc.are_equal(&bound, target)
                    }
                    None => {
                        assignment.insert(name.clone(), target.clone());
                        trail.push(name.clone());
                        true
                    }
                };
            }
        }
        if !mentions_any(pattern, binders) {
            // Fully ground sub-pattern: compare modulo the congruence.
            return self.cc.are_equal(pattern, target);
        }
        if !heads_compatible(pattern, target) {
            return false;
        }
        let pattern_children = children(pattern);
        let target_children = children(target);
        debug_assert_eq!(pattern_children.len(), target_children.len());
        pattern_children
            .iter()
            .zip(target_children.iter())
            .all(|(p, t)| self.match_term(p, t, binders, assignment, trail))
    }

    /// Number of indexed candidate terms (diagnostics and tests).
    pub fn candidate_count(&self) -> usize {
        self.index.values().map(Vec::len).sum()
    }

    /// Does the asserted ground-equality congruence identify the two terms?
    /// (Used to filter per-round read-over-write axioms to pairs whose guard
    /// is actually entailed.)
    fn knows_equal(&mut self, a: &Form, b: &Form) -> bool {
        self.cc.are_equal(a, b)
    }
}

/// Do two terms agree on their root constructor (including head symbol and
/// child count), so that child-wise matching is meaningful?
fn heads_compatible(pattern: &Form, target: &Form) -> bool {
    match (pattern, target) {
        (Form::App(a, xs), Form::App(b, ys)) => a == b && xs.len() == ys.len(),
        (Form::And(xs), Form::And(ys))
        | (Form::Or(xs), Form::Or(ys))
        | (Form::FiniteSet(xs), Form::FiniteSet(ys))
        | (Form::Tuple(xs), Form::Tuple(ys)) => xs.len() == ys.len(),
        (Form::Forall(bs, _), Form::Forall(cs, _))
        | (Form::Exists(bs, _), Form::Exists(cs, _))
        | (Form::Compr(bs, _), Form::Compr(cs, _)) => bs == cs,
        _ => std::mem::discriminant(pattern) == std::mem::discriminant(target),
    }
}

/// The direct children of a node, in visiting order.
fn children(form: &Form) -> Vec<&Form> {
    let mut out = Vec::new();
    form.for_each_child(|c| out.push(c));
    out
}

/// Does the form mention any of the given names as a free variable?
///
/// A short-circuiting walk rather than `free_vars` — this sits in the
/// E-matching hot loop, and materialising a fresh set of cloned names per
/// pattern node per candidate would dominate the match.
fn mentions_any(form: &Form, names: &HashSet<String>) -> bool {
    fn walk(form: &Form, names: &HashSet<String>, shadow: &mut Vec<String>) -> bool {
        match form {
            Form::Var(v) => names.contains(v) && !shadow.contains(v),
            Form::Forall(bs, body) | Form::Exists(bs, body) | Form::Compr(bs, body) => {
                let depth = shadow.len();
                shadow.extend(bs.iter().map(|(b, _)| b.clone()));
                let hit = walk(body, names, shadow);
                shadow.truncate(depth);
                hit
            }
            other => {
                let mut hit = false;
                other.for_each_child(|c| {
                    if !hit {
                        hit = walk(c, names, shadow);
                    }
                });
                hit
            }
        }
    }
    if names.is_empty() {
        return false;
    }
    walk(form, names, &mut Vec::new())
}

// ---------------------------------------------------------------------------
// Sort-pool fallback (for trigger-less quantifiers)
// ---------------------------------------------------------------------------

/// A pool of ground terms grouped by sort, used as instantiation candidates
/// by the fallback enumerator.  Terms are deduplicated as they are inserted
/// and buckets are sorted by term size once at construction, so lookups
/// neither re-sort nor clone.
#[derive(Debug, Default)]
pub struct TermPool {
    by_sort: BTreeMap<Sort, Vec<Form>>,
    seen: HashSet<Hashed>,
}

impl TermPool {
    /// Candidate terms for a binder of the given sort, smallest first.  For a
    /// known sort this borrows the pre-sorted bucket; only the (rare) unknown
    /// sort merges buckets on demand.
    pub fn candidates(&self, sort: &Sort) -> Cow<'_, [Form]> {
        match sort {
            Sort::Unknown => {
                let mut all: Vec<(usize, Form)> = self
                    .by_sort
                    .values()
                    .flat_map(|terms| terms.iter().map(|t| (t.size(), t.clone())))
                    .collect();
                all.sort();
                Cow::Owned(all.into_iter().map(|(_, t)| t).collect())
            }
            known => Cow::Borrowed(
                self.by_sort
                    .get(known)
                    .map(Vec::as_slice)
                    .unwrap_or_default(),
            ),
        }
    }

    fn insert(&mut self, sort: Sort, term: Form) {
        if self.seen.insert(Hashed::new(term.clone())) {
            self.by_sort.entry(sort).or_default().push(term);
        }
    }

    /// Sorts every bucket by (size, structure) once at construction.
    /// Deduplication already happened at [`TermPool::insert`] via the global
    /// `seen` set, so buckets contain no equal terms to begin with.
    fn finalize(&mut self) {
        for bucket in self.by_sort.values_mut() {
            let mut decorated: Vec<(usize, Form)> =
                bucket.drain(..).map(|t| (t.size(), t)).collect();
            decorated.sort();
            bucket.extend(decorated.into_iter().map(|(_, t)| t));
        }
    }

    /// Total number of pooled terms (for diagnostics).
    pub fn len(&self) -> usize {
        self.by_sort.values().map(Vec::len).sum()
    }

    /// Returns `true` if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Collects the ground instantiation candidates occurring in the given
/// formulas.
pub fn term_pool<'a>(forms: impl Iterator<Item = &'a Form>, env: &SortEnv) -> TermPool {
    let mut pool = TermPool::default();
    // Seed with the obvious constants.
    pool.insert(Sort::Int, Form::int(0));
    pool.insert(Sort::Obj, Form::Null);
    for form in forms {
        collect_terms(form, env, &mut pool, &mut Vec::new());
    }
    pool.finalize();
    pool
}

fn collect_terms(form: &Form, env: &SortEnv, pool: &mut TermPool, bound: &mut Vec<String>) {
    match form {
        Form::Forall(bs, body) | Form::Exists(bs, body) | Form::Compr(bs, body) => {
            let n = bound.len();
            bound.extend(bs.iter().map(|(v, _)| v.clone()));
            collect_terms(body, env, pool, bound);
            bound.truncate(n);
            return;
        }
        _ => {}
    }
    // Consider this node itself as a candidate if it is a non-boolean term
    // that does not mention bound variables and is not too large.
    let sort = env.sort_of(form);
    let is_candidate = matches!(sort, Sort::Int | Sort::Obj)
        && form.size() <= 9
        && !mentions(form, bound)
        && !matches!(form, Form::Bool(_));
    if is_candidate {
        pool.insert(sort, form.clone());
    }
    form.for_each_child(|c| collect_terms(c, env, pool, bound));
}

fn mentions(form: &Form, names: &[String]) -> bool {
    if names.is_empty() {
        return false;
    }
    let fv = free_vars(form);
    names.iter().any(|n| fv.contains(n))
}

/// Generates instances of one quantifier by enumerating the sort pool (the
/// fallback for quantifiers without triggers).
fn instantiate_from_pool(
    quantifier: &Quantifier,
    pool: &TermPool,
    config: &ProverConfig,
) -> Vec<Form> {
    let bindings = &quantifier.bindings;
    if bindings.is_empty() {
        return Vec::new();
    }
    let candidate_lists: Vec<Cow<'_, [Form]>> = bindings
        .iter()
        .map(|(_, sort)| pool.candidates(sort))
        .collect();
    if candidate_lists.iter().any(|c| c.is_empty()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut indices = vec![0usize; bindings.len()];
    let limit = config.max_instances_per_quantifier;
    'outer: loop {
        let mut map = HashMap::new();
        for (slot, (name, _)) in bindings.iter().enumerate() {
            map.insert(name.clone(), candidate_lists[slot][indices[slot]].clone());
        }
        let instance = simplify(&substitute(&quantifier.body, &map));
        if !instance.is_true() {
            out.push(instance);
        }
        if out.len() >= limit {
            break;
        }
        // Advance the odometer.
        let mut slot = bindings.len();
        loop {
            if slot == 0 {
                break 'outer;
            }
            slot -= 1;
            indices[slot] += 1;
            if indices[slot] < candidate_lists[slot].len() {
                break;
            }
            indices[slot] = 0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::build_problem;
    use ipl_logic::parser::parse_form;

    fn env() -> SortEnv {
        let mut e = SortEnv::new();
        for v in ["i", "j", "k", "size", "index", "x", "y"] {
            e.declare_var(v, Sort::Int);
        }
        for v in ["o", "a", "b", "c", "first"] {
            e.declare_var(v, Sort::Obj);
        }
        e.declare_var("next", Sort::obj_field());
        e.declare_var("nodes", Sort::obj_set());
        e.declare_var("content", Sort::int_obj_set());
        e.declare_fun("p", vec![Sort::Int], Sort::Bool);
        e.declare_fun("member", vec![Sort::Obj], Sort::Bool);
        e
    }

    fn proves(assumptions: &[&str], goal: &str) -> bool {
        proves_with(assumptions, goal, &ProverConfig::default())
    }

    fn proves_with(assumptions: &[&str], goal: &str, config: &ProverConfig) -> bool {
        let env = env();
        let assumptions: Vec<Form> = assumptions.iter().map(|s| parse_form(s).unwrap()).collect();
        let goal = parse_form(goal).unwrap();
        let count = assumptions.len();
        let problem = build_problem(&assumptions, &goal, &env);
        refute_with_instantiation(&problem, &env, config, count, &Cancel::never())
            == GroundResult::Unsat
    }

    #[test]
    fn universal_modus_ponens() {
        assert!(proves(&["forall n:int. 0 <= n --> p(n)", "0 <= x"], "p(x)"));
        assert!(!proves(&["forall n:int. 0 <= n --> p(n)"], "p(x)"));
    }

    #[test]
    fn universal_modus_ponens_without_triggers() {
        // The sort-pool fallback alone still proves the simple cases.
        let config = ProverConfig::without_triggers();
        assert!(proves_with(
            &["forall n:int. 0 <= n --> p(n)", "0 <= x"],
            "p(x)",
            &config
        ));
    }

    #[test]
    fn existential_goal_with_present_witness() {
        // The witness `a` occurs in the assumptions, so instantiating the
        // negated goal (a universal) with it succeeds.
        assert!(proves(&["member(a)"], "exists w:obj. member(w)"));
    }

    #[test]
    fn existential_goal_without_witness_fails() {
        // No obj-sorted candidate matches: the bounded search cannot invent a
        // witness (the situation the `witness` construct is for).
        assert!(!proves(&["0 <= x"], "exists w:obj. member(w)"));
    }

    #[test]
    fn quantified_invariant_applied_to_specific_index() {
        assert!(proves(
            &[
                "forall j:int. 0 <= j & j < size --> p(j)",
                "0 <= index",
                "index < size"
            ],
            "p(index)"
        ));
    }

    #[test]
    fn universal_goal_via_fresh_constant() {
        // Proving forall x. member(x) --> member(x) requires instantiating
        // nothing; the negated goal is skolemised to a fresh constant.
        assert!(proves(&[], "forall x:obj. member(x) --> member(x)"));
        assert!(proves(
            &["forall x:obj. member(x) --> interesting(x)"],
            "forall y:obj. member(y) --> interesting(y)"
        ));
    }

    #[test]
    fn set_extensionality_with_instantiation() {
        // content = old_content (as sets of pairs) implies a specific
        // membership transfers.
        assert!(proves(
            &["content = old_content", "(i, o) in old_content"],
            "(i, o) in content"
        ));
    }

    #[test]
    fn two_variable_quantifier() {
        assert!(proves(
            &[
                "forall j:int, e:obj. (j, e) in content --> 0 <= j",
                "(index, o) in content"
            ],
            "0 <= index"
        ));
    }

    #[test]
    fn budget_zero_rounds_cannot_use_quantifiers() {
        let config = ProverConfig {
            instantiation_rounds: 0,
            ..ProverConfig::default()
        };
        assert!(!proves_with(
            &["forall n:int. 0 <= n --> p(n)", "0 <= x"],
            "p(x)",
            &config
        ));
    }

    #[test]
    fn term_pool_collects_sorted_candidates() {
        let env = env();
        let forms = [
            parse_form("0 <= index & index < size").unwrap(),
            parse_form("first.next = a").unwrap(),
        ];
        let pool = term_pool(forms.iter(), &env);
        assert!(!pool.is_empty());
        let ints = pool.candidates(&Sort::Int);
        assert!(ints.contains(&Form::var("index")));
        assert!(ints.contains(&Form::var("size")));
        // Buckets are sorted by size once at construction.
        let sizes: Vec<usize> = ints.iter().map(Form::size).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        let objs = pool.candidates(&Sort::Obj);
        assert!(objs.contains(&Form::var("first")));
        assert!(objs.iter().any(|t| t.to_string() == "first.next"));
    }

    #[test]
    fn term_pool_deduplicates_equal_terms_of_equal_size() {
        let env = env();
        // `index` appears in both formulas; the bucket must list it once.
        let forms = [
            parse_form("0 <= index").unwrap(),
            parse_form("index < size").unwrap(),
        ];
        let pool = term_pool(forms.iter(), &env);
        let ints = pool.candidates(&Sort::Int);
        assert_eq!(ints.iter().filter(|t| **t == Form::var("index")).count(), 1);
    }

    // ----- trigger selection -----

    fn triggers_of(quantifier: &str) -> Vec<Vec<Form>> {
        let form = parse_form(quantifier).unwrap();
        let form = env().annotate_binders(&form);
        let (bindings, body) = match &form {
            Form::Forall(bs, body) => (bs.clone(), (**body).clone()),
            _ => panic!("expected a universal quantifier"),
        };
        select_triggers(&bindings, &body, &TriggerConfig::default())
    }

    #[test]
    fn single_pattern_trigger_selected() {
        let triggers = triggers_of("forall n:int. 0 <= n --> p(n)");
        assert!(!triggers.is_empty());
        // Every trigger is a single pattern covering the binder.
        for trigger in &triggers {
            assert_eq!(trigger.len(), 1);
            assert!(free_vars(&trigger[0]).contains("n"));
        }
        assert!(triggers.iter().any(|t| t[0] == parse_form("p(n)").unwrap()));
    }

    #[test]
    fn field_read_serves_as_trigger() {
        let triggers = triggers_of("forall v:obj. v.next = null --> member(v)");
        assert!(!triggers.is_empty());
        let first = &triggers[0][0];
        assert!(matches!(first, Form::FieldRead(..) | Form::App(..)));
    }

    #[test]
    fn multi_pattern_trigger_covers_all_binders() {
        // No single application mentions both binders, so a multi-pattern is
        // required.
        let triggers = triggers_of("forall u:obj, w:obj. member(u) & member(w) --> u = w");
        assert_eq!(triggers.len(), 1, "one combined multi-pattern");
        let trigger = &triggers[0];
        assert!(trigger.len() >= 2, "needs at least two patterns");
        let covered: HashSet<String> = trigger
            .iter()
            .flat_map(|p| free_vars(p).into_iter())
            .collect();
        assert!(covered.contains("u") && covered.contains("w"));
    }

    #[test]
    fn arithmetic_only_bodies_have_no_trigger() {
        let triggers = triggers_of("forall n:int. 0 <= n --> n < n + 1");
        assert!(
            triggers.is_empty(),
            "purely arithmetic bodies cannot be triggered: {triggers:?}"
        );
    }

    #[test]
    fn matcher_instantiates_only_occurring_terms() {
        // With triggers, only `x` (which occurs under `p`) is tried — the
        // engine proves the goal without enumerating every int-sorted term.
        let config = ProverConfig {
            max_instances_per_quantifier: 1,
            triggers: TriggerConfig {
                pool_fallback: false,
                ..TriggerConfig::default()
            },
            ..ProverConfig::default()
        };
        assert!(proves_with(
            &[
                "forall n:int. 0 <= n --> p(n)",
                "0 <= x",
                "x < size",
                "size < y"
            ],
            "p(x)",
            &config
        ));
    }
}
