//! # `ipl-provers` — the integrated-reasoning prover cascade
//!
//! Jahob dispatches every sequent to a cascade of reasoning systems
//! (first-order provers, SMT solvers, MONA, BAPA), each with a timeout.  This
//! crate reproduces that architecture with from-scratch reasoners:
//!
//! * [`syntactic`] — the cheap syntactic checks performed during splitting
//!   (goal among assumptions, `false` among assumptions, reflexive goals);
//! * [`ground`] — an SMT-lite solver for ground formulas: a tableau search
//!   over the boolean structure threading one incremental, backtrackable
//!   congruence-closure engine ([`cc`]) through the branches, combined with
//!   linear integer arithmetic (a Fourier–Motzkin refutation shared with
//!   `ipl-bapa`);
//! * [`inst`] — trigger-driven E-matching instantiation on top of the ground
//!   solver (the stand-in for the E-matching SMT solvers and the first-order
//!   provers of the paper): triggers are selected per quantifier and matched
//!   against a term index of the ground set, with a bounded sort-pool
//!   enumeration as the fallback for trigger-less quantifiers
//!   ([`TriggerConfig`] holds the knobs);
//! * adapters for the [`ipl-bapa`] cardinality decision procedure and the
//!   [`ipl-shape`] reachability prover;
//! * [`cascade`] — the dispatcher that runs the provers in order with per-
//!   prover budgets and records which prover discharged each sequent.
//!
//! The deliberate *incompleteness* of the bounded search is what gives the
//! integrated proof language its purpose: `note`/`witness`/`instantiate`
//! statements and `from` clauses shrink the search space so that these
//! bounded provers succeed, exactly as described in the paper.

pub mod cache;
pub mod cache_store;
pub mod cascade;
pub mod cc;
pub mod containment;
pub mod drain;
pub mod exchange;
pub mod fault;
pub mod ground;
pub mod inst;
pub mod preprocess;
pub mod syntactic;

use ipl_logic::{Form, Labeled, SortEnv};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use cascade::{Cascade, ProverAnswer};

/// Cooperative cancellation token handed to every prover.
///
/// The cascade used to run each prover on a freshly spawned worker thread and
/// *abandon* it when the per-prover timeout expired — the worker kept burning
/// CPU (and memory) in the background, which under the parallel verification
/// driver multiplied into a stampede of zombie searches.  Provers now run on
/// the calling thread and poll this token inside their main loops (tableau
/// node expansion, instantiation rounds, Venn region enumeration); when the
/// deadline passes or the flag is raised they unwind promptly and report
/// [`Outcome::Unknown`].
#[derive(Debug, Clone, Default)]
pub struct Cancel {
    deadline: Option<Instant>,
    flag: Option<Arc<AtomicBool>>,
}

impl Cancel {
    /// A token that never cancels (tests and one-shot callers).
    pub fn never() -> Self {
        Cancel::default()
    }

    /// A token that cancels once `timeout` has elapsed from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Cancel {
            deadline: Instant::now().checked_add(timeout),
            flag: None,
        }
    }

    /// A token that cancels at `timeout` from now or at the outer `deadline`,
    /// whichever comes first.  This is how the deadline hierarchy flows down:
    /// a module-level wall-clock budget clamps every per-prover timeout
    /// beneath it, so an over-budget run unwinds instead of letting each
    /// stage spend its full allowance.
    pub fn with_timeout_under(timeout: Duration, outer: Option<Instant>) -> Self {
        let local = Instant::now().checked_add(timeout);
        Cancel {
            deadline: match (local, outer) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            flag: None,
        }
    }

    /// A token cancelled externally through the shared flag (and optionally
    /// by deadline as well).
    pub fn with_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.flag = Some(flag);
        self
    }

    /// The deadline of this token, for handing down to sub-solvers with
    /// their own limit structures (e.g. `BapaLimits::deadline`).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Returns `true` once the deadline has passed or the flag was raised.
    pub fn is_cancelled(&self) -> bool {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }
}

/// A proof query: prove `goal` from `assumptions` under the sort environment
/// `env`.
#[derive(Debug, Clone)]
pub struct Query {
    /// Labelled assumptions (already filtered by any `from` clause).
    pub assumptions: Vec<Labeled>,
    /// The goal.
    pub goal: Form,
    /// Sorts of the free variables and signatures of the named symbols.
    pub env: SortEnv,
}

impl Query {
    /// Creates a query.
    pub fn new(assumptions: Vec<Labeled>, goal: Form, env: SortEnv) -> Self {
        Query {
            assumptions,
            goal,
            env,
        }
    }

    /// The assumption formulas without their labels.
    pub fn assumption_forms(&self) -> Vec<Form> {
        self.assumptions.iter().map(|a| a.form.clone()).collect()
    }
}

/// The outcome of a query: what a prover (or the cascade) established, or —
/// for the `Crashed` / `Skipped` variants — why nothing was established.
///
/// Individual [`Prover`] implementations only ever return `Proved` or
/// `Unknown`; the two diagnostic variants are produced by the fault-isolation
/// layer (the cascade's panic containment and the driver's deadline
/// hierarchy).  **Neither diagnostic is a verdict**: an infrastructure fault
/// must never masquerade as `Proved`, and the chaos suite enforces exactly
/// that (a faulted run's proved set is a subset of the fault-free run's).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The implication was proved valid.
    Proved,
    /// The prover could not establish validity within its budget.
    Unknown,
    /// A prover stage panicked; the panic was contained at the dispatch
    /// boundary and the sequent quarantined (no later stage ran).
    Crashed {
        /// The cascade stage whose dispatch panicked.
        stage: String,
        /// The panic payload, when it carried a message.
        message: String,
    },
    /// The sequent was never dispatched.
    Skipped(SkipReason),
}

impl Outcome {
    /// `true` only for [`Outcome::Proved`].
    pub fn is_proved(&self) -> bool {
        *self == Outcome::Proved
    }

    /// Short machine-readable tag (`proved`, `unknown`, `crashed`,
    /// `skipped`), used by reports and exit-code mapping.
    pub fn tag(&self) -> &'static str {
        match self {
            Outcome::Proved => "proved",
            Outcome::Unknown => "unknown",
            Outcome::Crashed { .. } => "crashed",
            Outcome::Skipped(_) => "skipped",
        }
    }
}

/// Why a sequent was skipped without dispatching any prover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkipReason {
    /// The module-level wall-clock budget (`module_deadline` in the
    /// verification driver's options) was exhausted before this sequent's
    /// turn came; the run degrades to a partial report instead of hanging.
    DeadlineExceeded,
}

/// Knobs of the trigger-driven E-matching instantiation engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TriggerConfig {
    /// Master switch: when `false`, every quantifier falls back to the
    /// sort-pool cross-product instantiator (the pre-E-matching behaviour,
    /// kept for the ablation benchmarks).
    pub enabled: bool,
    /// Maximum number of (multi-)patterns selected per quantifier.
    pub max_triggers_per_quantifier: usize,
    /// Maximum AST size of a single pattern term.
    pub max_pattern_size: usize,
    /// Maximum matches accepted per quantifier per round.
    pub max_matches_per_quantifier: usize,
    /// When `true`, a quantifier whose triggers never produced a single match
    /// retries with the sort pool (covers bodies whose relevant terms exist
    /// only at other sorts).
    pub pool_fallback: bool,
}

impl Default for TriggerConfig {
    fn default() -> Self {
        TriggerConfig {
            enabled: true,
            max_triggers_per_quantifier: 4,
            max_pattern_size: 12,
            max_matches_per_quantifier: 96,
            pool_fallback: true,
        }
    }
}

impl TriggerConfig {
    /// The configuration of the pre-E-matching engine: triggers off, every
    /// quantifier instantiated from the sort pool.
    pub fn disabled() -> Self {
        TriggerConfig {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Knobs of the CDCL ground core (see [`ground`]): the iterative
/// conflict-driven engine that replaced the recursive DPLL tableau.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroundConfig {
    /// Master switch for conflict-driven clause learning.  When `false` the
    /// engine still propagates with watched literals and backtracks
    /// chronologically, but records no learned clauses (the pre-CDCL search
    /// shape, kept for the ablation benchmarks).
    pub learning: bool,
    /// Hard cap on the number of learned clauses kept per search; conflicts
    /// past the cap still backjump but are not recorded.
    pub max_learned_clauses: usize,
    /// Conflicts between two halvings of the variable activities (the
    /// integer stand-in for VSIDS decay; smaller = more aggressive focus on
    /// recent conflicts).
    pub activity_decay_interval: usize,
    /// Eager theory propagation: after each boolean propagation fixpoint the
    /// congruence closure is asked which registered equality atoms it now
    /// entails, and those literals enter the trail with proof-forest
    /// explanations instead of being rediscovered at conflicts.  `false`
    /// restores the conflict-driven-only behaviour for the ablations.
    pub theory_propagation: bool,
    /// Luby-sequence restarts: on schedule the search backjumps to the root,
    /// keeping learned clauses and activities.  `false` disables restarts for
    /// the ablations.
    pub restarts: bool,
    /// Conflicts between two activity-based learned-clause reduction sweeps;
    /// each sweep deletes the lower-activity half of the unlocked learned
    /// clauses.  `max_learned_clauses` additionally forces a sweep whenever
    /// the database reaches the cap.
    pub deletion_interval: usize,
}

impl Default for GroundConfig {
    fn default() -> Self {
        GroundConfig {
            learning: true,
            max_learned_clauses: 10_000,
            activity_decay_interval: 128,
            theory_propagation: true,
            restarts: true,
            deletion_interval: 2_000,
        }
    }
}

impl GroundConfig {
    /// The configuration with clause learning turned off (chronological
    /// backtracking only); used by the ablation benchmarks.
    pub fn without_learning() -> Self {
        GroundConfig {
            learning: false,
            ..Self::default()
        }
    }

    /// The configuration with eager theory propagation turned off (theory
    /// facts discovered only at conflicts); used by the ablation benchmarks.
    pub fn without_theory_propagation() -> Self {
        GroundConfig {
            theory_propagation: false,
            ..Self::default()
        }
    }

    /// The configuration with Luby restarts turned off; used by the ablation
    /// benchmarks.
    pub fn without_restarts() -> Self {
        GroundConfig {
            restarts: false,
            ..Self::default()
        }
    }
}

/// Knobs of the Nelson–Oppen equality-exchange loop that runs the BAPA
/// cardinality procedure (and future theories) inside the ground tableau
/// (see [`exchange`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExchangeConfig {
    /// Master switch: when `false`, theories run only as standalone cascade
    /// stages (the pre-combination behaviour, kept for ablations).
    pub enabled: bool,
    /// Fixpoint iterations of the exchange loop per saturated leaf.
    pub max_rounds: usize,
    /// Saturated leaves allowed to run the loop, per tableau search.
    pub max_leaf_checks: usize,
    /// Entailment queries (Presburger refutations) allowed, per search.
    pub max_entailment_queries: usize,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            enabled: true,
            max_rounds: 3,
            max_leaf_checks: 64,
            max_entailment_queries: 12,
        }
    }
}

impl ExchangeConfig {
    /// The configuration with the in-tableau combination turned off.
    pub fn disabled() -> Self {
        ExchangeConfig {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Maximum rungs of the budget-escalation retry ladder.
pub const MAX_RETRY_RUNGS: usize = 4;

/// The budget-escalation retry ladder: when the cascade returns `Unknown`
/// *and* the bounded search reports that it ran out of budget (rather than
/// saturating — see [`take_budget_exhausted`]), the sequent is retried with
/// multiplied node/instance budgets, rung by rung, until a rung proves it,
/// the ladder runs dry, or `max_total_ms` of retry wall-clock is spent.
///
/// Off by default, so every benchmark (`BENCH_*.json`) keeps its exact
/// pre-retry semantics; callers opt in per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Master switch.
    pub enabled: bool,
    /// Budget multipliers for successive retry attempts; a `0` entry and
    /// everything after it is unused.  Each rung multiplies
    /// `max_branch_nodes`, `max_total_instances` and
    /// `max_instances_per_quantifier`, and adds one instantiation round per
    /// rung index.
    pub ladder: [u32; MAX_RETRY_RUNGS],
    /// Hard wall-clock cap across all retry attempts of one sequent, in
    /// milliseconds; the ladder stops once it is exceeded.
    pub max_total_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            enabled: false,
            ladder: [2, 4, 8, 0],
            max_total_ms: 4_000,
        }
    }
}

impl RetryPolicy {
    /// The default ladder, switched on.
    pub fn enabled() -> Self {
        RetryPolicy {
            enabled: true,
            ..Self::default()
        }
    }

    /// The rung multipliers actually in use (the prefix before the first 0).
    pub fn rungs(&self) -> impl Iterator<Item = u32> + '_ {
        self.ladder.iter().copied().take_while(|&m| m > 1)
    }
}

/// Resource budgets controlling the bounded search.  These are the knobs the
/// Table 2 experiment and the ablation benchmarks turn.
///
/// The whole configuration hashes into the proof-cache fingerprint (see
/// [`cache`]), so runs under different budgets never share cached proofs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProverConfig {
    /// Maximum number of branch nodes explored by the ground tableau.
    pub max_branch_nodes: usize,
    /// Number of quantifier-instantiation rounds.
    pub instantiation_rounds: usize,
    /// Maximum instances generated per quantifier per round.
    pub max_instances_per_quantifier: usize,
    /// Hard cap on the total number of generated instances.
    pub max_total_instances: usize,
    /// Wall-clock timeout per prover per sequent, in milliseconds.
    pub per_prover_timeout_ms: u64,
    /// Penalty factor applied to the instantiation budget as the assumption
    /// base grows (models the paper's observation that large assumption bases
    /// degrade the provers).
    pub assumption_penalty_threshold: usize,
    /// E-matching trigger selection and matching budgets.
    pub triggers: TriggerConfig,
    /// Theory-combination (BAPA⇄ground exchange) budgets.
    pub exchange: ExchangeConfig,
    /// CDCL ground-core knobs (clause learning, learned-clause cap).
    pub ground: GroundConfig,
    /// Budget-escalation retry ladder for budget-exhausted Unknowns
    /// (disabled by default; see [`RetryPolicy`]).
    pub retry: RetryPolicy,
    /// When `true`, the cascade consults the content-addressed proof cache
    /// before dispatching and records every `Proved` outcome (see [`cache`]).
    pub use_cache: bool,
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig {
            max_branch_nodes: 60_000,
            instantiation_rounds: 3,
            max_instances_per_quantifier: 48,
            max_total_instances: 1_500,
            per_prover_timeout_ms: 2_000,
            assumption_penalty_threshold: 28,
            triggers: TriggerConfig::default(),
            exchange: ExchangeConfig::default(),
            ground: GroundConfig::default(),
            retry: RetryPolicy::default(),
            use_cache: true,
        }
    }
}

impl ProverConfig {
    /// A configuration with a much smaller search budget; useful in tests and
    /// for the "fast" cascade stage.
    pub fn quick() -> Self {
        ProverConfig {
            max_branch_nodes: 8_000,
            instantiation_rounds: 1,
            max_instances_per_quantifier: 16,
            max_total_instances: 200,
            per_prover_timeout_ms: 500,
            assumption_penalty_threshold: 20,
            triggers: TriggerConfig::default(),
            exchange: ExchangeConfig::default(),
            ground: GroundConfig::default(),
            retry: RetryPolicy::default(),
            use_cache: true,
        }
    }

    /// The default budgets with the budget-escalation retry ladder enabled.
    pub fn with_retry() -> Self {
        ProverConfig {
            retry: RetryPolicy::enabled(),
            ..Self::default()
        }
    }

    /// The default budgets with conflict-driven clause learning disabled in
    /// the ground core (chronological backtracking only); used by the
    /// ablation benchmarks.
    pub fn without_learning() -> Self {
        ProverConfig {
            ground: GroundConfig::without_learning(),
            ..Self::default()
        }
    }

    /// The default budgets with the in-tableau theory combination disabled
    /// (theories as standalone cascade stages only); used by the ablations.
    pub fn without_exchange() -> Self {
        ProverConfig {
            exchange: ExchangeConfig::disabled(),
            ..Self::default()
        }
    }

    /// The default budgets with eager theory propagation disabled in the
    /// ground core (theory facts discovered only at conflicts); used by the
    /// ablation benchmarks.
    pub fn without_theory_propagation() -> Self {
        ProverConfig {
            ground: GroundConfig::without_theory_propagation(),
            ..Self::default()
        }
    }

    /// The default budgets with Luby restarts disabled in the ground core;
    /// used by the ablation benchmarks.
    pub fn without_restarts() -> Self {
        ProverConfig {
            ground: GroundConfig::without_restarts(),
            ..Self::default()
        }
    }

    /// The default budgets with E-matching disabled (the sort-pool
    /// cross-product instantiator); used by the ablation benchmarks.
    pub fn without_triggers() -> Self {
        ProverConfig {
            triggers: TriggerConfig::disabled(),
            ..Self::default()
        }
    }

    /// The default budgets with the proof cache disabled (benchmarks that
    /// must measure raw prover time).
    pub fn without_cache() -> Self {
        ProverConfig {
            use_cache: false,
            ..Self::default()
        }
    }

    /// The effective instantiation budget for a query, reduced when the
    /// assumption base is large (the phenomenon the `from` clause exists to
    /// counteract).
    pub fn effective_instances(&self, assumption_count: usize) -> usize {
        if assumption_count > self.assumption_penalty_threshold {
            (self.max_total_instances / 4).max(8)
        } else {
            self.max_total_instances
        }
    }

    /// One rung of the retry ladder: the same configuration with the search
    /// budgets multiplied (and one extra instantiation round per rung).  The
    /// retry itself is bounded by [`RetryPolicy::max_total_ms`], so the
    /// per-prover timeout is left untouched.
    pub fn escalated(&self, multiplier: u32, rung_index: usize) -> ProverConfig {
        let m = multiplier.max(1) as usize;
        ProverConfig {
            max_branch_nodes: self.max_branch_nodes.saturating_mul(m),
            max_total_instances: self.max_total_instances.saturating_mul(m),
            max_instances_per_quantifier: self.max_instances_per_quantifier.saturating_mul(m),
            instantiation_rounds: self.instantiation_rounds + rung_index + 1,
            ..*self
        }
    }
}

// ---------------------------------------------------------------------------
// Budget-exhaustion telemetry
// ---------------------------------------------------------------------------

thread_local! {
    static BUDGET_EXHAUSTED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Marks the current thread's in-flight prover run as having given up because
/// a *resource budget* ran dry (branch-node budget, instance cap, wall-clock
/// deadline) rather than because the search genuinely saturated.  The bounded
/// solvers call this at each budget bail-out; since every prover runs on its
/// caller's thread (cooperative cancellation), a thread-local is exact even
/// under the parallel verification driver.
pub fn note_budget_exhausted() {
    BUDGET_EXHAUSTED.with(|flag| flag.set(true));
}

/// Clears the exhaustion flag, returning whether it was set.  The cascade
/// brackets each stage dispatch with this to decide whether an `Unknown` was
/// a budget casualty (worth a [`RetryPolicy`] escalation) or a saturated
/// search (retrying with more budget is pointless).
pub fn take_budget_exhausted() -> bool {
    BUDGET_EXHAUSTED.with(|flag| flag.replace(false))
}

/// A single reasoning system in the cascade.
pub trait Prover: Send + Sync {
    /// Short name used in reports (e.g. `"smt-lite"`, `"bapa"`).
    fn name(&self) -> &'static str;

    /// Attempts to prove the query within the given budgets, polling
    /// `cancel` cooperatively (a cancelled prover returns
    /// [`Outcome::Unknown`] promptly instead of running to completion).
    fn prove(&self, query: &Query, config: &ProverConfig, cancel: &Cancel) -> Outcome;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipl_logic::parser::parse_form;

    #[test]
    fn query_holds_assumptions_and_goal() {
        let q = Query::new(
            vec![Labeled::new("A", parse_form("x = 1").unwrap())],
            parse_form("x = 1").unwrap(),
            SortEnv::new(),
        );
        assert_eq!(q.assumption_forms().len(), 1);
    }

    #[test]
    fn config_penalises_large_assumption_bases() {
        let config = ProverConfig::default();
        assert_eq!(config.effective_instances(5), config.max_total_instances);
        assert!(config.effective_instances(100) < config.max_total_instances);
    }

    #[test]
    fn quick_config_is_smaller() {
        assert!(
            ProverConfig::quick().max_total_instances < ProverConfig::default().max_total_instances
        );
    }
}
